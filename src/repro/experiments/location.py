"""Section 5.2: who can detect a problem's *location*?

Labels aggregate to {mobile, lan, wan} x {mild, severe} plus good.  The
paper highlights that the server VP localises LAN problems almost as well
as the router (both lean on RTT, first-packet-arrival and
retransmissions), and that VP *pairs* add little.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.dataset import Dataset
from repro.core.evaluation import EvalResult, evaluate_cv
from repro.core.vantage import STANDARD_COMBOS, combo_name
from repro.ml.ranking import per_label_ranking


@dataclass
class LocationResult:
    results: Dict[str, EvalResult] = field(default_factory=dict)
    #: top features for LAN-problem detection per VP (the paper inspects
    #: why the server localises LAN issues)
    lan_rankings: Dict[str, List[Tuple[str, float]]] = field(default_factory=dict)

    @property
    def accuracies(self) -> Dict[str, float]:
        return {name: res.accuracy for name, res in self.results.items()}

    def location_recall(self, location: str) -> Dict[str, float]:
        """Recall of ``location`` problems (any severity) per VP combo."""
        out = {}
        for name, res in self.results.items():
            cm = res.confusion
            hits = 0
            total = 0
            for label in cm.labels:
                if not str(label).startswith(location):
                    continue
                i = cm._index[label]
                row = cm.matrix[i]
                total += row.sum()
                hits += sum(
                    row[cm._index[p]]
                    for p in cm.labels
                    if str(p).startswith(location)
                )
            out[name] = hits / total if total else 0.0
        return out

    def to_text(self) -> str:
        lines = ["== Problem location (Section 5.2) =="]
        lines.append(
            "accuracy: "
            + "  ".join(f"{n}={a * 100:.1f}%" for n, a in self.accuracies.items())
        )
        for location in ("mobile", "lan", "wan"):
            recall = self.location_recall(location)
            lines.append(
                f"  {location:<7} recall: "
                + "  ".join(f"{n}={v:.2f}" for n, v in recall.items())
            )
        for vp, ranked in self.lan_rankings.items():
            names = ", ".join(f"{n} ({g:.2f})" for n, g in ranked)
            lines.append(f"  top LAN features @{vp}: {names}")
        return "\n".join(lines)


def run_location(
    dataset: Dataset,
    combos: Sequence[Sequence[str]] = STANDARD_COMBOS,
    k: int = 10,
    seed: int = 0,
) -> LocationResult:
    result = LocationResult()
    for vps in combos:
        res = evaluate_cv(dataset, "location", vps, k=k, seed=seed)
        result.results[combo_name(vps)] = res
    # Why can the server see LAN problems?  Rank features for the binary
    # "is this a LAN problem" question per single VP.
    from repro.core.evaluation import prepare
    from repro.core.vantage import features_for_vps
    import numpy as np

    data = prepare(dataset)
    y = data.labels("location")
    binary = np.where(np.char.startswith(y.astype(str), "lan"), "lan", "other")
    for vp in ("router", "server"):
        names = features_for_vps(data.feature_names, [vp])
        X = data.to_matrix(names)
        ranked = per_label_ranking(X, binary, names, top_k=3, positive_labels=["lan"])
        result.lan_rankings[vp] = ranked["lan"]
    return result

"""Section 5.3 / Figure 4 / Table 4: detecting the *exact* problem.

All fault x severity labels are kept.  The paper reports overall accuracy
88.18% (mobile), 85.74% (router), 84.2% (server), 88.95% (combined), with
characteristic per-VP blind spots: the router/server cannot see mobile
load (no CPU/memory features) nor mild interference (no RSSI), while the
combination helps for WAN congestion and mobile load.

Table 4 is reproduced as the top-3 features per label per vantage point,
ranked by one-vs-rest information gain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.evaluation import EvalResult, evaluate_cv, prepare
from repro.core.vantage import STANDARD_COMBOS, combo_name, features_for_vps
from repro.ml.ranking import per_label_ranking


@dataclass
class ExactResult:
    results: Dict[str, EvalResult] = field(default_factory=dict)
    #: Table 4: {label: {vp: [(feature, gain), ...top3]}}
    feature_table: Dict[str, Dict[str, List[Tuple[str, float]]]] = field(
        default_factory=dict
    )

    @property
    def accuracies(self) -> Dict[str, float]:
        return {name: res.accuracy for name, res in self.results.items()}

    def bars(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for name, res in self.results.items():
            for label in res.confusion.labels:
                out.setdefault(str(label), {})[name] = {
                    "precision": res.confusion.precision(label),
                    "recall": res.confusion.recall(label),
                    "support": res.confusion.support(label),
                }
        return out

    def to_text(self) -> str:
        lines = ["== Exact problem detection (Figure 4) =="]
        lines.append(
            "accuracy: "
            + "  ".join(f"{n}={a * 100:.1f}%" for n, a in self.accuracies.items())
        )
        for label, per_vp in sorted(self.bars().items()):
            support = next(iter(per_vp.values()))["support"]
            if support == 0:
                continue
            lines.append(f"  {label} (n={support}):")
            for vp, stats in per_vp.items():
                lines.append(
                    f"    {vp:<10} P={stats['precision']:.2f} R={stats['recall']:.2f}"
                )
        if self.feature_table:
            lines.append("-- Table 4: top features per label --")
            for label, per_vp in self.feature_table.items():
                lines.append(f"  {label}:")
                for vp, ranked in per_vp.items():
                    names = ", ".join(name for name, _ in ranked)
                    lines.append(f"    {vp[0].upper()}: {names}")
        return "\n".join(lines)


def run_exact(
    dataset: Dataset,
    combos: Sequence[Sequence[str]] = STANDARD_COMBOS,
    k: int = 10,
    seed: int = 0,
    with_feature_table: bool = True,
) -> ExactResult:
    result = ExactResult()
    for vps in combos:
        res = evaluate_cv(dataset, "exact", vps, k=k, seed=seed)
        result.results[combo_name(vps)] = res
    if with_feature_table:
        result.feature_table = feature_ranking_table(dataset)
    return result


def feature_ranking_table(
    dataset: Dataset, top_k: int = 3
) -> Dict[str, Dict[str, List[Tuple[str, float]]]]:
    """Table 4: per problem type, the top features at each vantage point.

    Labels are collapsed over severity (the paper's columns are problem
    types) and ranked one-vs-rest within each VP's feature scope.
    """
    data = prepare(dataset)
    exact = data.labels("exact")
    problems = np.array([label.rsplit("_", 1)[0] if label != "good" else "good"
                         for label in exact])
    table: Dict[str, Dict[str, List[Tuple[str, float]]]] = {}
    scopes = {
        "mobile": ["mobile"],
        "router": ["router"],
        "server": ["server"],
        "combined": ["mobile", "router", "server"],
    }
    for vp_name, vps in scopes.items():
        names = features_for_vps(data.feature_names, vps)
        X = data.to_matrix(names)
        labels = [p for p in np.unique(problems) if p != "good"]
        ranked = per_label_ranking(X, problems, names, top_k=top_k,
                                   positive_labels=labels)
        for label, feats in ranked.items():
            table.setdefault(label, {})[vp_name] = feats
    return table

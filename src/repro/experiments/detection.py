"""Section 5.1 / Figure 3: who can detect the *existence* of a problem?

Labels are aggregated to good/mild/severe and a model is cross-validated
per vantage point and for the combination.  The paper reports accuracies
of 88.1% (mobile), 86.4% (router), 85.6% (server) and 88.8% (combined),
with every VP detecting *good* sessions well but the router/server probes
struggling to separate mild from severe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.core.dataset import Dataset
from repro.core.evaluation import EvalResult, evaluate_cv
from repro.core.vantage import STANDARD_COMBOS, combo_name

SEVERITY_ORDER = ("good", "mild", "severe")


@dataclass
class DetectionResult:
    """Figure 3 payload: per-VP accuracy plus per-class P/R bars."""

    label_kind: str
    results: Dict[str, EvalResult] = field(default_factory=dict)

    @property
    def accuracies(self) -> Dict[str, float]:
        return {name: res.accuracy for name, res in self.results.items()}

    def bars(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """{class: {vp: {precision, recall}}} -- the Figure 3 bar groups."""
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for name, res in self.results.items():
            for label in res.confusion.labels:
                out.setdefault(str(label), {})[name] = {
                    "precision": res.confusion.precision(label),
                    "recall": res.confusion.recall(label),
                }
        return out

    def to_text(self) -> str:
        lines = [f"== Problem detection ({self.label_kind}) =="]
        lines.append(
            "accuracy: "
            + "  ".join(f"{n}={a * 100:.1f}%" for n, a in self.accuracies.items())
        )
        bars = self.bars()
        for label in SEVERITY_ORDER:
            if label not in bars:
                continue
            lines.append(f"  class {label}:")
            for vp, stats in bars[label].items():
                lines.append(
                    f"    {vp:<10} P={stats['precision']:.2f} R={stats['recall']:.2f}"
                )
        return "\n".join(lines)


def run_detection(
    dataset: Dataset,
    combos: Sequence[Sequence[str]] = STANDARD_COMBOS,
    k: int = 10,
    seed: int = 0,
) -> DetectionResult:
    """Run the Figure 3 experiment on ``dataset``."""
    result = DetectionResult(label_kind="severity")
    for vps in combos:
        res = evaluate_cv(dataset, "severity", vps, k=k, seed=seed)
        result.results[combo_name(vps)] = res
    return result

"""Section 5.4 / Figure 5: which features help?

The combined-VP model is evaluated with seven different inputs: RSSI only,
hardware metrics only, interface utilisation only, network delay (RTT)
only, TCP metrics, all features, and the FS+FC pipeline.  The paper's
ordering -- RSSI < hardware < utilisation < delay < all < FS&FC -- is the
shape this experiment reproduces, plus an explicit FC/FS ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.dataset import Dataset
from repro.core.evaluation import EvalResult, evaluate_cv, prepare
from repro.core.vantage import ALL_VPS

FEATURE_SET_ORDER = (
    "rssi",
    "hw",
    "utilization",
    "delay",
    "tcp",
    "all",
    "fs_fc",
)


def _feature_subsets(names: Sequence[str]) -> Dict[str, List[str]]:
    """Partition the (constructed) feature space into the Fig. 5 groups."""
    subsets: Dict[str, List[str]] = {
        "rssi": [n for n in names if "radio_rssi" in n],
        # the paper's "HW" bar is *mobile* hardware metrics only
        "hw": [n for n in names if n.startswith("mobile_hw_")],
        "utilization": [n for n in names if n.endswith("_util")],
        "delay": [n for n in names if "_rtt_" in n or n.endswith("handshake_rtt")],
        "tcp": [n for n in names if "_tcp_" in n and not n.endswith("_norm")],
    }
    return subsets


@dataclass
class FeatureSetResult:
    results: Dict[str, EvalResult] = field(default_factory=dict)

    @property
    def accuracies(self) -> Dict[str, float]:
        return {name: res.accuracy for name, res in self.results.items()}

    def series(self) -> List:
        """(set name, precision, recall) in the paper's x-axis order."""
        out = []
        for name in FEATURE_SET_ORDER:
            if name not in self.results:
                continue
            cm = self.results[name].confusion
            out.append((name, cm.weighted_precision(), cm.weighted_recall()))
        return out

    def to_text(self) -> str:
        lines = ["== Feature-set study (Figure 5) =="]
        for name, precision, recall in self.series():
            acc = self.results[name].accuracy
            nfeat = len(self.results[name].selected_features)
            lines.append(
                f"  {name:<12} acc={acc * 100:5.1f}%  P={precision:.2f} "
                f"R={recall:.2f}  ({nfeat} features)"
            )
        return "\n".join(lines)


def run_feature_sets(
    dataset: Dataset,
    label_kind: str = "exact",
    k: int = 10,
    seed: int = 0,
) -> FeatureSetResult:
    """Run the Figure 5 experiment (combined VPs, seven inputs)."""
    result = FeatureSetResult()
    constructed = prepare(dataset)
    subsets = _feature_subsets(constructed.feature_names)
    for name, subset in subsets.items():
        if not subset:
            continue
        result.results[name] = evaluate_cv(
            dataset, label_kind, ALL_VPS, k=k, seed=seed,
            construct=True, select=False, feature_subset=subset,
        )
    # All raw features, no FC / no FS.
    raw_names = [n for n in dataset.feature_names]
    result.results["all"] = evaluate_cv(
        dataset, label_kind, ALL_VPS, k=k, seed=seed,
        construct=False, select=False, feature_subset=raw_names,
    )
    # The full pipeline: FC + FCBF selection.
    result.results["fs_fc"] = evaluate_cv(
        dataset, label_kind, ALL_VPS, k=k, seed=seed,
        construct=True, select=True,
    )
    return result


@dataclass
class AblationResult:
    """FC/FS ablation: the Section 5.4 claim that both steps matter."""

    results: Dict[str, EvalResult] = field(default_factory=dict)

    @property
    def accuracies(self) -> Dict[str, float]:
        return {name: res.accuracy for name, res in self.results.items()}

    def to_text(self) -> str:
        lines = ["== FC/FS ablation =="]
        for name, res in self.results.items():
            lines.append(
                f"  {name:<12} acc={res.accuracy * 100:5.1f}% "
                f"({len(res.selected_features)} features)"
            )
        return "\n".join(lines)


def run_fc_fs_ablation(
    dataset: Dataset,
    label_kind: str = "exact",
    k: int = 10,
    seed: int = 0,
) -> AblationResult:
    result = AblationResult()
    grid = {
        "raw": dict(construct=False, select=False),
        "fc_only": dict(construct=True, select=False),
        "fs_only": dict(construct=False, select=True),
        "fc_fs": dict(construct=True, select=True),
    }
    for name, kwargs in grid.items():
        result.results[name] = evaluate_cv(
            dataset, label_kind, ALL_VPS, k=k, seed=seed, **kwargs
        )
    return result

"""Section 6.2 / Figures 8-9 / Table 5: deployment without induced faults.

Three analyses on the wild dataset (3G-dominant, no router VP on cellular
paths, only good/problematic ground truth):

* **Figure 8** -- problem detection per available VP set (mobile, server,
  mobile+server), scoring the lab-trained severity model on the binary
  good/problematic truth.
* **Table 5** -- the lab exact-cause model's predictions over the wild
  problematic sessions, tabulated by cause and severity.
* **Figure 9** -- validation of the *server* VP's mobile-side inferences:
  distribution of the true device CPU (and true RSSI) for sessions the
  server VP did / did not flag as mobile-load (low-RSSI), using ground
  truth only the testbed knows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.construction import FeatureConstructor
from repro.core.dataset import Dataset
from repro.core.evaluation import EvalResult, evaluate_transfer
from repro.core.selection import FeatureSelector
from repro.core.vantage import combo_name, features_for_vps
from repro.ml.tree import C45Tree

WILD_COMBOS = (("mobile",), ("server",), ("mobile", "server"))


@dataclass
class WildDetectionResult:
    """Figure 8 payload."""

    results: Dict[str, EvalResult] = field(default_factory=dict)

    @property
    def accuracies(self) -> Dict[str, float]:
        return {name: res.accuracy for name, res in self.results.items()}

    def bars(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for name, res in self.results.items():
            for label in res.confusion.labels:
                out.setdefault(str(label), {})[name] = {
                    "precision": res.confusion.precision(label),
                    "recall": res.confusion.recall(label),
                }
        return out

    def to_text(self) -> str:
        lines = ["== Wild problem detection (Figure 8) =="]
        lines.append(
            "accuracy: "
            + "  ".join(f"{n}={a * 100:.1f}%" for n, a in self.accuracies.items())
        )
        for label, per_vp in self.bars().items():
            lines.append(f"  {label}:")
            for vp, stats in per_vp.items():
                lines.append(
                    f"    {vp:<15} P={stats['precision']:.2f} R={stats['recall']:.2f}"
                )
        return "\n".join(lines)


def run_wild_detection(
    train: Dataset,
    wild: Dataset,
    combos: Sequence[Sequence[str]] = WILD_COMBOS,
) -> WildDetectionResult:
    """Figure 8: lab severity model scored as good/problematic in the wild."""
    result = WildDetectionResult()
    for vps in combos:
        res = evaluate_transfer(
            train, wild, "severity", vps, test_label_kind="existence"
        )
        result.results[combo_name(vps)] = res
    return result


# ---------------------------------------------------------------- Table 5


@dataclass
class WildRcaResult:
    """Table 5 payload: predicted root causes of wild sessions."""

    counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    n_sessions: int = 0
    good_accuracy: float = 0.0

    def to_text(self) -> str:
        lines = ["== Wild root-cause predictions (Table 5) =="]
        lines.append(f"sessions: {self.n_sessions}; "
                     f"good-instance accuracy: {self.good_accuracy * 100:.1f}%")
        header = f"  {'cause':<22}{'mild':>8}{'severe':>8}"
        lines.append(header)
        for cause, row in self.counts.items():
            lines.append(
                f"  {cause:<22}{row.get('mild', 0):>8}{row.get('severe', 0):>8}"
            )
        return "\n".join(lines)


def run_wild_rca(train: Dataset, wild: Dataset) -> WildRcaResult:
    """Predict the exact cause of every wild session with the lab model."""
    constructor = FeatureConstructor().fit(train)
    train_c = constructor.transform(train)
    wild_c = constructor.transform(wild)
    names = features_for_vps(train_c.feature_names, ("mobile", "server"))
    selector = FeatureSelector().fit(train_c, "exact", feature_names=names)
    names = selector.selected or names
    model = C45Tree().fit(
        train_c.to_matrix(names), train_c.labels("exact"), feature_names=names
    )
    predictions = model.predict(wild_c.to_matrix(names))

    result = WildRcaResult(n_sessions=len(wild_c))
    truth = wild_c.labels("existence")
    good_mask = truth == "good"
    predicted_good = predictions == "good"
    if good_mask.sum():
        result.good_accuracy = float(
            (predicted_good & good_mask).sum() / good_mask.sum()
        )
    counts: Dict[str, Dict[str, int]] = {"good": {"mild": 0, "severe": 0}}
    counts["good"]["mild"] = int(predicted_good.sum())
    for pred in predictions[~predicted_good]:
        cause, severity = str(pred).rsplit("_", 1)
        counts.setdefault(cause, {}).setdefault(severity, 0)
        counts[cause][severity] += 1
    result.counts = counts
    return result


# ---------------------------------------------------------------- Figure 9


@dataclass
class ServerInferenceResult:
    """Figure 9 payload: server-VP predictions vs device ground truth."""

    cpu_flagged: List[float] = field(default_factory=list)
    cpu_unflagged: List[float] = field(default_factory=list)
    rssi_flagged: List[float] = field(default_factory=list)
    rssi_unflagged: List[float] = field(default_factory=list)

    @staticmethod
    def _stats(values: List[float]) -> Tuple[float, float]:
        if not values:
            return (float("nan"), float("nan"))
        arr = np.asarray(values)
        return float(np.median(arr)), float(arr.mean())

    @property
    def cpu_separation(self) -> float:
        """Median CPU of flagged minus unflagged sessions (should be > 0)."""
        return self._stats(self.cpu_flagged)[0] - self._stats(self.cpu_unflagged)[0]

    @property
    def rssi_separation(self) -> float:
        """Median RSSI of flagged minus unflagged (should be < 0)."""
        return self._stats(self.rssi_flagged)[0] - self._stats(self.rssi_unflagged)[0]

    def to_text(self) -> str:
        cpu_f = self._stats(self.cpu_flagged)
        cpu_u = self._stats(self.cpu_unflagged)
        rssi_f = self._stats(self.rssi_flagged)
        rssi_u = self._stats(self.rssi_unflagged)
        return "\n".join([
            "== Server-VP mobile-state inference (Figure 9) ==",
            f"  CPU  | flagged 'mobile load': median={cpu_f[0]:.2f} "
            f"(n={len(self.cpu_flagged)}) vs others median={cpu_u[0]:.2f} "
            f"(n={len(self.cpu_unflagged)})  separation={self.cpu_separation:+.2f}",
            f"  RSSI | flagged 'low RSSI':   median={rssi_f[0]:.1f} "
            f"(n={len(self.rssi_flagged)}) vs others median={rssi_u[0]:.1f} "
            f"(n={len(self.rssi_unflagged)})  separation={self.rssi_separation:+.1f}",
        ])


def run_server_inference(train: Dataset, wild: Dataset) -> ServerInferenceResult:
    """Figure 9: can the server VP flag device-side problems correctly?"""
    constructor = FeatureConstructor().fit(train)
    train_c = constructor.transform(train)
    wild_c = constructor.transform(wild)
    names = features_for_vps(train_c.feature_names, ("server",))
    selector = FeatureSelector().fit(train_c, "exact", feature_names=names)
    names = selector.selected or names
    model = C45Tree().fit(
        train_c.to_matrix(names), train_c.labels("exact"), feature_names=names
    )
    predictions = model.predict(wild_c.to_matrix(names))

    result = ServerInferenceResult()
    for inst, pred in zip(wild_c, predictions):
        cause = str(pred).rsplit("_", 1)[0] if str(pred) != "good" else "good"
        true_cpu = float(inst.meta.get("true_cpu", float("nan")))
        true_rssi = float(inst.meta.get("true_rssi", float("nan")))
        if cause == "mobile_load":
            result.cpu_flagged.append(true_cpu)
        else:
            result.cpu_unflagged.append(true_cpu)
        if cause == "low_rssi":
            result.rssi_flagged.append(true_rssi)
        else:
            result.rssi_unflagged.append(true_rssi)
    return result

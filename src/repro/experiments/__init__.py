"""Experiment drivers: one per table/figure of the paper.

Each driver returns a plain-data result object and offers a ``to_text()``
rendering that prints the same rows/series as the paper's table or figure.
Benchmarks and examples share these drivers; datasets are generated once
per configuration and cached on disk (see :mod:`repro.experiments.common`).
"""

from repro.experiments.common import (
    REPRO_SCALE,
    controlled_dataset,
    realworld_dataset,
    scaled,
    wild_dataset,
)

__all__ = [
    "REPRO_SCALE",
    "controlled_dataset",
    "realworld_dataset",
    "wild_dataset",
    "scaled",
]

"""Quantifying the unknown-fault limitation (Section 7).

Sessions are degraded by faults the model has never seen (DNS
misconfiguration, middlebox interference).  Two quantities matter:

* **detection** -- the fraction of genuinely-degraded unknown-fault
  sessions the model still flags as problematic (anomalous features should
  trip the severity model even without the right class);
* **mis-attribution** -- what the exact-cause model calls them, which is
  necessarily one of the trained labels: the paper's documented failure
  mode, made measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.construction import FeatureConstructor
from repro.core.dataset import Dataset
from repro.core.selection import FeatureSelector
from repro.core.vantage import ALL_VPS, features_for_vps
from repro.faults.unknown import DnsMisconfiguration, MiddleboxInterference
from repro.ml.tree import C45Tree
from repro.testbed.testbed import Testbed, TestbedConfig
from repro.video.catalog import VideoCatalog

UNKNOWN_FAULTS = {
    "dns_misconfiguration": DnsMisconfiguration,
    "middlebox_interference": MiddleboxInterference,
}


@dataclass
class UnknownFaultResult:
    n_sessions: int = 0
    n_degraded: int = 0
    detected_of_degraded: int = 0
    attributions: Dict[str, int] = field(default_factory=dict)
    sessions: List[Tuple[str, str, float, str]] = field(default_factory=list)

    @property
    def detection_rate(self) -> float:
        if self.n_degraded == 0:
            return 0.0
        return self.detected_of_degraded / self.n_degraded

    def to_text(self) -> str:
        lines = ["== Unknown faults (Section 7 limitation) =="]
        lines.append(f"  unknown-fault sessions: {self.n_sessions} "
                     f"({self.n_degraded} with degraded QoE)")
        lines.append(f"  degraded sessions flagged problematic: "
                     f"{self.detection_rate * 100:.0f}%")
        lines.append("  attributed (necessarily wrong) causes:")
        for cause, count in sorted(self.attributions.items(), key=lambda x: -x[1]):
            lines.append(f"    {cause:<26} {count}")
        return "\n".join(lines)


def run_unknown_faults(
    train: Dataset,
    n_sessions: int = 16,
    seed: int = 777,
) -> UnknownFaultResult:
    """Train on the 7 known faults, confront the model with 2 unknown ones."""
    constructor = FeatureConstructor().fit(train)
    train_c = constructor.transform(train)
    names = features_for_vps(train_c.feature_names, ALL_VPS)
    selector = FeatureSelector().fit(train_c, "exact", feature_names=names)
    names = selector.selected or names
    exact_model = C45Tree().fit(
        train_c.to_matrix(names), train_c.labels("exact"), feature_names=names
    )
    sev_selector = FeatureSelector().fit(train_c, "severity", feature_names=names)
    sev_names = sev_selector.selected or names
    severity_model = C45Tree().fit(
        train_c.to_matrix(sev_names), train_c.labels("severity"),
        feature_names=sev_names,
    )

    catalog = VideoCatalog(size=40, duration_range=(18.0, 40.0), seed=seed)
    rng = random.Random(seed)
    result = UnknownFaultResult()
    fault_names = list(UNKNOWN_FAULTS)
    for index in range(n_sessions):
        fault_name = fault_names[index % len(fault_names)]
        severity = "mild" if index % 4 < 2 else "severe"
        instance_seed = rng.randrange(2**31)
        scenario_rng = random.Random(instance_seed)
        bed = Testbed(TestbedConfig(seed=instance_seed))
        fault = UNKNOWN_FAULTS[fault_name](severity, scenario_rng)
        record = bed.run_video_session(catalog.pick(scenario_rng), fault=fault)
        bed.shutdown()

        features = constructor.transform_features(record.features)
        sev_row = [features.get(n, 0.0) for n in sev_names]
        exact_row = [features.get(n, 0.0) for n in names]
        predicted_sev = str(severity_model.predict_one(sev_row))
        predicted_cause = str(exact_model.predict_one(exact_row))

        result.n_sessions += 1
        degraded = record.severity != "good"
        if degraded:
            result.n_degraded += 1
            if predicted_sev != "good" or predicted_cause != "good":
                result.detected_of_degraded += 1
            cause = (predicted_cause.rsplit("_", 1)[0]
                     if predicted_cause != "good" else "good")
            result.attributions[cause] = result.attributions.get(cause, 0) + 1
        result.sessions.append(
            (fault_name, severity, record.mos, predicted_cause)
        )
    return result

"""Section 3.2 claim: C4.5 outperforms Naive Bayes and SVM on this data.

A classifier-comparison ablation: the same FC+FS pipeline, three learners,
stratified 10-fold CV on the exact-problem task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.dataset import Dataset
from repro.core.evaluation import EvalResult, evaluate_cv
from repro.core.vantage import ALL_VPS
from repro.ml.naive_bayes import GaussianNB
from repro.ml.svm import LinearSVM
from repro.ml.tree import C45Tree


@dataclass
class ClassifierComparison:
    results: Dict[str, EvalResult] = field(default_factory=dict)

    @property
    def accuracies(self) -> Dict[str, float]:
        return {name: res.accuracy for name, res in self.results.items()}

    @property
    def winner(self) -> str:
        return max(self.results, key=lambda name: self.results[name].accuracy)

    def to_text(self) -> str:
        lines = ["== Classifier comparison (Section 3.2) =="]
        for name, res in self.results.items():
            lines.append(f"  {name:<6} acc={res.accuracy * 100:5.1f}%")
        lines.append(f"  winner: {self.winner}")
        return "\n".join(lines)


def run_classifier_comparison(
    dataset: Dataset,
    label_kind: str = "exact",
    k: int = 10,
    seed: int = 0,
) -> ClassifierComparison:
    factories = {
        "c45": lambda: C45Tree(min_leaf=2, cf=0.25),
        "nb": lambda: GaussianNB(),
        "svm": lambda: LinearSVM(epochs=10, seed=seed),
    }
    result = ClassifierComparison()
    for name, factory in factories.items():
        result.results[name] = evaluate_cv(
            dataset, label_kind, ALL_VPS, model_factory=factory, k=k, seed=seed
        )
    return result

"""Section 5.2's pair study: do VP *pairs* help locate problems?

"We also evaluated the benefits of using VP pairs for location detection.
However, we did not observe any significant improvement in accuracy nor
any intriguing result."  This driver evaluates every single VP, every
pair, and the triple on the location task and reports the pairwise gain
over the better member of each pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.dataset import Dataset
from repro.core.evaluation import EvalResult, evaluate_cv
from repro.core.vantage import combo_name

SINGLES = (("mobile",), ("router",), ("server",))
PAIRS = (("mobile", "router"), ("mobile", "server"), ("router", "server"))
TRIPLE = (("mobile", "router", "server"),)


@dataclass
class VpPairResult:
    results: Dict[str, EvalResult] = field(default_factory=dict)

    @property
    def accuracies(self) -> Dict[str, float]:
        return {name: res.accuracy for name, res in self.results.items()}

    def pair_gains(self) -> List[Tuple[str, float]]:
        """Accuracy of each pair minus its best single member."""
        acc = self.accuracies
        gains = []
        for pair in PAIRS:
            name = combo_name(pair)
            best_single = max(acc[vp] for vp in pair)
            gains.append((name, acc[name] - best_single))
        return gains

    @property
    def max_pair_gain(self) -> float:
        return max(gain for _name, gain in self.pair_gains())

    def to_text(self) -> str:
        lines = ["== VP pairs for location detection (Section 5.2) =="]
        for name, accuracy in self.accuracies.items():
            lines.append(f"  {name:<16} acc={accuracy * 100:5.1f}%")
        lines.append("pair gain over best member:")
        for name, gain in self.pair_gains():
            lines.append(f"  {name:<16} {gain * 100:+.1f} points")
        return "\n".join(lines)


def run_vp_pairs(dataset: Dataset, k: int = 10, seed: int = 0) -> VpPairResult:
    result = VpPairResult()
    for vps in (*SINGLES, *PAIRS, *TRIPLE):
        result.results[combo_name(vps)] = evaluate_cv(
            dataset, "location", vps, k=k, seed=seed
        )
    return result

"""Section 6.1 / Figures 6-7: lab-trained model on a real wireless network.

The model (FC + FS + C4.5) is fit on the controlled dataset only, then
applied to the induced-fault real-world dataset.  The paper reports
problem-detection accuracies of 88% / 84% / 81% / 88.1% (mobile / router /
server / combined) and exact-cause accuracies of 81.1% / 80.5% / 79.3% /
82.9% -- i.e. the lab model transfers with only a few points of loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.core.dataset import Dataset
from repro.core.evaluation import EvalResult, evaluate_transfer
from repro.core.vantage import STANDARD_COMBOS, combo_name


@dataclass
class TransferResult:
    label_kind: str
    results: Dict[str, EvalResult] = field(default_factory=dict)

    @property
    def accuracies(self) -> Dict[str, float]:
        return {name: res.accuracy for name, res in self.results.items()}

    def bars(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for name, res in self.results.items():
            for label in res.confusion.labels:
                out.setdefault(str(label), {})[name] = {
                    "precision": res.confusion.precision(label),
                    "recall": res.confusion.recall(label),
                    "support": res.confusion.support(label),
                }
        return out

    def to_text(self) -> str:
        lines = [f"== Real-world transfer ({self.label_kind}) =="]
        lines.append(
            "accuracy: "
            + "  ".join(f"{n}={a * 100:.1f}%" for n, a in self.accuracies.items())
        )
        for label, per_vp in sorted(self.bars().items()):
            support = next(iter(per_vp.values()))["support"]
            if support == 0:
                continue
            lines.append(f"  {label} (n={support}):")
            for vp, stats in per_vp.items():
                lines.append(
                    f"    {vp:<10} P={stats['precision']:.2f} R={stats['recall']:.2f}"
                )
        return "\n".join(lines)


def run_realworld_detection(
    train: Dataset,
    test: Dataset,
    combos: Sequence[Sequence[str]] = STANDARD_COMBOS,
) -> TransferResult:
    """Figure 6: good/mild/severe detection, trained in the lab."""
    result = TransferResult(label_kind="severity")
    for vps in combos:
        res = evaluate_transfer(train, test, "severity", vps)
        result.results[combo_name(vps)] = res
    return result


def run_realworld_exact(
    train: Dataset,
    test: Dataset,
    combos: Sequence[Sequence[str]] = STANDARD_COMBOS,
) -> TransferResult:
    """Figure 7: exact root cause in the real world, trained in the lab."""
    result = TransferResult(label_kind="exact")
    for vps in combos:
        res = evaluate_transfer(train, test, "exact", vps)
        result.results[combo_name(vps)] = res
    return result

"""Table 1: the features surviving Feature Selection.

The paper's FCBF run reduces 354 features to 22, dominated by interface
utilisations and the mobile hardware metrics (free memory, CPU, RSSI).
This driver reports the selected set, its size and the SU ranking so the
composition can be compared with Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.dataset import Dataset
from repro.core.evaluation import prepare
from repro.core.selection import FeatureSelector
from repro.core.vantage import vp_of_feature


@dataclass
class SelectionResult:
    n_before: int
    selected: List[str]
    su_ranking: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def n_after(self) -> int:
        return len(self.selected)

    def by_vantage_point(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {"mobile": [], "router": [], "server": []}
        for name in self.selected:
            out[vp_of_feature(name)].append(name)
        return out

    def category_counts(self) -> Dict[str, int]:
        counts = {"utilization": 0, "hardware": 0, "rssi": 0, "rtt": 0,
                  "tcp_counters": 0, "other": 0}
        for name in self.selected:
            if name.endswith("_util"):
                counts["utilization"] += 1
            elif "_hw_" in name:
                counts["hardware"] += 1
            elif "rssi" in name:
                counts["rssi"] += 1
            elif "rtt" in name:
                counts["rtt"] += 1
            elif "_tcp_" in name:
                counts["tcp_counters"] += 1
            else:
                counts["other"] += 1
        return counts

    def to_text(self) -> str:
        lines = [
            "== Feature selection (Table 1) ==",
            f"features before FS: {self.n_before}",
            f"features after FS:  {self.n_after}",
            f"categories: {self.category_counts()}",
        ]
        for vp, names in self.by_vantage_point().items():
            lines.append(f"  {vp} ({len(names)}):")
            for name in names:
                lines.append(f"    {name}")
        return "\n".join(lines)


def run_selection(
    dataset: Dataset,
    label_kind: str = "exact",
    delta: float = 0.01,
) -> SelectionResult:
    data = prepare(dataset)
    selector = FeatureSelector(delta=delta)
    selector.fit(data, label_kind=label_kind)
    return SelectionResult(
        n_before=len(data.feature_names),
        selected=selector.selected,
        su_ranking=selector.ranked_su(top=40),
    )

"""Extensions beyond the paper's evaluation.

Three forward-looking analyses the paper motivates but does not evaluate:

* **Continuous training** (Section 7): "as new data is being added to the
  training set, the system's accuracy will continue to improve."  We fold
  increasing fractions of labelled real-world data into the lab training
  set and measure accuracy on held-out real-world sessions.
* **Multi-problem co-occurrence** (Section 9, future work): "the
  co-occurrence of problems that jointly affect video QoE" is listed as a
  limitation.  We inject *pairs* of faults and measure how often the
  single-label classifier recovers at least one true component.
* **Delivery-mechanism transfer** (Section 2's agnosticism claim): a model
  trained on Apache-style progressive sessions evaluated on YouTube-style
  paced sessions, which exercises the feature-construction normalisation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.construction import FeatureConstructor
from repro.core.dataset import Dataset
from repro.core.selection import FeatureSelector
from repro.core.vantage import ALL_VPS, features_for_vps
from repro.faults.base import make_fault
from repro.ml.tree import C45Tree
from repro.testbed.testbed import Testbed, TestbedConfig
from repro.video.catalog import VideoCatalog


# ------------------------------------------------------- continuous training


@dataclass
class ContinuousTrainingResult:
    """Accuracy as labelled field data is folded into the training set."""

    fractions: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        if not self.accuracies:
            return 0.0
        return self.accuracies[-1] - self.accuracies[0]

    def to_text(self) -> str:
        lines = ["== Continuous training (Section 7 extension) =="]
        for frac, acc in zip(self.fractions, self.accuracies):
            lines.append(f"  +{frac * 100:3.0f}% field data -> "
                         f"accuracy {acc * 100:5.1f}%")
        lines.append(f"  improvement: {self.improvement * 100:+.1f} points")
        return "\n".join(lines)


def run_continuous_training(
    lab: Dataset,
    field_data: Dataset,
    label_kind: str = "severity",
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
    seed: int = 0,
) -> ContinuousTrainingResult:
    """Fold fractions of field data into training; test on the rest."""
    rng = random.Random(seed)
    indices = list(range(len(field_data)))
    rng.shuffle(indices)
    holdout_n = max(10, len(indices) // 4)
    holdout_idx = set(indices[:holdout_n])
    pool = [i for i in indices if i not in holdout_idx]
    holdout = Dataset([field_data[i] for i in sorted(holdout_idx)])

    result = ContinuousTrainingResult()
    for fraction in fractions:
        take = int(len(pool) * fraction)
        extra = Dataset([field_data[i] for i in pool[:take]])
        train = lab.merged_with(extra) if len(extra) else lab

        constructor = FeatureConstructor().fit(train)
        train_c = constructor.transform(train)
        test_c = constructor.transform(holdout)
        names = features_for_vps(train_c.feature_names, ALL_VPS)
        selector = FeatureSelector().fit(train_c, label_kind, feature_names=names)
        names = selector.selected or names
        model = C45Tree().fit(
            train_c.to_matrix(names), train_c.labels(label_kind),
            feature_names=names,
        )
        predictions = model.predict(test_c.to_matrix(names))
        truth = test_c.labels(label_kind)
        accuracy = float((predictions == truth).mean())
        result.fractions.append(fraction)
        result.accuracies.append(accuracy)
    return result


# --------------------------------------------------- multi-fault co-occurrence


@dataclass
class MultiFaultResult:
    """How the single-label model behaves under co-occurring faults."""

    n_sessions: int = 0
    at_least_one_component: int = 0
    detected_problem: int = 0
    pairs: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def component_recall(self) -> float:
        if self.n_sessions == 0:
            return 0.0
        return self.at_least_one_component / self.n_sessions

    @property
    def detection_rate(self) -> float:
        if self.n_sessions == 0:
            return 0.0
        return self.detected_problem / self.n_sessions

    def to_text(self) -> str:
        lines = ["== Multi-fault co-occurrence (Section 9 future work) =="]
        lines.append(f"  sessions with two simultaneous faults: {self.n_sessions}")
        lines.append(f"  flagged as problematic: {self.detection_rate * 100:.0f}%")
        lines.append(
            "  predicted cause matches one of the two injected faults: "
            f"{self.component_recall * 100:.0f}%"
        )
        for a, b, predicted in self.pairs[:10]:
            lines.append(f"    {a} + {b} -> predicted {predicted}")
        return "\n".join(lines)


#: fault pairs that can plausibly co-occur on distinct resources
_COMPATIBLE_PAIRS = (
    ("wan_congestion", "mobile_load"),
    ("wan_shaping", "low_rssi"),
    ("lan_congestion", "mobile_load"),
    ("wifi_interference", "mobile_load"),
    ("wan_congestion", "low_rssi"),
)


def run_multi_fault(
    train: Dataset,
    n_sessions: int = 20,
    seed: int = 99,
    label_kind: str = "exact",
) -> MultiFaultResult:
    """Inject fault *pairs* and diagnose with the single-label model."""
    constructor = FeatureConstructor().fit(train)
    train_c = constructor.transform(train)
    names = features_for_vps(train_c.feature_names, ALL_VPS)
    selector = FeatureSelector().fit(train_c, label_kind, feature_names=names)
    names = selector.selected or names
    model = C45Tree().fit(
        train_c.to_matrix(names), train_c.labels(label_kind), feature_names=names
    )

    catalog = VideoCatalog(size=40, duration_range=(18.0, 40.0), seed=seed)
    rng = random.Random(seed)
    result = MultiFaultResult()
    for index in range(n_sessions):
        pair = _COMPATIBLE_PAIRS[index % len(_COMPATIBLE_PAIRS)]
        instance_seed = rng.randrange(2**31)
        scenario_rng = random.Random(instance_seed)
        bed = Testbed(TestbedConfig(seed=instance_seed))
        faults = [make_fault(name, "severe", scenario_rng) for name in pair]
        # apply the second fault manually; the testbed only manages one
        faults[1].apply(bed)
        record = bed.run_video_session(catalog.pick(scenario_rng), fault=faults[0])
        faults[1].clear(bed)
        bed.shutdown()

        features = constructor.transform_features(record.features)
        row = [features.get(n, 0.0) for n in names]
        predicted = str(model.predict_one(row))
        predicted_cause = predicted.rsplit("_", 1)[0] if predicted != "good" else "good"
        result.n_sessions += 1
        result.detected_problem += predicted != "good"
        result.at_least_one_component += predicted_cause in pair
        result.pairs.append((pair[0], pair[1], predicted))
    return result


# --------------------------------------------- delivery-mechanism transfer


@dataclass
class DeliveryTransferResult:
    """Why training must span delivery mechanisms (Section 2).

    ``accuracy_same`` is apache-trained CV on apache sessions;
    ``accuracy_cross`` is the same model on YouTube-paced sessions (in our
    simulator the pacing signature is stark, so this collapses -- the
    motivation for the mixed-delivery default campaign, see DESIGN.md);
    ``accuracy_mixed`` is the mixed-trained model on the same paced
    sessions, which restores the agnosticism the paper requires.
    """

    accuracy_same: float = 0.0
    accuracy_cross: float = 0.0
    accuracy_mixed: float = 0.0

    @property
    def gap(self) -> float:
        return self.accuracy_same - self.accuracy_cross

    @property
    def mixed_recovery(self) -> float:
        """How much of the collapse mixed-mode training recovers."""
        return self.accuracy_mixed - self.accuracy_cross

    def to_text(self) -> str:
        return "\n".join([
            "== Delivery-mechanism transfer (Section 2 agnosticism) ==",
            f"  apache -> apache accuracy:  {self.accuracy_same * 100:5.1f}%",
            f"  apache -> youtube accuracy: {self.accuracy_cross * 100:5.1f}%"
            "   (single-delivery training does not transfer)",
            f"  mixed  -> youtube accuracy: {self.accuracy_mixed * 100:5.1f}%"
            "   (the repo's default campaign)",
            f"  mixed-mode training recovers {self.mixed_recovery * 100:+.1f} points",
        ])


def run_delivery_transfer(
    apache: Dataset,
    youtube: Dataset,
    mixed: Dataset = None,
    label_kind: str = "severity",
    seed: int = 0,
) -> DeliveryTransferResult:
    """Quantify delivery-mechanism sensitivity and the mixed-training fix."""
    from repro.core.evaluation import evaluate_cv, evaluate_transfer

    same = evaluate_cv(apache, label_kind, ALL_VPS, k=5, seed=seed)
    cross = evaluate_transfer(apache, youtube, label_kind, ALL_VPS)
    result = DeliveryTransferResult(
        accuracy_same=same.accuracy, accuracy_cross=cross.accuracy
    )
    if mixed is not None:
        recovered = evaluate_transfer(mixed, youtube, label_kind, ALL_VPS)
        result.accuracy_mixed = recovered.accuracy
    return result

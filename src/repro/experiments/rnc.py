"""RNC vantage-point extension (Section 6.2).

The paper suggests that in-the-wild losses "can be minimized by
introducing more VPs (e.g., on 3G RNCs)".  This experiment quantifies the
claim: a labelled cellular campaign is evaluated with and without the
RNC's bearer-level features (RSCP/CQI/HARQ/handovers/cell load), which in
the cellular testbed live under the ``router_`` prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.dataset import Dataset
from repro.core.evaluation import EvalResult, evaluate_cv
from repro.testbed.cellular import run_cellular_campaign


def cellular_dataset(n_instances: int = 120, seed: int = 31337,
                     verbose: bool = False) -> Dataset:
    """Cached cellular campaign (same convention as the main datasets)."""
    from repro.experiments.common import _cached, scaled

    n = n_instances if n_instances else scaled(120)

    def progress(index, record):
        if verbose and (index + 1) % 25 == 0:
            print(f"  [cellular] {index + 1}/{n} instances", flush=True)

    return _cached(
        "cellular",
        {"n": n, "seed": seed},
        lambda: Dataset.from_records(
            run_cellular_campaign(n_instances=n, seed=seed,
                                  progress=progress if verbose else None)
        ),
    )


@dataclass
class RncExtensionResult:
    results: Dict[str, EvalResult] = field(default_factory=dict)

    @property
    def accuracies(self) -> Dict[str, float]:
        return {name: res.accuracy for name, res in self.results.items()}

    @property
    def rnc_gain(self) -> float:
        """Accuracy gained by adding the RNC VP to mobile+server."""
        return (
            self.accuracies["mobile+server+rnc"]
            - self.accuracies["mobile+server"]
        )

    def to_text(self) -> str:
        lines = ["== RNC vantage point extension (Section 6.2) =="]
        for name, res in self.results.items():
            lines.append(f"  {name:<20} acc={res.accuracy * 100:5.1f}% "
                         f"({len(res.selected_features)} features)")
        lines.append(f"  gain from the RNC VP: {self.rnc_gain * 100:+.1f} points")
        return "\n".join(lines)


def run_rnc_extension(dataset: Dataset, k: int = 5, seed: int = 0) -> RncExtensionResult:
    """Severity detection with and without the RNC features."""
    result = RncExtensionResult()
    combos = {
        "mobile": ("mobile",),
        "server": ("server",),
        "rnc": ("router",),
        "mobile+server": ("mobile", "server"),
        "mobile+server+rnc": ("mobile", "server", "router"),
    }
    for name, vps in combos.items():
        result.results[name] = evaluate_cv(dataset, "severity", vps, k=k, seed=seed)
    return result

"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``campaign``
    Simulate a labelled dataset (controlled / realworld / wild) and save
    it as a pickle.
``evaluate``
    Run one of the paper's experiments against a dataset (cached default
    or a pickle produced by ``campaign``).
``diagnose``
    Train on one dataset and diagnose the sessions of another, printing
    one human-readable report line per session (or JSON with ``--json``;
    ``--batch`` routes all sessions through the vectorized
    ``diagnose_batch`` path).
``stream``
    Run a campaign through the streaming pipeline: records flow one at
    a time from the simulator into a JSONL spool (``--sink``) and/or a
    chunked streaming diagnosis (``--diagnose``), with constant memory.
    ``--resume`` restarts an interrupted spool at the last checkpointed
    instance, bit-identical to an uninterrupted run.
``trace``
    Run a campaign through the streaming pipeline with telemetry
    enabled and print a per-stage summary (wall time, records in/out,
    self time) plus per-worker campaign attribution.  ``--diagnose``
    additionally traces analyzer training and batch diagnosis;
    ``--out`` writes the raw ``repro-trace-v1`` JSONL trace;
    ``--json`` emits the summary machine-readably.
``lint``
    Static analysis of the project's own invariants (determinism,
    metric-schema consistency, fault lifecycle, pipeline-stage schemas,
    telemetry span usage).
    Exits non-zero on any finding not in the committed baseline.

Campaign simulation parallelises over ``--workers`` processes (or the
``REPRO_WORKERS`` environment variable); records are identical to a
serial run.

Examples
--------

::

    python -m repro campaign --kind controlled --instances 120 \
        --workers 4 --out lab.pkl
    python -m repro evaluate --experiment fig3 --dataset lab.pkl
    python -m repro diagnose --train lab.pkl --vps mobile --limit 5
    python -m repro diagnose --train lab.pkl --batch --json
    python -m repro stream --kind controlled --instances 200 \
        --sink lab.jsonl --resume --workers 4
    python -m repro stream --source lab.jsonl --train lab.pkl \
        --diagnose --chunk 32 --json
    python -m repro trace --instances 50 --workers 4 --out run.jsonl
    python -m repro trace --instances 50 --diagnose --json
    python -m repro lint src/repro --baseline lint-baseline.json
"""

from __future__ import annotations

import argparse
import pickle
import sys
from pathlib import Path

from repro.core.dataset import Dataset
from repro.core.diagnosis import RootCauseAnalyzer


def _load_dataset(path: str) -> Dataset:
    with Path(path).open("rb") as fh:
        obj = pickle.load(fh)
    if not isinstance(obj, Dataset):
        raise SystemExit(f"{path} does not contain a repro Dataset")
    return obj


def _default_dataset(kind: str, instances, workers=None):
    from repro.experiments.common import (
        controlled_dataset,
        realworld_dataset,
        wild_dataset,
    )

    builders = {
        "controlled": controlled_dataset,
        "realworld": realworld_dataset,
        "wild": wild_dataset,
    }
    return builders[kind](n_instances=instances, workers=workers, verbose=True)


def cmd_campaign(args) -> int:
    dataset = _default_dataset(args.kind, args.instances, workers=args.workers)
    with Path(args.out).open("wb") as fh:
        pickle.dump(dataset, fh, protocol=pickle.HIGHEST_PROTOCOL)
    print(f"wrote {len(dataset)} instances "
          f"({len(dataset.feature_names)} features) to {args.out}")
    print(f"severity: {dataset.label_counts('severity')}")
    return 0


EXPERIMENTS = {
    "table1": ("selection_table", "run_selection", False),
    "fig3": ("detection", "run_detection", False),
    "sec52": ("location", "run_location", False),
    "fig4": ("exact", "run_exact", False),
    "fig5": ("feature_sets", "run_feature_sets", False),
    "ablation": ("feature_sets", "run_fc_fs_ablation", False),
    "classifiers": ("classifiers", "run_classifier_comparison", False),
    "fig6": ("realworld", "run_realworld_detection", True),
    "fig7": ("realworld", "run_realworld_exact", True),
    "fig8": ("wild", "run_wild_detection", True),
    "fig9": ("wild", "run_server_inference", True),
    "table5": ("wild", "run_wild_rca", True),
}


def cmd_evaluate(args) -> int:
    import importlib

    module_name, fn_name, needs_two = EXPERIMENTS[args.experiment]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    runner = getattr(module, fn_name)
    if needs_two:
        train = (_load_dataset(args.train) if args.train
                 else _default_dataset("controlled", None))
        test = (_load_dataset(args.dataset) if args.dataset
                else _default_dataset(
                    "wild" if args.experiment in ("fig8", "fig9", "table5")
                    else "realworld", None))
        result = runner(train, test)
    else:
        dataset = (_load_dataset(args.dataset) if args.dataset
                   else _default_dataset("controlled", None))
        result = runner(dataset)
    if hasattr(result, "to_text"):
        print(result.to_text())
    else:
        print(result)
    return 0


def cmd_diagnose(args) -> int:
    import json

    train = (_load_dataset(args.train) if args.train
             else _default_dataset("controlled", None, workers=args.workers))
    target = _load_dataset(args.dataset) if args.dataset else train
    vps = tuple(args.vps.split(","))
    analyzer = RootCauseAnalyzer(vps=vps).fit(train)
    limit = args.limit if args.limit > 0 else len(target)
    instances = target.instances[:limit]
    if args.batch:
        reports = analyzer.diagnose_batch(instances)
    else:
        reports = [analyzer.diagnose(inst) for inst in instances]
    if args.json:
        payload = [
            dict(report.to_dict(), index=index, truth=inst.label("exact"))
            for index, (inst, report) in enumerate(zip(instances, reports))
        ]
        print(json.dumps(payload, indent=2))
        return 0
    hits = 0
    for index, (inst, report) in enumerate(zip(instances, reports)):
        truth = inst.label("exact")
        match = "OK " if report.exact == truth else "MISS"
        hits += report.exact == truth
        print(f"[{index:4d}] {match} truth={truth:<28} {report.summary()}")
        if args.explain:
            _label, path = analyzer.explain(
                inst.features, task="exact",
                session_s=inst.meta.get("session_s"),
            )
            for cond in path[:5]:
                print(f"         because {cond}")
    print(f"\nexact-label agreement: {hits}/{limit}")
    return 0


def cmd_report(args) -> int:
    import json

    from repro.core.report import fleet_report

    train = (_load_dataset(args.train) if args.train
             else _default_dataset("controlled", None, workers=args.workers))
    target = _load_dataset(args.dataset) if args.dataset else train
    analyzer = RootCauseAnalyzer(vps=tuple(args.vps.split(","))).fit(train)
    report = fleet_report(analyzer, target)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.to_text())
    return 0


def cmd_stream(args) -> int:
    import json

    from repro.pipeline import (
        CampaignSource,
        CountSink,
        DiagnoseStage,
        JsonlSink,
        JsonlSource,
        Pipeline,
        config_fingerprint,
        resume_position,
    )
    from repro.testbed.campaign import CampaignConfig
    from repro.testbed.realworld import RealWorldConfig, WildConfig

    stages = []
    if args.source:
        if args.resume:
            raise SystemExit("--resume applies to simulated campaigns, not --source")
        if args.sink:
            raise SystemExit("--sink spools a simulated campaign; with --source "
                             "the records are already on disk")
        source = JsonlSource(args.source)
    else:
        from repro.experiments.common import (
            CONTROLLED_N,
            REALWORLD_N,
            WILD_N,
            scaled,
        )

        kinds = {
            "controlled": (CampaignConfig, CONTROLLED_N, 42),
            "realworld": (RealWorldConfig, REALWORLD_N, 1337),
            "wild": (WildConfig, WILD_N, 2718),
        }
        config_cls, default_n, default_seed = kinds[args.kind]
        config = config_cls(
            n_instances=args.instances if args.instances else scaled(default_n),
            seed=args.seed if args.seed is not None else default_seed,
        )
        key = config_fingerprint(config)
        start = 0
        if args.resume:
            if not args.sink:
                raise SystemExit("--resume needs --sink to know which spool to continue")
            try:
                start = resume_position(args.sink, key)
            except ValueError as exc:
                raise SystemExit(str(exc))
            if start:
                print(f"resuming {args.sink} at instance {start}/"
                      f"{config.n_instances}", flush=True)
        if start >= config.n_instances:
            print(f"{args.sink}: campaign already complete "
                  f"({config.n_instances} instances)")
            return 0

        def progress(index: int, record) -> None:
            if not args.json:
                print(f"  [{args.kind}] {index + 1}/{config.n_instances} "
                      f"(severity={record.severity})", flush=True)

        source = CampaignSource(
            config, start=start, workers=args.workers,
            progress=progress if args.verbose else None,
        )
        if args.sink:
            stages.append(JsonlSink(args.sink, config_key=key, start=start))

    analyzer = None
    if args.diagnose:
        train = (_load_dataset(args.train) if args.train
                 else _default_dataset("controlled", None, workers=args.workers))
        analyzer = RootCauseAnalyzer(vps=tuple(args.vps.split(","))).fit(train)
        stages.append(DiagnoseStage(analyzer, chunk=args.chunk))
    counter = CountSink()
    stages.append(counter)

    pipeline = Pipeline(source, *stages)
    index = 0
    for item in pipeline:
        if analyzer is not None:
            record, report = item.session, item.report
            truth = record.exact_label
            if args.json:
                print(json.dumps(dict(report.to_dict(), index=index, truth=truth)))
            else:
                match = "OK " if report.exact == truth else "MISS"
                print(f"[{index:4d}] {match} truth={truth:<28} {report.summary()}")
        index += 1
    summary = counter.result()
    if not args.json:
        print(f"streamed {summary['count']} sessions; "
              f"severity: {summary['severity']}")
        if args.sink and not args.source:
            print(f"spooled to {args.sink}")
    return 0


def cmd_trace(args) -> int:
    import json

    from repro.obs import (
        render_summary,
        summarize,
        tracing,
        write_trace,
    )
    from repro.pipeline import (
        CampaignSource,
        CountSink,
        DiagnoseStage,
        Pipeline,
    )
    from repro.testbed.campaign import CampaignConfig
    from repro.testbed.realworld import RealWorldConfig, WildConfig

    kinds = {
        "controlled": (CampaignConfig, 42),
        "realworld": (RealWorldConfig, 1337),
        "wild": (WildConfig, 2718),
    }
    config_cls, default_seed = kinds[args.kind]
    config = config_cls(
        n_instances=args.instances,
        seed=args.seed if args.seed is not None else default_seed,
    )

    with tracing() as tel:
        stages = []
        if args.diagnose:
            train = (_load_dataset(args.train) if args.train
                     else _default_dataset("controlled", None,
                                           workers=args.workers))
            analyzer = RootCauseAnalyzer(vps=tuple(args.vps.split(","))).fit(train)
            stages.append(DiagnoseStage(analyzer, chunk=args.chunk))
        counter = CountSink()
        stages.append(counter)
        source = CampaignSource(config, workers=args.workers)
        Pipeline(source, *stages).run()
        payload = tel.export(
            command="trace", kind=args.kind, instances=config.n_instances
        )

    if args.out:
        write_trace(args.out, payload)
    summary = summarize(payload)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
        if args.out:
            print(f"trace written to {args.out}")
    return 0


def cmd_lint(args) -> int:
    import json

    from repro.analysis import (
        lint_paths,
        render_text,
        rule_table,
        save_baseline,
    )

    if args.rules:
        for rule_id, name, severity, summary in rule_table():
            print(f"{rule_id}  {severity:<7} {name:<28} {summary}")
        return 0

    paths = [Path(p) for p in args.paths]
    if not paths:
        default = Path("src/repro")
        paths = [default if default.is_dir() else Path(".")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        raise SystemExit(f"no such path: {', '.join(map(str, missing))}")

    baseline = Path(args.baseline) if args.baseline else None
    if baseline is None:
        candidate = Path("lint-baseline.json")
        baseline = candidate if candidate.exists() else None

    result = lint_paths(paths, root=Path.cwd(), baseline_path=baseline)

    if args.update_baseline:
        target = baseline or Path("lint-baseline.json")
        payload = save_baseline(target, result.findings)
        print(f"wrote {len(payload['entries'])} entries to {target}")
        return 0

    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(render_text(result, show_notes=args.notes))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("campaign", help="simulate a labelled dataset")
    p.add_argument("--kind", choices=("controlled", "realworld", "wild"),
                   default="controlled")
    p.add_argument("--instances", type=int, default=None)
    p.add_argument("--workers", type=int, default=None,
                   help="simulate instances on N processes (default: "
                        "REPRO_WORKERS or serial); output is identical")
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser("evaluate", help="run a paper experiment")
    p.add_argument("--experiment", choices=sorted(EXPERIMENTS), required=True)
    p.add_argument("--dataset", help="pickle from `repro campaign`")
    p.add_argument("--train", help="training pickle for transfer experiments")
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("diagnose", help="diagnose sessions of a dataset")
    p.add_argument("--train", help="training pickle (default: cached controlled)")
    p.add_argument("--dataset", help="sessions to diagnose (default: training set)")
    p.add_argument("--vps", default="mobile,router,server",
                   help="comma-separated vantage points")
    p.add_argument("--limit", type=int, default=10)
    p.add_argument("--explain", action="store_true",
                   help="print the C4.5 decision path per diagnosis")
    p.add_argument("--batch", action="store_true",
                   help="diagnose all sessions in one vectorized batch")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of text")
    p.add_argument("--workers", type=int, default=None,
                   help="workers for simulating the default training set")
    p.set_defaults(fn=cmd_diagnose)

    p = sub.add_parser("report", help="fleet QoE report over a dataset")
    p.add_argument("--train", help="training pickle (default: cached controlled)")
    p.add_argument("--dataset", help="sessions to report on (default: training set)")
    p.add_argument("--vps", default="mobile,router,server")
    p.add_argument("--json", action="store_true",
                   help="emit the fleet report as JSON")
    p.add_argument("--workers", type=int, default=None,
                   help="workers for simulating the default training set")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("stream",
                       help="run a campaign through the streaming pipeline")
    p.add_argument("--kind", choices=("controlled", "realworld", "wild"),
                   default="controlled")
    p.add_argument("--instances", type=int, default=None)
    p.add_argument("--seed", type=int, default=None,
                   help="campaign seed (default: the kind's canonical seed)")
    p.add_argument("--workers", type=int, default=None,
                   help="simulate instances on N processes; the record "
                        "stream is identical to a serial run")
    p.add_argument("--chunk", type=int, default=64,
                   help="sessions per vectorized diagnosis chunk")
    p.add_argument("--sink", metavar="PATH",
                   help="spool records to a checkpointed JSONL file")
    p.add_argument("--resume", action="store_true",
                   help="continue an interrupted --sink spool from its "
                        "checkpoint (bit-identical to an unbroken run)")
    p.add_argument("--source", metavar="PATH",
                   help="replay a JSONL spool instead of simulating")
    p.add_argument("--diagnose", action="store_true",
                   help="stream every record through chunked diagnosis")
    p.add_argument("--train", help="training pickle for --diagnose "
                                   "(default: cached controlled)")
    p.add_argument("--vps", default="mobile,router,server")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON object per diagnosed session")
    p.add_argument("--verbose", action="store_true",
                   help="print per-instance simulation progress")
    p.set_defaults(fn=cmd_stream)

    p = sub.add_parser("trace",
                       help="trace a streamed campaign and summarize it")
    p.add_argument("--kind", choices=("controlled", "realworld", "wild"),
                   default="controlled")
    p.add_argument("--instances", type=int, default=50,
                   help="campaign size (default: 50)")
    p.add_argument("--seed", type=int, default=None,
                   help="campaign seed (default: the kind's canonical seed)")
    p.add_argument("--workers", type=int, default=None,
                   help="simulate instances on N processes; worker spans "
                        "are attributed per pid in the summary")
    p.add_argument("--diagnose", action="store_true",
                   help="also trace analyzer training and chunked diagnosis")
    p.add_argument("--train", help="training pickle for --diagnose "
                                   "(default: cached controlled)")
    p.add_argument("--vps", default="mobile,router,server")
    p.add_argument("--chunk", type=int, default=64,
                   help="sessions per vectorized diagnosis chunk")
    p.add_argument("--out", metavar="PATH",
                   help="write the raw repro-trace-v1 JSONL trace here")
    p.add_argument("--json", action="store_true",
                   help="emit the summary as machine-readable JSON")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("lint", help="static analysis of project invariants")
    p.add_argument("paths", nargs="*",
                   help="files/directories to check (default: src/repro)")
    p.add_argument("--baseline",
                   help="accepted-findings file (default: lint-baseline.json "
                        "in the current directory, if present)")
    p.add_argument("--update-baseline", action="store_true",
                   help="accept all current findings into the baseline file")
    p.add_argument("--json", action="store_true",
                   help="emit findings as machine-readable JSON")
    p.add_argument("--notes", action="store_true",
                   help="also print note-severity findings (e.g. M202)")
    p.add_argument("--rules", action="store_true",
                   help="print the rule catalog and exit")
    p.set_defaults(fn=cmd_lint)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``campaign``
    Simulate a labelled dataset (controlled / realworld / wild) and save
    it as a pickle.  With ``--shards N`` the controlled campaign's
    instance space is seed-partitioned into N independently resumable
    JSONL shard spools instead: ``--shard K`` runs one shard (on this
    host or any other), ``--orchestrate`` supervises all N as
    subprocesses with checkpoint-resume retries, and ``--merge``
    reassembles the shard spools into the exact serial record order,
    byte-identical to a never-sharded run.
``evaluate``
    Run one of the paper's experiments against a dataset (cached default
    or a pickle produced by ``campaign``).
``diagnose``
    Diagnose the sessions of a dataset, printing one human-readable
    report line per session (or JSON with ``--json``).  A thin client of
    :mod:`repro.api`: records flow through exactly the same
    ``diagnose_records`` entry point the HTTP server uses.
``report``
    Fleet-level QoE report over a dataset.
``stream``
    Run a campaign through the streaming pipeline: records flow one at
    a time from the simulator into a JSONL spool (``--sink``) and/or a
    chunked streaming diagnosis (``--diagnose``), with constant memory.
    ``--resume`` restarts an interrupted spool at the last checkpointed
    instance, bit-identical to an uninterrupted run.
``serve``
    Long-lived diagnosis service (``repro.serve``): an asyncio HTTP
    server that micro-batches concurrent ``POST /v1/diagnose`` requests
    onto the vectorized analyzer, with health/readiness endpoints,
    versioned hot-swappable models, and graceful SIGTERM drain.
``trace``
    Run a campaign through the streaming pipeline with telemetry
    enabled and print a per-stage summary (wall time, records in/out,
    self time) plus per-worker campaign attribution.
``lint``
    Static analysis of the project's own invariants (determinism,
    metric-schema consistency, fault lifecycle, pipeline-stage schemas,
    telemetry span usage).

Exit codes
----------

Every subcommand exits uniformly: **0** on success, **1** on a domain
failure (bad dataset file, lint findings, foreign spool, ...), **2** on
a usage error (unknown flags, incompatible flag combinations, malformed
invocations).  ``main()`` returns these codes rather than raising.

JSON output
-----------

Every ``--json`` emission is wrapped in one envelope::

    {"schema": "repro-<command>-v1", "data": ...}

``stream --json`` emits one envelope per line (NDJSON); all other
commands emit a single envelope document.  The pre-envelope ad-hoc
shapes (bare lists and objects) are **deprecated and removed** —
consumers must unwrap ``data`` and should dispatch on ``schema``.

Examples
--------

::

    python -m repro campaign --kind controlled --instances 120 \
        --workers 4 --out lab.pkl
    python -m repro campaign --instances 100000 --shards 16 \
        --orchestrate --out mega.jsonl --json
    python -m repro evaluate --experiment fig3 --dataset lab.pkl
    python -m repro diagnose --train lab.pkl --vps mobile --limit 5
    python -m repro stream --kind controlled --instances 200 \
        --sink lab.jsonl --resume --workers 4
    python -m repro serve --train lab.pkl --port 8080 --max-batch 64
    python -m repro trace --instances 50 --diagnose --json
    python -m repro lint src/repro --baseline lint-baseline.json
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
from pathlib import Path

from repro.core.dataset import Dataset
from repro.schemas import envelope_tag


class CliError(Exception):
    """A domain failure: the command ran but its work failed (exit 1)."""


class UsageError(CliError):
    """An invocation the parser accepts but the command rejects (exit 2)."""


def _print_envelope(command: str, data: object, indent=2) -> None:
    """Emit the one machine-readable shape: the versioned JSON envelope."""
    print(json.dumps({"schema": envelope_tag(command), "data": data},
                     indent=indent))


def _envelope_line(command: str, data: object) -> str:
    """One NDJSON envelope line (for streaming emitters)."""
    return json.dumps({"schema": envelope_tag(command), "data": data},
                      separators=(",", ":"))


def _load_dataset(path: str) -> Dataset:
    try:
        with Path(path).open("rb") as fh:
            obj = pickle.load(fh)
    except OSError as exc:
        raise CliError(f"cannot read dataset {path}: {exc}") from exc
    except (pickle.UnpicklingError, EOFError) as exc:
        raise CliError(f"{path} is not a dataset pickle: {exc}") from exc
    if not isinstance(obj, Dataset):
        raise CliError(f"{path} does not contain a repro Dataset")
    return obj


def _default_dataset(kind: str, instances, workers=None, sessions_per_proc=None):
    from repro.experiments.common import (
        controlled_dataset,
        realworld_dataset,
        wild_dataset,
    )

    builders = {
        "controlled": controlled_dataset,
        "realworld": realworld_dataset,
        "wild": wild_dataset,
    }
    if sessions_per_proc is not None:
        if kind != "controlled":
            raise UsageError(
                "--sessions-per-proc applies to controlled campaigns only"
            )
        return controlled_dataset(
            n_instances=instances,
            workers=workers,
            sessions_per_proc=sessions_per_proc,
            verbose=True,
        )
    return builders[kind](n_instances=instances, workers=workers, verbose=True)


def _fit_analyzer(train: Dataset, vps: str):
    """Fit through the facade; bad ``--vps`` is a usage error, a dataset
    too small to train on is a domain failure."""
    from repro import api
    from repro.core.vantage import ALL_VPS

    wanted = tuple(vps.split(","))
    unknown = set(wanted) - set(ALL_VPS)
    if unknown or not wanted:
        raise UsageError(f"unknown vantage points: {sorted(unknown)}")
    try:
        return api.load_analyzer(dataset=train, vps=wanted)
    except ValueError as exc:
        raise CliError(str(exc)) from exc


def _campaign_shard_config(args):
    """The controlled-campaign config every sharded mode shares.

    Sharding is defined over the controlled campaign's seed draws, so
    the serial (``--shards 1``) reference and every shard of an N-way
    run build the exact same config — that identity is what the
    config fingerprint in each manifest pins down.
    """
    from repro.experiments.common import CONTROLLED_N, scaled
    from repro.testbed.campaign import CampaignConfig

    return CampaignConfig(
        n_instances=(args.instances if args.instances
                     else scaled(CONTROLLED_N)),
        seed=args.seed if args.seed is not None else 42,
    )


def _check_shard_flags(args) -> None:
    """Reject invalid sharded-campaign flag combinations (exit 2)."""
    if args.shards is None:
        conflicts = [flag for flag, value in (
            ("--shard", args.shard is not None),
            ("--orchestrate", args.orchestrate),
            ("--merge", args.merge),
            ("--resume", args.resume),
        ) if value]
        if conflicts:
            raise UsageError(f"{', '.join(conflicts)} require(s) --shards N")
        return
    if args.shards < 1:
        raise UsageError(f"--shards must be >= 1, got {args.shards}")
    if args.kind != "controlled":
        raise UsageError("--shards applies to controlled campaigns only")
    modes = [flag for flag, value in (
        ("--shard", args.shard is not None),
        ("--orchestrate", args.orchestrate),
        ("--merge", args.merge),
    ) if value]
    if len(modes) != 1:
        raise UsageError(
            "--shards needs exactly one of --shard K, --orchestrate "
            f"or --merge (got {', '.join(modes) if modes else 'none'})"
        )
    if args.shard is not None and not 0 <= args.shard < args.shards:
        raise UsageError(
            f"--shard must be in [0, {args.shards}), got {args.shard}"
        )
    if args.resume and args.shard is None and not args.orchestrate:
        raise UsageError("--resume applies to --shard/--orchestrate runs")


def _cmd_campaign_sharded(args) -> int:
    from repro.pipeline import (
        NotShardedError,
        OrchestratorSettings,
        ShardError,
        merge_shards,
        orchestrate,
        run_shard,
        shard_spool_path,
    )

    config = _campaign_shard_config(args)
    base = args.out

    if args.merge:
        try:
            merged = merge_shards(base, args.shards)
        except NotShardedError as exc:
            raise UsageError(str(exc)) from exc
        except ShardError as exc:
            raise CliError(str(exc)) from exc
        if args.json:
            _print_envelope("campaign-shard", {
                "mode": "merge",
                "out": str(merged.out),
                "shards": merged.shards,
                "records": merged.records,
                "config_key": merged.config_key,
            })
        else:
            print(f"merged {merged.records} records from {merged.shards} "
                  f"shards into {merged.out}")
        return 0

    if args.orchestrate:
        settings = OrchestratorSettings(
            max_retries=args.retries,
            heartbeat_timeout=args.heartbeat_timeout,
        )

        def log(event: str, shard: int, detail: str) -> None:
            if not args.json:
                print(f"  [shard {shard}] {event}"
                      + (f": {detail}" if detail else ""), flush=True)

        result = orchestrate(
            config, base, args.shards,
            workers=args.workers,
            sessions_per_proc=args.sessions_per_proc,
            settings=settings,
            log=log,
        )
        if not result.ok:
            detail = json.dumps(result.to_dict())
            raise CliError(
                f"shards {result.failed_shards} exhausted their retry "
                f"budget ({args.retries}); partial spools are preserved "
                f"next to {base} — {detail}"
            )
        merged = merge_shards(base, args.shards)
        if args.json:
            _print_envelope("campaign-shard", {
                "mode": "orchestrate",
                "out": str(merged.out),
                "shards": args.shards,
                "records": merged.records,
                "retries": result.retries,
                "config_key": merged.config_key,
                "shard_status": result.to_dict()["shards"],
            })
        else:
            print(f"orchestrated {args.shards} shards "
                  f"({result.retries} retries); merged {merged.records} "
                  f"records into {merged.out}")
        return 0

    # One shard of an N-way campaign (run on this host or any other).
    if args.resume:
        spool = shard_spool_path(base, args.shard, args.shards)
        from repro.pipeline import load_manifest

        if spool.exists() and load_manifest(spool) is None:
            raise UsageError(
                f"{spool} exists but has no shard manifest; it was not "
                "written by a sharded campaign, refusing to resume"
            )

    def progress(index: int, record) -> None:
        if not args.json:
            print(f"  [shard {args.shard}] instance {index} "
                  f"(severity={record.severity})", flush=True)

    try:
        shard_run = run_shard(
            config, base, args.shards, args.shard,
            workers=args.workers,
            sessions_per_proc=args.sessions_per_proc,
            resume=args.resume,
            progress=progress if args.verbose else None,
        )
    except NotShardedError as exc:
        raise UsageError(str(exc)) from exc
    except ShardError as exc:
        raise CliError(str(exc)) from exc
    if args.json:
        _print_envelope("campaign-shard", {
            "mode": "shard",
            "shard": shard_run.shard,
            "shards": shard_run.shards,
            "spool": str(shard_run.spool),
            "records": shard_run.records,
            "resumed_at": shard_run.resumed_at,
        })
    else:
        print(f"shard {shard_run.shard}/{shard_run.shards}: "
              f"{shard_run.records} records in {shard_run.spool}"
              + (f" (resumed at {shard_run.resumed_at})"
                 if shard_run.resumed_at else ""))
    return 0


def cmd_campaign(args) -> int:
    _check_shard_flags(args)
    if args.shards is not None:
        return _cmd_campaign_sharded(args)
    dataset = _default_dataset(
        args.kind,
        args.instances,
        workers=args.workers,
        sessions_per_proc=args.sessions_per_proc,
    )
    with Path(args.out).open("wb") as fh:
        pickle.dump(dataset, fh, protocol=pickle.HIGHEST_PROTOCOL)
    severity = dataset.label_counts("severity")
    if args.json:
        _print_envelope("campaign", {
            "out": args.out,
            "kind": args.kind,
            "instances": len(dataset),
            "features": len(dataset.feature_names),
            "severity": severity,
        })
        return 0
    print(f"wrote {len(dataset)} instances "
          f"({len(dataset.feature_names)} features) to {args.out}")
    print(f"severity: {severity}")
    return 0


EXPERIMENTS = {
    "table1": ("selection_table", "run_selection", False),
    "fig3": ("detection", "run_detection", False),
    "sec52": ("location", "run_location", False),
    "fig4": ("exact", "run_exact", False),
    "fig5": ("feature_sets", "run_feature_sets", False),
    "ablation": ("feature_sets", "run_fc_fs_ablation", False),
    "classifiers": ("classifiers", "run_classifier_comparison", False),
    "fig6": ("realworld", "run_realworld_detection", True),
    "fig7": ("realworld", "run_realworld_exact", True),
    "fig8": ("wild", "run_wild_detection", True),
    "fig9": ("wild", "run_server_inference", True),
    "table5": ("wild", "run_wild_rca", True),
}


def cmd_evaluate(args) -> int:
    import importlib

    module_name, fn_name, needs_two = EXPERIMENTS[args.experiment]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    runner = getattr(module, fn_name)
    if needs_two:
        train = (_load_dataset(args.train) if args.train
                 else _default_dataset("controlled", None))
        test = (_load_dataset(args.dataset) if args.dataset
                else _default_dataset(
                    "wild" if args.experiment in ("fig8", "fig9", "table5")
                    else "realworld", None))
        result = runner(train, test)
    else:
        dataset = (_load_dataset(args.dataset) if args.dataset
                   else _default_dataset("controlled", None))
        result = runner(dataset)
    if hasattr(result, "to_text"):
        print(result.to_text())
    else:
        print(result)
    return 0


def cmd_diagnose(args) -> int:
    from repro import api

    if args.model:
        if args.train:
            raise UsageError("--model and --train are mutually exclusive")
        if not args.dataset:
            raise UsageError("--model needs --dataset (sessions to diagnose)")
        try:
            analyzer = api.load_analyzer(path=args.model)
        except (OSError, ValueError) as exc:
            raise CliError(f"cannot load model {args.model}: {exc}") from exc
        target = _load_dataset(args.dataset)
    else:
        train = (_load_dataset(args.train) if args.train
                 else _default_dataset("controlled", None, workers=args.workers))
        target = _load_dataset(args.dataset) if args.dataset else train
        analyzer = _fit_analyzer(train, args.vps)

    limit = args.limit if args.limit > 0 else len(target)
    instances = target.instances[:limit]
    response = api.diagnose_records(analyzer, instances)
    entries = [
        dict(diagnosis, index=index, truth=inst.label("exact"))
        for index, (inst, diagnosis) in enumerate(
            zip(instances, response.diagnoses))
    ]
    if args.json:
        _print_envelope("diagnose", {
            "model": response.model.to_dict(),
            "diagnoses": entries,
        })
        return 0
    hits = 0
    for entry in entries:
        truth = entry["truth"]
        match = "OK " if entry["exact"] == truth else "MISS"
        hits += entry["exact"] == truth
        print(f"[{entry['index']:4d}] {match} truth={truth:<28} {entry['summary']}")
        if args.explain:
            inst = instances[entry["index"]]
            _label, path = analyzer.explain(
                inst.features, task="exact",
                session_s=inst.meta.get("session_s"),
            )
            for cond in path[:5]:
                print(f"         because {cond}")
    print(f"\nexact-label agreement: {hits}/{limit}")
    return 0


def cmd_report(args) -> int:
    from repro.core.report import fleet_report

    train = (_load_dataset(args.train) if args.train
             else _default_dataset("controlled", None, workers=args.workers))
    target = _load_dataset(args.dataset) if args.dataset else train
    analyzer = _fit_analyzer(train, args.vps)
    report = fleet_report(analyzer, target)
    if args.json:
        _print_envelope("report", report.to_dict())
    else:
        print(report.to_text())
    return 0


def cmd_stream(args) -> int:
    from repro.pipeline import (
        CampaignSource,
        CountSink,
        DiagnoseStage,
        JsonlSink,
        JsonlSource,
        Pipeline,
        config_fingerprint,
        resume_position,
    )
    from repro.testbed.campaign import CampaignConfig
    from repro.testbed.realworld import RealWorldConfig, WildConfig

    stages = []
    if args.source:
        if args.resume:
            raise UsageError("--resume applies to simulated campaigns, not --source")
        if args.sink:
            raise UsageError("--sink spools a simulated campaign; with --source "
                             "the records are already on disk")
        source = JsonlSource(args.source)
    else:
        from repro.experiments.common import (
            CONTROLLED_N,
            REALWORLD_N,
            WILD_N,
            scaled,
        )

        kinds = {
            "controlled": (CampaignConfig, CONTROLLED_N, 42),
            "realworld": (RealWorldConfig, REALWORLD_N, 1337),
            "wild": (WildConfig, WILD_N, 2718),
        }
        config_cls, default_n, default_seed = kinds[args.kind]
        config = config_cls(
            n_instances=args.instances if args.instances else scaled(default_n),
            seed=args.seed if args.seed is not None else default_seed,
        )
        key = config_fingerprint(config)
        start = 0
        if args.resume:
            if not args.sink:
                raise UsageError("--resume needs --sink to know which spool "
                                 "to continue")
            try:
                start = resume_position(args.sink, key)
            except ValueError as exc:
                raise CliError(str(exc)) from exc
            if start:
                print(f"resuming {args.sink} at instance {start}/"
                      f"{config.n_instances}", flush=True)
        if start >= config.n_instances:
            print(f"{args.sink}: campaign already complete "
                  f"({config.n_instances} instances)")
            return 0

        def progress(index: int, record) -> None:
            if not args.json:
                print(f"  [{args.kind}] {index + 1}/{config.n_instances} "
                      f"(severity={record.severity})", flush=True)

        if args.sessions_per_proc is not None and args.kind != "controlled":
            raise UsageError(
                "--sessions-per-proc applies to controlled campaigns only"
            )
        source = CampaignSource(
            config, start=start, workers=args.workers,
            progress=progress if args.verbose else None,
            sessions_per_proc=args.sessions_per_proc,
        )
        if args.sink:
            stages.append(JsonlSink(args.sink, config_key=key, start=start))

    analyzer = None
    if args.diagnose:
        train = (_load_dataset(args.train) if args.train
                 else _default_dataset("controlled", None, workers=args.workers))
        analyzer = _fit_analyzer(train, args.vps)
        stages.append(DiagnoseStage(analyzer, chunk=args.chunk))
    counter = CountSink()
    stages.append(counter)

    pipeline = Pipeline(source, *stages)
    index = 0
    for item in pipeline:
        if analyzer is not None:
            record, report = item.session, item.report
            truth = record.exact_label
            if args.json:
                print(_envelope_line(
                    "stream", dict(report.to_dict(), index=index, truth=truth)))
            else:
                match = "OK " if report.exact == truth else "MISS"
                print(f"[{index:4d}] {match} truth={truth:<28} {report.summary()}")
        index += 1
    summary = counter.result()
    if not args.json:
        print(f"streamed {summary['count']} sessions; "
              f"severity: {summary['severity']}")
        if args.sink and not args.source:
            print(f"spooled to {args.sink}")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve import DiagnosisServer, ModelRegistry, RegistryError, ServeConfig

    registry = ModelRegistry()
    sources = [flag for flag, value in
               (("--models", args.models), ("--model", args.model),
                ("--train", args.train)) if value]
    if len(sources) > 1:
        raise UsageError(f"pass one model source, got {' and '.join(sources)}")
    try:
        if args.models:
            registry.load_dir(args.models)
        elif args.model:
            registry.load_path(args.model, activate=True)
        else:
            train = (_load_dataset(args.train) if args.train
                     else _default_dataset("controlled", None,
                                           workers=args.workers))
            registry.register("default", _fit_analyzer(train, args.vps))
    except RegistryError as exc:
        raise CliError(str(exc)) from exc
    except (OSError, ValueError) as exc:
        raise CliError(f"cannot load model(s): {exc}") from exc

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
    )
    server = DiagnosisServer(registry, config)

    async def _serve() -> None:
        try:
            await server.start()
        except OSError as exc:
            raise CliError(
                f"cannot bind {args.host}:{args.port}: {exc}") from exc
        startup = {
            "host": args.host,
            "port": server.port,
            "active": registry.active_version,
            "versions": registry.versions(),
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
        }
        if args.json:
            _print_envelope("serve", startup, indent=None)
        else:
            print(f"serving diagnoses on http://{args.host}:{server.port} "
                  f"(model {registry.active_version}; "
                  f"batch<={args.max_batch}, wait<={args.max_wait_ms}ms); "
                  f"SIGTERM or Ctrl-C drains", flush=True)
        sys.stdout.flush()
        await server.run()
        if not args.json:
            print("drained; bye")

    asyncio.run(_serve())
    return 0


def cmd_trace(args) -> int:
    from repro.obs import (
        render_summary,
        summarize,
        tracing,
        write_trace,
    )
    from repro.pipeline import (
        CampaignSource,
        CountSink,
        DiagnoseStage,
        Pipeline,
    )
    from repro.testbed.campaign import CampaignConfig
    from repro.testbed.realworld import RealWorldConfig, WildConfig

    kinds = {
        "controlled": (CampaignConfig, 42),
        "realworld": (RealWorldConfig, 1337),
        "wild": (WildConfig, 2718),
    }
    config_cls, default_seed = kinds[args.kind]
    config = config_cls(
        n_instances=args.instances,
        seed=args.seed if args.seed is not None else default_seed,
    )

    with tracing() as tel:
        stages = []
        if args.diagnose:
            train = (_load_dataset(args.train) if args.train
                     else _default_dataset("controlled", None,
                                           workers=args.workers))
            analyzer = _fit_analyzer(train, args.vps)
            stages.append(DiagnoseStage(analyzer, chunk=args.chunk))
        counter = CountSink()
        stages.append(counter)
        source = CampaignSource(config, workers=args.workers)
        Pipeline(source, *stages).run()
        payload = tel.export(
            command="trace", kind=args.kind, instances=config.n_instances
        )

    if args.out:
        write_trace(args.out, payload)
    summary = summarize(payload)
    if args.json:
        _print_envelope("trace", summary)
    else:
        print(render_summary(summary))
        if args.out:
            print(f"trace written to {args.out}")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import (
        lint_paths,
        render_text,
        rule_table,
        save_baseline,
    )
    from repro.analysis.project_model import CACHE_DIR_NAME

    if args.rules:
        for rule_id, name, severity, summary in rule_table():
            print(f"{rule_id}  {severity:<7} {name:<28} {summary}")
        return 0

    paths = [Path(p) for p in args.paths]
    if not paths:
        default = Path("src/repro")
        paths = [default if default.is_dir() else Path(".")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        raise UsageError(f"no such path: {', '.join(map(str, missing))}")

    baseline = Path(args.baseline) if args.baseline else None
    if baseline is None:
        candidate = Path("lint-baseline.json")
        baseline = candidate if candidate.exists() else None

    root = Path.cwd()
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir:
        cache_dir = Path(args.cache_dir)
    else:
        cache_dir = root / CACHE_DIR_NAME

    result = lint_paths(
        paths,
        root=root,
        baseline_path=baseline,
        jobs=args.jobs,
        cache_dir=cache_dir,
    )

    if args.update_baseline:
        target = baseline or Path("lint-baseline.json")
        payload = save_baseline(target, result.findings)
        print(f"wrote {len(payload['entries'])} entries to {target}")
        return 0

    if args.sarif:
        from repro.analysis.sarif import write_sarif

        exported = write_sarif(Path(args.sarif), result)
        print(f"wrote {exported} results to {args.sarif}", file=sys.stderr)

    ok = result.ok
    if args.fail_stale and result.stale_suppressions:
        ok = False
        print(
            f"repro lint: {len(result.stale_suppressions)} stale "
            "suppression(s) gate the run (--fail-stale); delete the "
            "allow comments that no longer excuse a finding",
            file=sys.stderr,
        )
    if args.json:
        _print_envelope("lint", result.to_dict())
    else:
        print(render_text(result, show_notes=args.notes))
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("campaign", help="simulate a labelled dataset")
    p.add_argument("--kind", choices=("controlled", "realworld", "wild"),
                   default="controlled")
    p.add_argument("--instances", type=int, default=None)
    p.add_argument("--workers", type=int, default=None,
                   help="simulate instances on N processes (default: "
                        "REPRO_WORKERS or serial); output is identical")
    p.add_argument("--sessions-per-proc", type=int, default=None, metavar="K",
                   help="interleave K sessions on one event loop per "
                        "process (default: REPRO_SESSIONS_PER_PROC or 1); "
                        "composes with --workers, output is identical "
                        "(controlled campaigns only)")
    p.add_argument("--out", required=True,
                   help="dataset pickle path; with --shards, the JSONL "
                        "spool base path shards and the merge derive from")
    p.add_argument("--seed", type=int, default=None,
                   help="campaign seed (default: 42); part of the config "
                        "fingerprint every shard manifest pins")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="partition the campaign's instance space into N "
                        "seed-derived shards, each an independently "
                        "resumable JSONL spool (controlled campaigns only)")
    p.add_argument("--shard", type=int, default=None, metavar="K",
                   help="run only shard K of --shards N (for manual or "
                        "cross-host fan-out); records land in "
                        "<out>.shardK-of-N.jsonl with a manifest sidecar")
    p.add_argument("--orchestrate", action="store_true",
                   help="supervise all N shards as subprocesses: dead or "
                        "hung shards are retried from their last "
                        "checkpoint with bounded backoff, then the spools "
                        "are merged into --out in exact serial order")
    p.add_argument("--merge", action="store_true",
                   help="merge N completed shard spools into --out, "
                        "byte-identical to a never-sharded serial run")
    p.add_argument("--resume", action="store_true",
                   help="continue an interrupted shard spool from its "
                        "checkpoint (bit-identical to an unbroken run)")
    p.add_argument("--retries", type=int, default=2, metavar="R",
                   help="orchestrator relaunches allowed per shard "
                        "(default: 2)")
    p.add_argument("--heartbeat-timeout", type=float, default=60.0,
                   metavar="S",
                   help="seconds without checkpoint progress before the "
                        "orchestrator declares a live shard hung and "
                        "SIGKILLs it (default: 60)")
    p.add_argument("--verbose", action="store_true",
                   help="print per-instance progress in --shard mode")
    p.add_argument("--json", action="store_true",
                   help="emit a repro-campaign-v1 summary envelope "
                        "(repro-campaign-shard-v1 in sharded modes)")
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser("evaluate", help="run a paper experiment")
    p.add_argument("--experiment", choices=sorted(EXPERIMENTS), required=True)
    p.add_argument("--dataset", help="pickle from `repro campaign`")
    p.add_argument("--train", help="training pickle for transfer experiments")
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("diagnose", help="diagnose sessions of a dataset")
    p.add_argument("--train", help="training pickle (default: cached controlled)")
    p.add_argument("--model", help="repro-analyzer-v1/v2 JSON export to "
                                   "diagnose with (instead of fitting)")
    p.add_argument("--dataset", help="sessions to diagnose (default: training set)")
    p.add_argument("--vps", default="mobile,router,server",
                   help="comma-separated vantage points")
    p.add_argument("--limit", type=int, default=10)
    p.add_argument("--explain", action="store_true",
                   help="print the C4.5 decision path per diagnosis")
    p.add_argument("--batch", action="store_true",
                   help="deprecated no-op: diagnosis always runs through "
                        "the vectorized repro.api batch path")
    p.add_argument("--json", action="store_true",
                   help="emit a repro-diagnose-v1 envelope instead of text")
    p.add_argument("--workers", type=int, default=None,
                   help="workers for simulating the default training set")
    p.set_defaults(fn=cmd_diagnose)

    p = sub.add_parser("report", help="fleet QoE report over a dataset")
    p.add_argument("--train", help="training pickle (default: cached controlled)")
    p.add_argument("--dataset", help="sessions to report on (default: training set)")
    p.add_argument("--vps", default="mobile,router,server")
    p.add_argument("--json", action="store_true",
                   help="emit a repro-report-v1 envelope")
    p.add_argument("--workers", type=int, default=None,
                   help="workers for simulating the default training set")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("stream",
                       help="run a campaign through the streaming pipeline")
    p.add_argument("--kind", choices=("controlled", "realworld", "wild"),
                   default="controlled")
    p.add_argument("--instances", type=int, default=None)
    p.add_argument("--seed", type=int, default=None,
                   help="campaign seed (default: the kind's canonical seed)")
    p.add_argument("--workers", type=int, default=None,
                   help="simulate instances on N processes; the record "
                        "stream is identical to a serial run")
    p.add_argument("--sessions-per-proc", type=int, default=None, metavar="K",
                   help="interleave K sessions on one event loop per "
                        "process; composes with --workers, the record "
                        "stream is identical (controlled campaigns only)")
    p.add_argument("--chunk", type=int, default=64,
                   help="sessions per vectorized diagnosis chunk")
    p.add_argument("--sink", metavar="PATH",
                   help="spool records to a checkpointed JSONL file")
    p.add_argument("--resume", action="store_true",
                   help="continue an interrupted --sink spool from its "
                        "checkpoint (bit-identical to an unbroken run)")
    p.add_argument("--source", metavar="PATH",
                   help="replay a JSONL spool instead of simulating")
    p.add_argument("--diagnose", action="store_true",
                   help="stream every record through chunked diagnosis")
    p.add_argument("--train", help="training pickle for --diagnose "
                                   "(default: cached controlled)")
    p.add_argument("--vps", default="mobile,router,server")
    p.add_argument("--json", action="store_true",
                   help="emit one repro-stream-v1 envelope per diagnosed "
                        "session (NDJSON)")
    p.add_argument("--verbose", action="store_true",
                   help="print per-instance simulation progress")
    p.set_defaults(fn=cmd_stream)

    p = sub.add_parser("serve",
                       help="serve diagnoses over HTTP (micro-batched)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 picks an ephemeral port, printed "
                        "at startup)")
    p.add_argument("--train", help="training pickle to fit the served model "
                                   "(default: cached controlled campaign)")
    p.add_argument("--model", help="one repro-analyzer-v1/v2 JSON export "
                                   "to serve")
    p.add_argument("--models", metavar="DIR",
                   help="directory of versioned analyzer exports (*.json); "
                        "the lexicographically greatest version activates")
    p.add_argument("--vps", default="mobile,router,server",
                   help="vantage points when fitting from --train")
    p.add_argument("--max-batch", type=int, default=64,
                   help="most records per vectorized diagnosis call")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="longest a request waits for its batch window")
    p.add_argument("--workers", type=int, default=None,
                   help="workers for simulating the default training set")
    p.add_argument("--json", action="store_true",
                   help="emit a repro-serve-v1 startup envelope")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("trace",
                       help="trace a streamed campaign and summarize it")
    p.add_argument("--kind", choices=("controlled", "realworld", "wild"),
                   default="controlled")
    p.add_argument("--instances", type=int, default=50,
                   help="campaign size (default: 50)")
    p.add_argument("--seed", type=int, default=None,
                   help="campaign seed (default: the kind's canonical seed)")
    p.add_argument("--workers", type=int, default=None,
                   help="simulate instances on N processes; worker spans "
                        "are attributed per pid in the summary")
    p.add_argument("--diagnose", action="store_true",
                   help="also trace analyzer training and chunked diagnosis")
    p.add_argument("--train", help="training pickle for --diagnose "
                                   "(default: cached controlled)")
    p.add_argument("--vps", default="mobile,router,server")
    p.add_argument("--chunk", type=int, default=64,
                   help="sessions per vectorized diagnosis chunk")
    p.add_argument("--out", metavar="PATH",
                   help="write the raw repro-trace-v1 JSONL trace here")
    p.add_argument("--json", action="store_true",
                   help="emit the summary as a repro-trace-v1 envelope")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("lint", help="static analysis of project invariants")
    p.add_argument("paths", nargs="*",
                   help="files/directories to check (default: src/repro)")
    p.add_argument("--baseline",
                   help="accepted-findings file (default: lint-baseline.json "
                        "in the current directory, if present)")
    p.add_argument("--update-baseline", action="store_true",
                   help="accept all current findings into the baseline file")
    p.add_argument("--json", action="store_true",
                   help="emit findings as a repro-lint-v1 envelope")
    p.add_argument("--notes", action="store_true",
                   help="also print note-severity findings (e.g. M202)")
    p.add_argument("--rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="per-file analysis workers (default: CPU count)")
    p.add_argument("--sarif", metavar="OUT",
                   help="also write findings as a SARIF 2.1.0 log")
    p.add_argument("--fail-stale", action="store_true",
                   help="exit non-zero when any suppression comment is "
                        "stale (excuses nothing); keeps waivers from "
                        "outliving the violation they excused")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the incremental cache")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="incremental cache location "
                        "(default: ./.repro-lint-cache)")
    p.set_defaults(fn=cmd_lint)
    return parser


def main(argv=None) -> int:
    """Parse and dispatch; always returns 0 (ok) / 1 (failure) / 2 (usage)."""
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits; normalise to a return code
        if exc.code in (None, 0):
            return 0
        return exc.code if isinstance(exc.code, int) else 2
    try:
        return args.fn(args)
    except UsageError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except CliError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The cached project model behind ``repro lint``.

Lint v1 re-read, re-parsed and re-analyzed every file on every run.
Lint v2 splits the work along the same seam the metric-schema pass
already had: everything *per-file* is a pure function of that file's
bytes, and everything *global* (metric matching, wire-schema resolution,
baselines) is cheap arithmetic over the per-file results.  That makes
the per-file half

* **cacheable** — :class:`FileFacts` serializes to JSON and is keyed by
  the file's content hash, so a warm run re-analyzes only changed files
  (the cache lives in ``.repro-lint-cache/model.json`` under the lint
  root, written atomically);
* **parallelizable** — :func:`analyze_file` closes over nothing, so cold
  runs fan files out over a ``multiprocessing`` pool (``--jobs``).

Both halves are deterministic by construction: facts are merged in
sorted-path order and findings are globally re-sorted, so sequential,
parallel and warm-cache runs produce bit-identical output (pinned by the
engine-equivalence tests).

The cache is invalidated wholesale when :data:`ENGINE_VERSION` changes —
it is derived from the rule catalog plus a hand-bumped revision, so
adding a rule or changing pass logic never serves stale facts.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.async_discipline import check_async_discipline
from repro.analysis.determinism import check_determinism
from repro.analysis.findings import RULES, Finding
from repro.analysis.lifecycle import check_lifecycle
from repro.analysis.matrix_loops import check_matrix_loops
from repro.analysis.obs_usage import check_obs_usage
from repro.analysis.pipeline_schema import check_pipeline_stages
from repro.analysis.schema import MetricRef, extract_consumed, extract_produced
from repro.analysis.suppressions import (
    Suppression,
    parse_suppression_comments,
)
from repro.analysis.wire_schema import (
    RegistryEntry,
    WireFacts,
    WireRef,
    extract_wire_facts,
)
from repro.schemas import LINT_CACHE_V1

#: bump when pass logic changes in a way the rule catalog does not show
_ENGINE_REVISION = 1

#: cache-busting engine identity: revision + the rule catalog itself
ENGINE_VERSION = "{}:{}".format(
    _ENGINE_REVISION,
    hashlib.sha1(
        ",".join(
            f"{rule_id}={RULES[rule_id].severity}" for rule_id in sorted(RULES)
        ).encode("utf-8")
    ).hexdigest()[:12],
)

#: cache directory name, created under the lint root
CACHE_DIR_NAME = ".repro-lint-cache"

#: spawning a pool is not free; below this many stale files it cannot win
_PARALLEL_THRESHOLD = 8

# ---------------------------------------------------------------- routing

#: packages whose modules must stay deterministic (D1xx)
DETERMINISM_PACKAGES = ("simnet", "faults", "testbed", "traffic", "video")

#: package whose modules produce the metric namespace (M2xx)
PRODUCER_PACKAGE = "probes"

#: modules that consume metric names (package-relative posix paths)
CONSUMER_MODULES = (
    "core/construction.py",
    "core/diagnosis.py",
    "core/selection.py",
    "core/vantage.py",
    "ml/fcbf.py",
    "ml/export.py",
)

#: package whose predict/transform hot paths must stay vectorized (M203)
MATRIX_LOOP_PACKAGE = "ml"

#: package whose classes the lifecycle pass inspects (F3xx)
LIFECYCLE_PACKAGE = "faults"

#: package whose stage classes the pipeline-schema pass inspects (P4xx)
PIPELINE_PACKAGE = "pipeline"


def _top_package(rel: str) -> str:
    return rel.split("/", 1)[0] if "/" in rel else ""


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# -------------------------------------------------------------- FileFacts


@dataclass
class FileFacts:
    """Everything lint ever needs from one file, serializable."""

    shown: str  # display path (relative to the lint root)
    rel: str  # package-relative path (routing / registry identity)
    sha: str  # content hash of the analyzed source
    parse_error: Optional[str] = None
    #: per-file findings (O5xx, D1xx, F3xx, P4xx, A6xx), pre-suppression
    findings: List[Finding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    produced: List[MetricRef] = field(default_factory=list)
    consumed: List[MetricRef] = field(default_factory=list)
    wire: Optional[WireFacts] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "shown": self.shown,
            "rel": self.rel,
            "sha": self.sha,
            "parse_error": self.parse_error,
            "findings": [_finding_to_dict(f) for f in self.findings],
            "suppressions": [
                {"line": s.line, "target": s.target,
                 "rules": sorted(s.rules), "source": s.source}
                for s in self.suppressions
            ],
            "produced": [dataclasses.asdict(r) for r in self.produced],
            "consumed": [dataclasses.asdict(r) for r in self.consumed],
            "wire": dataclasses.asdict(self.wire) if self.wire else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FileFacts":
        wire_payload = payload.get("wire")
        return cls(
            shown=str(payload["shown"]),
            rel=str(payload["rel"]),
            sha=str(payload["sha"]),
            parse_error=payload.get("parse_error"),  # type: ignore[arg-type]
            findings=[_finding_from_dict(f)
                      for f in payload.get("findings", [])],
            suppressions=[
                Suppression(
                    line=int(s["line"]),
                    target=int(s["target"]),
                    rules=set(s["rules"]),
                    source=str(s.get("source", "")),
                )
                for s in payload.get("suppressions", [])
            ],
            produced=[MetricRef(**r) for r in payload.get("produced", [])],
            consumed=[MetricRef(**r) for r in payload.get("consumed", [])],
            wire=_wire_from_dict(wire_payload) if wire_payload else None,
        )


def _finding_to_dict(finding: Finding) -> Dict[str, object]:
    # Finding.to_dict() is the *reporting* shape (derived severity and
    # fingerprint, no source); the cache needs the constructor shape.
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "message": finding.message,
        "source": finding.source,
    }


def _finding_from_dict(payload: Dict[str, object]) -> Finding:
    return Finding(
        path=str(payload["path"]),
        line=int(payload["line"]),  # type: ignore[arg-type]
        col=int(payload["col"]),  # type: ignore[arg-type]
        rule=str(payload["rule"]),
        message=str(payload["message"]),
        source=str(payload.get("source", "")),
    )


def _wire_from_dict(payload: Dict[str, object]) -> WireFacts:
    def refs(key: str) -> List[WireRef]:
        return [WireRef(**r) for r in payload.get(key, [])]

    return WireFacts(
        rel=str(payload["rel"]),
        tag_literals=refs("tag_literals"),
        fstring_tags=refs("fstring_tags"),
        constants_used=[str(n) for n in payload.get("constants_used", [])],
        envelope_commands=refs("envelope_commands"),
        registry_constants={
            str(k): str(v)
            for k, v in (payload.get("registry_constants") or {}).items()
        },
        registry_entries=[
            RegistryEntry(
                tag=str(e["tag"]),
                producers=tuple(e.get("producers", ())),
                consumers=tuple(e.get("consumers", ())),
                legacy=bool(e.get("legacy", False)),
                path=str(e["path"]),
                line=int(e["line"]),
                col=int(e["col"]),
                source=str(e.get("source", "")),
            )
            for e in payload.get("registry_entries", [])
        ],
    )


# --------------------------------------------------------------- analysis


def analyze_file(shown: str, rel: str, source: str) -> FileFacts:
    """All per-file lint work — a pure function of the source text."""
    facts = FileFacts(shown=shown, rel=rel, sha=content_hash(source))
    try:
        ast.parse(source, filename=shown)
    except SyntaxError as exc:
        facts.parse_error = f"{shown}:{exc.lineno}: syntax error"
        return facts

    facts.suppressions = parse_suppression_comments(source)
    facts.findings.extend(check_obs_usage(shown, source))
    facts.findings.extend(check_async_discipline(shown, source))

    top = _top_package(rel)
    if top in DETERMINISM_PACKAGES:
        facts.findings.extend(check_determinism(shown, source))
    if top == MATRIX_LOOP_PACKAGE:
        facts.findings.extend(check_matrix_loops(shown, source))
    if top == LIFECYCLE_PACKAGE:
        facts.findings.extend(check_lifecycle(shown, source))
    if top == PIPELINE_PACKAGE:
        facts.findings.extend(check_pipeline_stages(shown, source))
    if top == PRODUCER_PACKAGE:
        facts.produced = extract_produced(shown, source)
    if rel in CONSUMER_MODULES:
        facts.consumed = extract_consumed(shown, source)
    facts.wire = extract_wire_facts(rel, source, shown=shown)
    return facts


def _analyze_item(item: Tuple[str, str, str]) -> FileFacts:
    return analyze_file(*item)


def default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


def analyze_files(
    items: Sequence[Tuple[str, str, str]], jobs: int
) -> List[FileFacts]:
    """Analyze ``(shown, rel, source)`` triples, fanning out when it pays.

    Output order matches input order regardless of worker scheduling, so
    parallel and sequential runs are indistinguishable downstream.
    """
    items = list(items)
    if jobs > 1 and len(items) >= _PARALLEL_THRESHOLD:
        try:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            ctx = multiprocessing.get_context(method)
            with ctx.Pool(processes=min(jobs, len(items))) as pool:
                chunk = max(1, len(items) // (jobs * 4))
                return pool.map(_analyze_item, items, chunksize=chunk)
        except (OSError, ValueError, ImportError):
            pass  # constrained environments: fall through to sequential
    return [_analyze_item(item) for item in items]


# ------------------------------------------------------------------ cache


@dataclass
class CacheStats:
    """How a model build split between cache hits and fresh analysis."""

    reused: int = 0
    analyzed: int = 0


class ModelCache:
    """The on-disk per-file facts store (``model.json``)."""

    def __init__(self, cache_dir: Path):
        self.cache_dir = Path(cache_dir)
        self.path = self.cache_dir / "model.json"

    def load(self) -> Dict[str, FileFacts]:
        """Cached facts keyed by shown path; empty on any mismatch."""
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return {}
        if not isinstance(payload, dict):
            return {}
        if payload.get("format") != LINT_CACHE_V1:
            return {}
        if payload.get("engine") != ENGINE_VERSION:
            return {}
        facts: Dict[str, FileFacts] = {}
        for shown, entry in (payload.get("files") or {}).items():
            try:
                facts[str(shown)] = FileFacts.from_dict(entry)
            except (KeyError, TypeError, ValueError):
                continue  # one corrupt entry must not poison the rest
        return facts

    def store(self, facts: Dict[str, FileFacts]) -> None:
        """Atomically persist the full model (tmp + rename)."""
        payload = {
            "format": LINT_CACHE_V1,
            "engine": ENGINE_VERSION,
            "files": {
                shown: facts[shown].to_dict() for shown in sorted(facts)
            },
        }
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(self.path.name + ".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            pass  # a read-only tree degrades to cold runs, not failures


def build_project_model(
    sources: Sequence[Tuple[str, str, str]],
    jobs: Optional[int] = None,
    cache: Optional[ModelCache] = None,
) -> Tuple[List[FileFacts], CacheStats]:
    """Per-file facts for ``(shown, rel, source)`` triples, cache-aware.

    Returns facts in input order plus the hit/miss split.  When a cache
    is given, unchanged files (same content hash, same engine) are served
    from it and the refreshed model is persisted back.
    """
    jobs = default_jobs() if jobs is None else max(1, jobs)
    cached = cache.load() if cache is not None else {}
    stats = CacheStats()

    stale: List[Tuple[str, str, str]] = []
    order: List[str] = []
    warm: Dict[str, FileFacts] = {}
    for shown, rel, source in sources:
        order.append(shown)
        hit = cached.get(shown)
        if hit is not None and hit.sha == content_hash(source) and hit.rel == rel:
            warm[shown] = hit
            stats.reused += 1
        else:
            stale.append((shown, rel, source))
            stats.analyzed += 1

    for facts in analyze_files(stale, jobs=jobs):
        warm[facts.shown] = facts

    result = [warm[shown] for shown in order]
    if cache is not None:
        cache.store({facts.shown: facts for facts in result})
    return result, stats

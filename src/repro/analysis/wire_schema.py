"""Wire-schema consistency pass (rules W701-W703).

:mod:`repro.schemas` is the single registry of every versioned wire tag
(``repro-record-v1``, ``repro-trace-v1``, ...).  This pass keeps the
registry honest in both directions:

* **W701** — a versioned tag written as a string literal (or spliced
  together in an f-string) anywhere *outside* the registry module.
  Literals drift: the producer bumps its copy, the consumer keeps the
  old one, and nothing fails until the payload is rejected in the field.
* **W702** — a registered tag whose declaration no longer matches
  reality: a non-legacy tag with no producer, any tag with no consumer,
  or a declared producer/consumer module that is present in the linted
  tree but never actually references the tag.  These findings anchor at
  the :class:`~repro.schemas.WireSchema` entry so the fix is edited where
  the claim is made.
* **W703** — a CLI envelope emitted for a command whose
  ``repro-<cmd>-v1`` tag is not registered.

The pass is split the same way the metric-schema pass is: *extraction*
(:func:`extract_wire_facts`) is per-file and cacheable, *resolution*
(:func:`check_wire_schema`) is global and cheap.  The registry itself is
recovered statically from the AST of the linted tree's own ``schemas.py``
— the pass never imports the module under analysis, so synthetic test
trees can carry their own registries.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding

#: a full versioned wire tag, e.g. ``repro-record-v1``
TAG_RE = re.compile(r"^repro-[a-z0-9][a-z0-9-]*-v\d+$")

#: f-string version suffix, e.g. the ``-v1`` tail of f"repro-{cmd}-v1"
_VERSION_TAIL_RE = re.compile(r"-v\d+$")

#: functions that mint/emit a CLI envelope; their first argument is the
#: subcommand name whose tag must be registered
ENVELOPE_EMITTERS = {"envelope_tag", "_print_envelope", "_envelope_line"}

#: module names recognised as "the registry" in an import statement
_SCHEMAS_MODULES_RE = re.compile(r"(^|\.)schemas$")


def is_registry_module(rel_path: str) -> bool:
    """Whether a package-relative path is the wire-schema registry."""
    return rel_path.replace("\\", "/").split("/")[-1] == "schemas.py"


@dataclass(frozen=True)
class WireRef:
    """One wire-schema-relevant occurrence in source."""

    name: str  # tag text, or command name for envelope emissions
    path: str
    line: int
    col: int
    source: str


@dataclass(frozen=True)
class RegistryEntry:
    """One ``WireSchema(...)`` declaration, statically recovered."""

    tag: str
    producers: Tuple[str, ...]
    consumers: Tuple[str, ...]
    legacy: bool
    path: str
    line: int
    col: int
    source: str


@dataclass
class WireFacts:
    """Everything the W7xx resolution step needs from one file."""

    rel: str
    #: full tag literals outside the registry (W701 candidates)
    tag_literals: List[WireRef] = field(default_factory=list)
    #: f-strings that splice a versioned tag together (W701 candidates)
    fstring_tags: List[WireRef] = field(default_factory=list)
    #: constant names this file imports/uses from the schemas module
    constants_used: List[str] = field(default_factory=list)
    #: envelope emissions with a literal command name (W703 candidates)
    envelope_commands: List[WireRef] = field(default_factory=list)
    #: recovered registry — only for the schemas module itself
    registry_constants: Dict[str, str] = field(default_factory=dict)
    registry_entries: List[RegistryEntry] = field(default_factory=list)


def _literal_external(node: ast.expr, external_prefix: str) -> Optional[str]:
    """Resolve one producers/consumers element to its declared string.

    Handles plain literals and the ``EXTERNAL + "..."`` idiom.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left, right = node.left, node.right
        if (
            isinstance(left, ast.Name)
            and left.id == "EXTERNAL"
            and isinstance(right, ast.Constant)
            and isinstance(right.value, str)
        ):
            return external_prefix + right.value
    return None


def _extract_registry(facts: WireFacts, tree: ast.Module,
                      lines: List[str], shown: str) -> None:
    """Recover constants and ``WireSchema(...)`` entries from the AST."""
    external_prefix = "external:"
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not (isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)):
            continue
        for target in stmt.targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "EXTERNAL":
                external_prefix = stmt.value.value
            elif TAG_RE.match(stmt.value.value):
                facts.registry_constants[target.id] = stmt.value.value

    def resolve_tag(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return facts.registry_constants.get(node.id)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    def resolve_side(node: Optional[ast.expr]) -> Tuple[str, ...]:
        if not isinstance(node, (ast.Tuple, ast.List)):
            return ()
        out: List[str] = []
        for element in node.elts:
            declared = _literal_external(element, external_prefix)
            if declared is not None:
                out.append(declared)
        return tuple(out)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "WireSchema":
            continue
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        tag_node = kwargs.get("tag", node.args[0] if node.args else None)
        tag = resolve_tag(tag_node) if tag_node is not None else None
        if tag is None:
            continue
        legacy_node = kwargs.get("legacy")
        legacy = bool(isinstance(legacy_node, ast.Constant)
                      and legacy_node.value is True)
        lineno = node.lineno
        facts.registry_entries.append(
            RegistryEntry(
                tag=tag,
                producers=resolve_side(kwargs.get("producers")),
                consumers=resolve_side(kwargs.get("consumers")),
                legacy=legacy,
                path=shown,
                line=lineno,
                col=node.col_offset + 1,
                source=(lines[lineno - 1].strip()
                        if 0 < lineno <= len(lines) else ""),
            )
        )


def extract_wire_facts(rel_path: str, source: str,
                       shown: Optional[str] = None) -> WireFacts:
    """Per-file W7xx facts (pure function of the source — cacheable).

    ``rel_path`` is the package-relative identity used for registry
    matching; ``shown`` (default: ``rel_path``) is the display path that
    findings anchor to.
    """
    shown = rel_path if shown is None else shown
    tree = ast.parse(source, filename=shown)
    lines = source.splitlines()
    facts = WireFacts(rel=rel_path)

    if is_registry_module(rel_path):
        _extract_registry(facts, tree, lines, shown)
        return facts

    def ref(name: str, node: ast.AST) -> WireRef:
        lineno = getattr(node, "lineno", 0)
        return WireRef(
            name=name,
            path=shown,
            line=lineno,
            col=getattr(node, "col_offset", 0) + 1,
            source=(lines[lineno - 1].strip()
                    if 0 < lineno <= len(lines) else ""),
        )

    #: local aliases for `import repro.schemas as x` style module imports
    module_aliases: Set[str] = set()
    used: List[str] = []

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if _SCHEMAS_MODULES_RE.search(node.module):
                used.extend(alias.name for alias in node.names
                            if alias.name != "*")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if _SCHEMAS_MODULES_RE.search(alias.name):
                    module_aliases.add(alias.asname
                                       or alias.name.split(".")[0])
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if TAG_RE.match(node.value):
                facts.tag_literals.append(ref(node.value, node))
        elif isinstance(node, ast.JoinedStr):
            parts = [p.value for p in node.values
                     if isinstance(p, ast.Constant) and isinstance(p.value, str)]
            if (
                parts
                and any(isinstance(p, ast.FormattedValue) for p in node.values)
                and parts[0].startswith("repro-")
                and _VERSION_TAIL_RE.search(parts[-1])
            ):
                facts.fstring_tags.append(ref("".join(parts), node))
        elif isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if (
                name in ENVELOPE_EMITTERS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                facts.envelope_commands.append(ref(node.args[0].value, node))

    if module_aliases:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in module_aliases
            ):
                used.append(node.attr)
    facts.constants_used = sorted(set(used))
    return facts


def _envelope_to_tag(command: str) -> str:
    # mirrors repro.schemas.envelope_tag without importing it: the pass
    # must work on synthetic trees that never hit sys.path
    # repro: allow[W701] deliberate mirror of envelope_tag, not a drift risk
    return f"repro-{command}-v1"


def check_wire_schema(all_facts: List[WireFacts]) -> List[Finding]:
    """Global W7xx resolution over every file's extracted facts."""
    findings: List[Finding] = []
    ordered = sorted(all_facts, key=lambda f: f.rel)

    registry: Optional[WireFacts] = next(
        (f for f in ordered if f.registry_entries or f.registry_constants),
        None,
    )
    registered_tags: Set[str] = (
        {entry.tag for f in ordered for entry in f.registry_entries}
    )

    # W701: versioned tag literals / f-string construction outside the
    # registry.  Registry-independent: the literal is the problem.
    for facts in ordered:
        for wref in facts.tag_literals:
            findings.append(
                Finding(
                    path=wref.path, line=wref.line, col=wref.col,
                    rule="W701",
                    message=(
                        f"wire-schema tag {wref.name!r} written as a literal; "
                        "import the constant from the schemas registry so "
                        "producers and consumers cannot drift"
                    ),
                    source=wref.source,
                )
            )
        for wref in facts.fstring_tags:
            findings.append(
                Finding(
                    path=wref.path, line=wref.line, col=wref.col,
                    rule="W701",
                    message=(
                        "wire-schema tag constructed in an f-string "
                        f"({wref.name!r} with interpolation); mint it through "
                        "the registry's envelope_tag() or import the constant"
                    ),
                    source=wref.source,
                )
            )

    # W703: envelope emitted for an unregistered command tag.
    if registry is not None:
        for facts in ordered:
            for wref in facts.envelope_commands:
                tag = _envelope_to_tag(wref.name)
                if tag not in registered_tags:
                    findings.append(
                        Finding(
                            path=wref.path, line=wref.line, col=wref.col,
                            rule="W703",
                            message=(
                                f"envelope for command {wref.name!r} resolves "
                                f"to unregistered tag {tag!r}; register it in "
                                "the schemas registry"
                            ),
                            source=wref.source,
                        )
                    )

    # W702: registry entries vs reality.
    if registry is None:
        return findings
    constants_to_tag = registry.registry_constants
    present: Dict[str, WireFacts] = {f.rel: f for f in ordered}

    def references(facts: WireFacts, tag: str) -> bool:
        for name in facts.constants_used:
            if constants_to_tag.get(name) == tag:
                return True
        for wref in facts.envelope_commands:
            if _envelope_to_tag(wref.name) == tag:
                return True
        return any(wref.name == tag for wref in facts.tag_literals)

    for entry in sorted(registry.registry_entries,
                        key=lambda e: (e.line, e.tag)):
        problems: List[str] = []
        if not entry.producers and not entry.legacy:
            problems.append("no producer declared (and the tag is not legacy)")
        if not entry.consumers:
            problems.append("no consumer declared")
        for side, declared in (("producer", entry.producers),
                               ("consumer", entry.consumers)):
            for module in declared:
                if ":" in module:  # external: reference, not cross-checked
                    continue
                facts = present.get(module)
                if facts is None:  # not in this lint run — skip, stay safe
                    continue
                if not references(facts, entry.tag):
                    problems.append(
                        f"declared {side} {module} never references the tag"
                    )
        for problem in problems:
            findings.append(
                Finding(
                    path=entry.path, line=entry.line, col=entry.col,
                    rule="W702",
                    message=f"registered tag {entry.tag!r}: {problem}",
                    source=entry.source,
                )
            )
    return findings

"""Fault-lifecycle pass (rules F301-F303).

A fault is a paired state mutation on the testbed: ``apply`` pushes the
impairment in, ``clear`` restores what it saved.  A subclass that forgets
one half leaks state into every later scenario of the campaign — the
fault equivalent of an unbalanced lock.  Each concrete fault must also
declare *where its signature is observable* (``VANTAGE_SCOPE``), which is
the paper's deployment question (Section 5.3: only RSSI-equipped vantage
points can separate the wireless faults).

* **F301** (error): a concrete ``Fault`` subclass defines only one of
  ``apply`` / ``clear``.
* **F302** (warning): ``apply`` never sets ``self.active = True``, or
  ``clear`` never resets ``self.active = False``, or ``clear`` does not
  guard on ``self.active`` (double-clear must be a no-op).
* **F303** (error): missing or malformed ``VANTAGE_SCOPE`` declaration —
  it must be a tuple/list literal of names from
  ``("mobile", "router", "server")``.

A class is *concrete* when it carries a ``name = "<literal>"`` class
attribute other than ``"abstract"``; intermediate helpers stay exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis.findings import Finding

VALID_VANTAGE_POINTS = ("mobile", "router", "server")

#: base-class names that mark a fault hierarchy member
_FAULT_BASES = {"Fault"}


def _base_names(node: ast.ClassDef) -> List[str]:
    names: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _class_attr(node: ast.ClassDef, attr: str) -> Optional[ast.Assign]:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    return stmt
    return None


def _concrete_name(node: ast.ClassDef) -> Optional[str]:
    assign = _class_attr(node, "name")
    if assign is None:
        return None
    value = assign.value
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return None if value.value == "abstract" else value.value
    return None


def _methods(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, ast.FunctionDef)
    }


def _sets_self_active(fn: ast.FunctionDef, value: bool) -> bool:
    for inner in ast.walk(fn):
        if not isinstance(inner, ast.Assign):
            continue
        for target in inner.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "active"
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(inner.value, ast.Constant)
                and inner.value.value is value
            ):
                return True
    return False


def _guards_on_active(fn: ast.FunctionDef) -> bool:
    """Whether the body tests ``self.active`` anywhere."""
    for inner in ast.walk(fn):
        if isinstance(inner, ast.Attribute) and inner.attr == "active":
            if isinstance(inner.value, ast.Name) and inner.value.id == "self":
                if isinstance(inner.ctx, ast.Load):
                    return True
    return False


def _check_vantage_scope(node: ast.ClassDef) -> Optional[str]:
    """None when the declaration is well-formed, else a message."""
    assign = _class_attr(node, "VANTAGE_SCOPE")
    if assign is None:
        return (
            "missing VANTAGE_SCOPE declaration; declare the vantage points "
            "whose probes observe this fault's signature, e.g. "
            "VANTAGE_SCOPE = (\"mobile\", \"router\")"
        )
    value = assign.value
    if not isinstance(value, (ast.Tuple, ast.List)) or not value.elts:
        return "VANTAGE_SCOPE must be a non-empty tuple of vantage-point names"
    for element in value.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return "VANTAGE_SCOPE entries must be string literals"
        if element.value not in VALID_VANTAGE_POINTS:
            return (
                f"unknown vantage point {element.value!r} in VANTAGE_SCOPE; "
                f"valid: {VALID_VANTAGE_POINTS}"
            )
    return None


def check_lifecycle(path: str, source: str) -> List[Finding]:
    """All F3xx findings for one faults module."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    findings: List[Finding] = []

    def add(node: ast.AST, rule: str, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        findings.append(
            Finding(
                path=path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
                source=lines[lineno - 1].strip() if 0 < lineno <= len(lines) else "",
            )
        )

    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not (_FAULT_BASES & set(_base_names(node))):
            continue
        fault_name = _concrete_name(node)
        if fault_name is None:
            continue

        methods = _methods(node)
        has_apply = "apply" in methods
        has_clear = "clear" in methods
        if has_apply != has_clear:
            missing = "clear" if has_apply else "apply"
            add(node, "F301",
                f"fault {fault_name!r} defines "
                f"{'apply' if has_apply else 'clear'}() but not {missing}(); "
                "inject and teardown must be paired")
        if has_apply and not _sets_self_active(methods["apply"], True):
            add(methods["apply"], "F302",
                f"{fault_name}.apply() never sets self.active = True")
        if has_clear:
            if not _sets_self_active(methods["clear"], False):
                add(methods["clear"], "F302",
                    f"{fault_name}.clear() never resets self.active = False")
            elif not _guards_on_active(methods["clear"]):
                add(methods["clear"], "F302",
                    f"{fault_name}.clear() does not guard on self.active; "
                    "double-clear must be a no-op")
        scope_problem = _check_vantage_scope(node)
        if scope_problem is not None:
            add(node, "F303", f"fault {fault_name!r}: {scope_problem}")
    return findings

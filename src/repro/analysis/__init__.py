"""Project-invariant static analysis (``repro lint``).

Seven AST pass families protect the invariants the reproduction depends
on:

* determinism (D1xx) — no unseeded RNG, wall-clock reads, or unordered
  iteration in the simulation/campaign packages;
* metric schema (M2xx) — probe-emitted and downstream-consumed metric
  names must agree (the silent-zero-fill hazard);
* fault lifecycle (F3xx) — every concrete fault pairs inject/teardown,
  maintains the ``active`` flag, and declares its vantage-point scope;
* pipeline-stage schema (P4xx) — every concrete streaming stage declares
  the item fields it consumes and produces;
* telemetry usage (O5xx) — spans acquired as ``with`` contexts only;
* async discipline (A6xx) — no blocking calls, dropped coroutines, or
  in-place shared-state mutation inside coroutines;
* wire schema (W7xx) — every ``repro-*-vN`` tag lives in the central
  registry and both of its sides exist.

Since Lint v2, per-file analysis is parallel and cached by content hash
(:mod:`repro.analysis.project_model`); sequential, parallel and
warm-cache runs produce bit-identical findings.

Library use::

    from repro.analysis import lint_paths
    result = lint_paths([Path("src/repro")], baseline_path=Path("lint-baseline.json"))
    assert result.ok, result.summary()
"""

from repro.analysis.async_discipline import check_async_discipline
from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.determinism import check_determinism
from repro.analysis.findings import Finding, RULES, Rule, rule_catalog
from repro.analysis.lifecycle import VALID_VANTAGE_POINTS, check_lifecycle
from repro.analysis.pipeline_schema import check_pipeline_stages
from repro.analysis.project_model import (
    ENGINE_VERSION,
    FileFacts,
    ModelCache,
    analyze_file,
    build_project_model,
)
from repro.analysis.runner import (
    LintResult,
    lint_paths,
    render_text,
    rule_table,
)
from repro.analysis.sarif import to_sarif, write_sarif
from repro.analysis.schema import check_schema
from repro.analysis.suppressions import (
    Suppression,
    parse_suppression_comments,
    parse_suppressions,
)
from repro.analysis.wire_schema import check_wire_schema, extract_wire_facts

__all__ = [
    "ENGINE_VERSION",
    "FileFacts",
    "Finding",
    "LintResult",
    "ModelCache",
    "RULES",
    "Rule",
    "Suppression",
    "VALID_VANTAGE_POINTS",
    "analyze_file",
    "build_project_model",
    "check_async_discipline",
    "check_determinism",
    "check_lifecycle",
    "check_pipeline_stages",
    "check_schema",
    "check_wire_schema",
    "extract_wire_facts",
    "lint_paths",
    "load_baseline",
    "parse_suppression_comments",
    "parse_suppressions",
    "render_text",
    "rule_catalog",
    "rule_table",
    "save_baseline",
    "to_sarif",
    "write_sarif",
]

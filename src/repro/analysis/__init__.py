"""Project-invariant static analysis (``repro lint``).

Three AST passes protect the invariants the reproduction depends on:

* determinism (D1xx) — no unseeded RNG, wall-clock reads, or unordered
  iteration in the simulation/campaign packages;
* metric schema (M2xx) — probe-emitted and downstream-consumed metric
  names must agree (the silent-zero-fill hazard);
* fault lifecycle (F3xx) — every concrete fault pairs inject/teardown,
  maintains the ``active`` flag, and declares its vantage-point scope;
* pipeline-stage schema (P4xx) — every concrete streaming stage declares
  the item fields it consumes and produces.

Library use::

    from repro.analysis import lint_paths
    result = lint_paths([Path("src/repro")], baseline_path=Path("lint-baseline.json"))
    assert result.ok, result.summary()
"""

from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.determinism import check_determinism
from repro.analysis.findings import Finding, RULES, Rule, rule_catalog
from repro.analysis.lifecycle import VALID_VANTAGE_POINTS, check_lifecycle
from repro.analysis.pipeline_schema import check_pipeline_stages
from repro.analysis.runner import (
    LintResult,
    lint_paths,
    render_text,
    rule_table,
)
from repro.analysis.schema import check_schema
from repro.analysis.suppressions import parse_suppressions

__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "VALID_VANTAGE_POINTS",
    "check_determinism",
    "check_lifecycle",
    "check_pipeline_stages",
    "check_schema",
    "lint_paths",
    "load_baseline",
    "parse_suppressions",
    "render_text",
    "rule_catalog",
    "rule_table",
    "save_baseline",
]

"""SARIF 2.1.0 output for ``repro lint --sarif``.

SARIF (Static Analysis Results Interchange Format) is the shape code
hosts and CI dashboards ingest natively.  The emitter maps the rule
catalog to ``tool.driver.rules``, gating findings to ``results`` (notes
ride along at SARIF level ``note``), and baselined findings to
``baselineState: "unchanged"`` so a viewer can fold them away.

Only new + baselined + note findings are exported; suppressed findings
are deliberately dropped — the allow comment is the in-tree record.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.analysis.findings import Finding, RULES
from repro.analysis.runner import LintResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: repro severity -> SARIF result level
_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _rule_descriptor(rule_id: str) -> Dict[str, object]:
    rule = RULES[rule_id]
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }


def _result(finding: Finding, baseline_state: str) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLintFingerprint/v1": finding.fingerprint()},
        "baselineState": baseline_state,
    }


def to_sarif(result: LintResult) -> Dict[str, object]:
    """One SARIF log document for one lint run."""
    exported: List[Dict[str, object]] = []
    for finding in result.new_findings:
        exported.append(_result(finding, "new"))
    for finding in result.baselined:
        exported.append(_result(finding, "unchanged"))
    for finding in result.notes:
        exported.append(_result(finding, "new"))
    used_rules = sorted({str(r["ruleId"]) for r in exported})
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": [_rule_descriptor(r) for r in used_rules],
                    }
                },
                "results": exported,
                "invocations": [
                    {
                        "executionSuccessful": not result.parse_errors,
                        "exitCode": 0 if result.ok else 1,
                    }
                ],
            }
        ],
    }


def write_sarif(path: Union[str, Path], result: LintResult) -> int:
    """Write the SARIF log; returns the number of exported results."""
    document = to_sarif(result)
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    runs = document["runs"]
    return len(runs[0]["results"])  # type: ignore[index,arg-type]

"""Finding and rule definitions for ``repro lint``.

A *rule* is one project invariant the analyzer enforces; a *finding* is
one spot in the source where a rule fires.  Findings carry everything the
reporting layer needs (``file:line``, rule id, severity, message) plus a
stable *fingerprint* used by the baseline so line-number drift does not
resurrect accepted findings.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: severity levels, in gating order.  ``error`` and ``warning`` findings
#: fail the run unless baselined or suppressed; ``note`` findings are
#: informational only and never affect the exit status.
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True)
class Rule:
    """One enforced invariant."""

    id: str
    name: str
    severity: str
    summary: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"bad severity {self.severity!r} for rule {self.id}")


#: the rule catalog.  Ids are grouped by pass: D1xx determinism,
#: M2xx metric schema, F3xx fault lifecycle, P4xx pipeline-stage schema,
#: O5xx telemetry usage, A6xx async discipline, W7xx wire schema.
RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "D101",
            "unseeded-stdlib-random",
            "error",
            "module-level random.* call or unseeded random.Random(); campaign "
            "instances must draw from an explicitly seeded rng",
        ),
        Rule(
            "D102",
            "numpy-global-rng",
            "error",
            "np.random.* global-state call; use np.random.default_rng(seed)",
        ),
        Rule(
            "D103",
            "wall-clock-read",
            "error",
            "wall-clock read (time.time / datetime.now / ...); simulation code "
            "must take time from the simulator clock",
        ),
        Rule(
            "D104",
            "unordered-set-iteration",
            "warning",
            "iteration over an unordered set; wrap in sorted(...) so record "
            "order is deterministic",
        ),
        Rule(
            "D105",
            "session-isolation",
            "error",
            "module-level mutable state in repro/simnet/ is shared by every "
            "interleaved session in the process; scope it to the "
            "SessionContext (or suppress with a justification for "
            "deliberately shared, value-safe pools)",
        ),
        Rule(
            "M201",
            "consumed-unproduced-metric",
            "error",
            "metric name consumed by feature construction / selection but never "
            "produced by any probe (would be silently zero-filled)",
        ),
        Rule(
            "M202",
            "produced-unconsumed-metric",
            "note",
            "probe metric never referenced by name downstream (flows into the "
            "generic feature matrix only)",
        ),
        Rule(
            "M203",
            "per-row-matrix-loop",
            "warning",
            "per-row Python loop over a feature matrix in a predict/transform "
            "hot path under repro/ml/; vectorize over the whole batch (the "
            "compiled-inference engines assume batch-shaped model calls)",
        ),
        Rule(
            "F301",
            "fault-lifecycle-pair",
            "error",
            "concrete Fault subclass must define both apply() and clear()",
        ),
        Rule(
            "F302",
            "fault-active-protocol",
            "warning",
            "apply() must set self.active = True and clear() must guard on "
            "self.active and reset it to False",
        ),
        Rule(
            "F303",
            "fault-vantage-scope",
            "error",
            "concrete Fault subclass must declare VANTAGE_SCOPE as a tuple of "
            "vantage points drawn from ('mobile', 'router', 'server')",
        ),
        Rule(
            "P401",
            "pipeline-stage-schema",
            "error",
            "concrete pipeline Stage must declare CONSUMES and PRODUCES as "
            "tuples of field-name string literals (schema of the items it "
            "reads and yields)",
        ),
        Rule(
            "A601",
            "blocking-call-in-coroutine",
            "error",
            "blocking call (time.sleep / open / subprocess / sync network "
            "I/O) inside an async def; it stalls the whole event loop — "
            "await the async equivalent or move the work off the loop",
        ),
        Rule(
            "A602",
            "coroutine-never-awaited",
            "error",
            "coroutine function called as a bare statement; the coroutine "
            "object is created and dropped without ever running — await it "
            "or hand it to asyncio.create_task",
        ),
        Rule(
            "A603",
            "coroutine-shared-state-mutation",
            "warning",
            "module- or class-level mutable container mutated in place from "
            "a coroutine; replace it wholesale (atomic swap, as the batcher "
            "and model registry do) so no await can observe a half-applied "
            "update",
        ),
        Rule(
            "W701",
            "wire-tag-literal-outside-registry",
            "error",
            "versioned wire-schema tag written as a string literal outside "
            "the central registry; import the constant from repro.schemas "
            "so producers and consumers cannot drift",
        ),
        Rule(
            "W702",
            "wire-tag-unbalanced",
            "error",
            "registered wire-schema tag with a missing or stale side: no "
            "producer, no consumer, or a declared module that never "
            "references the tag",
        ),
        Rule(
            "W703",
            "unregistered-envelope",
            "error",
            "CLI envelope emitted for a command whose repro-<cmd>-v1 tag "
            "is not registered in repro.schemas",
        ),
        Rule(
            "O501",
            "telemetry-span-context",
            "error",
            "telemetry span acquired outside a `with` statement (or driven "
            "manually via .start()/.finish()); spans nest through a stack and "
            "must be closed by the context manager — use "
            "Telemetry.record_span for non-lexical lifetimes",
        ),
    )
}


@dataclass
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-relative, forward slashes
    line: int
    col: int
    rule: str
    message: str
    #: the stripped source line, used for fingerprinting and display
    source: str = ""
    #: disambiguates repeated identical findings on identical lines
    occurrence: int = 0
    suppressed: bool = field(default=False, compare=False)

    @property
    def severity(self) -> str:
        return RULES[self.rule].severity

    @property
    def gating(self) -> bool:
        """Whether this finding can fail a lint run."""
        return not self.suppressed and self.severity in ("error", "warning")

    def fingerprint(self) -> str:
        """Stable identity for the baseline: survives line renumbering."""
        payload = "\0".join(
            (self.path, self.rule, self.source.strip(), str(self.occurrence))
        )
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return (
            f"{self.location()}: {self.severity} {self.rule} "
            f"[{RULES[self.rule].name}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint(),
            "suppressed": self.suppressed,
        }


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Stable display order: path, line, column, rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def assign_occurrences(findings: List[Finding]) -> List[Finding]:
    """Number repeated (path, rule, source) triples so fingerprints differ."""
    seen: Dict[tuple, int] = {}
    for finding in sort_findings(findings):
        key = (finding.path, finding.rule, finding.source.strip())
        finding.occurrence = seen.get(key, 0)
        seen[key] = finding.occurrence + 1
    return findings


def rule_catalog() -> List[Rule]:
    """All rules in id order (for ``--rules`` style listings and docs)."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def get_rule(rule_id: str) -> Optional[Rule]:
    return RULES.get(rule_id)

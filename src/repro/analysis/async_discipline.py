"""Async-discipline pass (rules A601-A603).

The serving layer runs on a single asyncio event loop; its latency
story only holds while every coroutine cooperates.  This pass walks a
module's AST and flags the three ways cooperation silently breaks:

* **A601** — a blocking call inside an ``async def``: ``time.sleep``,
  the builtin ``open`` (and ``io.open`` / ``Path``-style
  ``read_text``/``write_text``/``read_bytes``/``write_bytes`` method
  calls), ``subprocess`` invocations, and synchronous network reads
  (``socket.create_connection``, ``urllib.request.urlopen``,
  ``requests.*``).  One such call stalls *every* connection the loop is
  serving.  Calls inside a nested synchronous ``def`` are not flagged —
  the boundary is the coroutine body itself.
* **A602** — a coroutine defined in the same module called as a bare
  expression statement: the call just builds a coroutine object and
  drops it, the body never runs.  ``await``-ing it, assigning it, or
  handing it to ``asyncio.create_task`` / ``ensure_future`` / ``gather``
  are all fine.  Both module-level ``async def`` names and ``self.<m>``
  / ``cls.<m>`` method calls are resolved.
* **A603** — in-place mutation, from inside a coroutine, of a mutable
  container bound at module or class level (``CACHE.append(...)``,
  ``Klass.registry[k] = v``, ``self.shared.update(...)`` where
  ``shared`` is a class attribute).  Between any two awaits another
  task may observe the half-applied update; the sanctioned idioms are
  the ones the micro-batcher and model registry use — build the new
  state, then rebind in one assignment (atomic swap), which this pass
  deliberately leaves untouched.

The pass is cheap on modules with no ``async def`` (one walk, no
findings possible), so the runner applies it to every file.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding

#: dotted calls that block the loop (module alias aware)
_BLOCKING_DOTTED = {
    ("time", "sleep"): "time.sleep() suspends the whole event loop",
    ("socket", "create_connection"):
        "socket.create_connection() blocks until the peer answers",
    ("subprocess", "run"): "subprocess.run() waits for the child",
    ("subprocess", "call"): "subprocess.call() waits for the child",
    ("subprocess", "check_call"): "subprocess.check_call() waits for the child",
    ("subprocess", "check_output"):
        "subprocess.check_output() waits for the child",
    ("urllib", "request", "urlopen"):
        "urllib.request.urlopen() performs blocking network I/O",
    ("requests", "get"): "requests performs blocking network I/O",
    ("requests", "post"): "requests performs blocking network I/O",
    ("requests", "put"): "requests performs blocking network I/O",
    ("requests", "delete"): "requests performs blocking network I/O",
    ("requests", "request"): "requests performs blocking network I/O",
}

#: bare names that block when called inside a coroutine
_BLOCKING_NAMES = {
    "open": "open() performs blocking file I/O",
}

#: method names that are file I/O on any receiver (Path-style helpers)
_BLOCKING_METHODS = {
    "read_text", "write_text", "read_bytes", "write_bytes",
}

#: call targets that legitimately take a coroutine object (A602 escapes)
_COROUTINE_SINKS = {
    "create_task", "ensure_future", "gather", "wait", "wait_for",
    "run", "run_until_complete", "run_coroutine_threadsafe", "as_completed",
    "shield", "timeout",
}

#: method calls that mutate their receiver in place
_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "sort", "reverse",
    "appendleft", "extendleft", "popleft",
}

#: constructors whose module/class-level result counts as mutable state
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque",
}


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _assigned_mutables(body: List[ast.stmt]) -> Set[str]:
    """Names bound to mutable containers by plain assignments in ``body``."""
    names: Set[str] = set()
    for stmt in body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_literal(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _dotted(node: ast.expr) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _ModuleIndex:
    """What the whole module declares: coroutines and mutable state."""

    def __init__(self, tree: ast.Module) -> None:
        #: module-level async function names
        self.module_coroutines: Set[str] = set()
        #: class name -> its async method names
        self.class_coroutines: Dict[str, Set[str]] = {}
        #: module-level names bound to mutable containers
        self.module_mutables: Set[str] = _assigned_mutables(tree.body)
        #: class name -> class-level attrs bound to mutable containers
        self.class_mutables: Dict[str, Set[str]] = {}
        #: import aliases: local name -> canonical dotted module
        self.aliases: Dict[str, str] = {}

        for node in tree.body:
            if isinstance(node, ast.AsyncFunctionDef):
                self.module_coroutines.add(node.name)
            elif isinstance(node, ast.ClassDef):
                methods = {
                    stmt.name for stmt in node.body
                    if isinstance(stmt, ast.AsyncFunctionDef)
                }
                self.class_coroutines[node.name] = methods
                self.class_mutables[node.name] = _assigned_mutables(node.body)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name
                    if alias.asname is None and "." in alias.name:
                        target = alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases.setdefault(local, f"{module}.{alias.name}")

    #: every async method name anywhere in the module (for self.<m> calls,
    #: where the defining class is not statically known)
    def any_class_coroutine(self, name: str) -> bool:
        return any(name in methods for methods in self.class_coroutines.values())


class AsyncDisciplineVisitor(ast.NodeVisitor):
    """Collects A6xx findings for one module."""

    def __init__(self, path: str, source_lines: List[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: List[Finding] = []
        self.index: Optional[_ModuleIndex] = None
        #: name of the class whose body we are currently inside, if any
        self._class: Optional[str] = None

    # ------------------------------------------------------------- helpers

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        self.findings.append(
            Finding(
                path=self.path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
                source=(self.lines[lineno - 1].strip()
                        if 0 < lineno <= len(self.lines) else ""),
            )
        )

    def _resolve(self, dotted: Tuple[str, ...]) -> Tuple[str, ...]:
        """Map the leading alias of a dotted path to its canonical module."""
        assert self.index is not None
        head = self.index.aliases.get(dotted[0])
        if head is None:
            return dotted
        return tuple(head.split(".")) + dotted[1:]

    # ------------------------------------------------------------ dispatch

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        previous, self._class = self._class, node.name
        self.generic_visit(node)
        self._class = previous

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_coroutine_body(node)
        # nested defs are visited for their own async functions only;
        # generic_visit would re-enter the body we just checked
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.AsyncFunctionDef):
                    self._check_coroutine_body(inner)

    # ------------------------------------------------------- the real work

    def _coroutine_statements(self, fn: ast.AsyncFunctionDef):
        """Statements lexically inside ``fn`` but not in nested defs."""
        stack: List[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            yield node
            for child in ast.iter_child_nodes(node):
                stack.append(child)

    def _check_coroutine_body(self, fn: ast.AsyncFunctionDef) -> None:
        assert self.index is not None
        for node in self._coroutine_statements(fn):
            if isinstance(node, ast.Call):
                self._check_blocking(node)
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                self._check_unawaited(node.value)
            self._check_shared_mutation(node)

    # A601 ----------------------------------------------------------------

    def _check_blocking(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            why = _BLOCKING_NAMES.get(func.id)
            if why is not None:
                self._add(node, "A601",
                          f"{why}; it blocks the event loop — run it before "
                          "entering the coroutine or via run_in_executor")
                return
            # fall through: `from time import sleep` binds a bare name
            # whose alias resolves to a blocking dotted target
        dotted = _dotted(func)
        if dotted is not None:
            resolved = self._resolve(dotted)
            for target, why in _BLOCKING_DOTTED.items():
                if resolved[:len(target)] == target:
                    self._add(node, "A601",
                              f"{why}; it blocks the event loop — await the "
                              "async equivalent instead")
                    return
        if (isinstance(func, ast.Attribute)
                and func.attr in _BLOCKING_METHODS):
            self._add(node, "A601",
                      f".{func.attr}() performs blocking file I/O on the "
                      "event loop — read/write before entering the "
                      "coroutine or via run_in_executor")

    # A602 ----------------------------------------------------------------

    def _check_unawaited(self, call: ast.Call) -> None:
        assert self.index is not None
        func = call.func
        name: Optional[str] = None
        if isinstance(func, ast.Name) and func.id in self.index.module_coroutines:
            name = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and self.index.any_class_coroutine(func.attr)
        ):
            name = func.attr
        if name is not None:
            self._add(call, "A602",
                      f"coroutine {name}() is called but never awaited; the "
                      "call only builds a coroutine object — await it or "
                      "wrap it in asyncio.create_task(...)")

    # A603 ----------------------------------------------------------------

    def _is_shared(self, node: ast.expr) -> Optional[str]:
        """Describe ``node`` if it names module/class-level mutable state."""
        assert self.index is not None
        if isinstance(node, ast.Name):
            if node.id in self.index.module_mutables:
                return f"module-level container {node.id}"
            return None
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            owner, attr = node.value.id, node.attr
            if owner in ("self", "cls"):
                klass = self._class
                if klass and attr in self.index.class_mutables.get(klass, ()):
                    return f"class-level container {klass}.{attr}"
                return None
            if attr in self.index.class_mutables.get(owner, ()):
                return f"class-level container {owner}.{attr}"
        return None

    def _check_shared_mutation(self, node: ast.AST) -> None:
        described: Optional[str] = None
        how = ""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
        ):
            described = self._is_shared(node.func.value)
            how = f".{node.func.attr}(...)"
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    described = self._is_shared(target.value)
                    how = "[...] assignment"
                elif (isinstance(node, ast.AugAssign)
                      and isinstance(target, ast.Attribute)):
                    described = self._is_shared(target)
                    how = "augmented assignment"
                if described:
                    break
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    described = self._is_shared(target.value)
                    how = "del item"
                if described:
                    break
        if described:
            self._add(node, "A603",
                      f"{described} mutated in place ({how}) from a "
                      "coroutine; rebuild and rebind it in one assignment "
                      "(atomic swap) so no awaiting task sees a partial "
                      "update")

    # ----------------------------------------------------------------- run

    def run(self, tree: ast.Module) -> List[Finding]:
        self.index = _ModuleIndex(tree)
        self.visit(tree)
        return self.findings


def check_async_discipline(path: str, source: str) -> List[Finding]:
    """All A6xx findings for one module's source text."""
    tree = ast.parse(source, filename=path)
    visitor = AsyncDisciplineVisitor(path, source.splitlines())
    return visitor.run(tree)

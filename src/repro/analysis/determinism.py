"""Determinism pass (rules D101-D104).

Campaign instances are pure functions of ``(config, index, seed)`` — the
parallel engine and every cached dataset depend on it.  This pass walks a
module's AST and flags the constructs that silently break that purity:

* **D101** — draws from the ``random`` module's global state
  (``random.random()``, ``random.choice(...)``, ...) or construction of an
  unseeded generator (``random.Random()`` with no arguments,
  ``random.SystemRandom(...)`` always).  Seeded construction
  (``random.Random(seed)``) and draws on instance variables (``rng.random()``)
  are fine.
* **D102** — numpy global-state RNG (``np.random.rand`` etc.).  Only
  ``np.random.default_rng(seed)`` with an explicit seed argument passes.
* **D103** — wall-clock reads: ``time.time`` / ``time.time_ns`` /
  ``time.monotonic`` / ``time.perf_counter`` / ``time.process_time`` and
  ``datetime.now`` / ``utcnow`` / ``today``.  Simulation code must take
  time from ``Simulator.now``.
* **D104** — iteration over a syntactic set expression (set literal, set
  comprehension, ``set(...)`` / ``frozenset(...)`` call) in a ``for``
  statement, comprehension, or an order-sensitive wrapper such as
  ``list()`` / ``tuple()`` / ``enumerate()``.  Wrap the set in
  ``sorted(...)`` instead; membership tests and ``len()`` are untouched.
* **D105** — module-level *mutable* state in ``repro/simnet/`` (a list /
  dict / set / comprehension / ``collections`` container bound to a
  module global).  Since the multi-session refactor, K sessions
  interleave in one process; anything mutable at module scope is shared
  across all of them and can couple their simulations.  Scope the state
  to the :class:`~repro.simnet.engine.SessionContext` (or suppress with
  a justification for deliberately shared, value-safe pools).
  ``ALL_CAPS`` constants and dunders are exempt by convention; the rule
  only applies to files under a ``simnet`` directory.

The pass is import-alias aware: ``import random as rnd`` and
``from random import choice`` are both caught; a local variable that
happens to be called ``random`` is not (the name must be bound by an
import in the same module).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding

#: ``random``-module callables that draw from (or reseed) global state.
_STDLIB_DRAWS = {
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "paretovariate",
    "vonmisesvariate", "weibullvariate", "triangular", "getrandbits",
    "randbytes", "seed", "setstate", "binomialvariate",
}

#: wall-clock callables per module.
_CLOCK_CALLS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "process_time",
             "process_time_ns", "localtime", "gmtime"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}


class _ImportMap:
    """Which local names are bound to the modules we care about."""

    def __init__(self) -> None:
        #: alias -> canonical module ("random", "numpy", "numpy.random",
        #: "time", "datetime" the module, "datetime.datetime" the class, ...)
        self.aliases: Dict[str, str] = {}
        #: names imported directly from ``random`` (``from random import choice``)
        self.random_funcs: Set[str] = set()
        #: names imported directly from numpy.random
        self.np_random_funcs: Set[str] = set()
        #: names imported directly from ``time``
        self.time_funcs: Set[str] = set()

    def collect(self, tree: ast.AST) -> "_ImportMap":
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    if alias.name in ("random", "numpy", "numpy.random",
                                      "time", "datetime"):
                        target = alias.name
                        if alias.asname is None and "." in alias.name:
                            # ``import numpy.random`` binds ``numpy``
                            target = alias.name.split(".")[0]
                        self.aliases[name] = target
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                for alias in node.names:
                    name = alias.asname or alias.name
                    if module == "random":
                        if alias.name in _STDLIB_DRAWS:
                            self.random_funcs.add(name)
                        elif alias.name in ("Random", "SystemRandom"):
                            self.aliases[name] = f"random.{alias.name}"
                    elif module in ("numpy.random", "numpy.random.mtrand"):
                        self.np_random_funcs.add(name)
                    elif module == "numpy" and alias.name == "random":
                        self.aliases[name] = "numpy.random"
                    elif module == "time":
                        if alias.name in _CLOCK_CALLS["time"]:
                            self.time_funcs.add(name)
                    elif module == "datetime":
                        # ``from datetime import datetime`` / ``date``
                        if alias.name in ("datetime", "date"):
                            self.aliases[name] = f"datetime.{alias.name}"
        return self


def _dotted(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None for anything fancier."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically certain to evaluate to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra keeps set-ness when either side is a set expression
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


#: wrappers through which set iteration order still reaches output
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate", "iter", "reversed"}

#: constructors that produce a mutable container (D105)
_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray",
    "defaultdict", "deque", "Counter", "OrderedDict", "ChainMap",
}


def _is_mutable_expr(node: ast.expr) -> bool:
    """Syntactically certain to evaluate to a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        if dotted and dotted[-1] in _MUTABLE_CONSTRUCTORS:
            return True
    return False


def _is_constant_name(name: str) -> bool:
    """``ALL_CAPS`` constants and dunders are exempt from D105."""
    if name.startswith("__") and name.endswith("__"):
        return True
    return name == name.upper()


class DeterminismVisitor(ast.NodeVisitor):
    """Collects D1xx findings for one module."""

    def __init__(self, path: str, source_lines: List[str]):
        self.path = path
        self.lines = source_lines
        self.findings: List[Finding] = []
        self.imports = _ImportMap()

    # ------------------------------------------------------------- helpers

    def _source(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
                source=self._source(node),
            )
        )

    def _module_of(self, name: str) -> Optional[str]:
        return self.imports.aliases.get(name)

    # --------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        # from-imports called bare: ``choice(...)``, ``time(...)``
        if isinstance(func, ast.Name):
            if func.id in self.imports.random_funcs:
                self._add(node, "D101",
                          f"call to random.{func.id} drawn from the module-"
                          "level RNG; plumb a seeded random.Random through")
            elif func.id in self.imports.np_random_funcs:
                self._add(node, "D102",
                          f"call to numpy.random.{func.id} uses numpy's "
                          "global RNG state; use default_rng(seed)")
            elif func.id in self.imports.time_funcs:
                self._add(node, "D103",
                          f"wall-clock read time.{func.id}(); simulation "
                          "code must use the simulator clock")
            elif self._module_of(func.id) == "random.SystemRandom":
                self._add(node, "D101",
                          "SystemRandom is non-reproducible by design")
            elif self._module_of(func.id) == "random.Random" and not (
                node.args or node.keywords
            ):
                self._add(node, "D101",
                          "random.Random() without a seed argument")
            elif self._module_of(func.id) == "datetime.datetime":
                pass  # constructing datetime(...) from literals is fine
            return

        dotted = _dotted(func)
        if dotted is None:
            return
        head, rest = dotted[0], dotted[1:]
        module = self._module_of(head)
        if module is None:
            return

        if module == "random" and rest:
            self._check_stdlib_random(node, rest)
        elif module == "numpy" and len(rest) >= 2 and rest[0] == "random":
            self._check_numpy_random(node, rest[1:])
        elif module == "numpy.random" and rest:
            self._check_numpy_random(node, rest)
        elif module == "time" and rest and rest[0] in _CLOCK_CALLS["time"]:
            self._add(node, "D103",
                      f"wall-clock read time.{rest[0]}(); simulation code "
                      "must use the simulator clock")
        elif module in ("datetime", "datetime.datetime", "datetime.date"):
            self._check_datetime(node, module, rest)

    def _check_stdlib_random(self, node: ast.Call, rest: Tuple[str, ...]) -> None:
        attr = rest[0]
        if attr == "Random":
            if not (node.args or node.keywords):
                self._add(node, "D101",
                          "random.Random() without a seed argument")
        elif attr == "SystemRandom":
            self._add(node, "D101",
                      "random.SystemRandom is non-reproducible by design")
        elif attr in _STDLIB_DRAWS:
            self._add(node, "D101",
                      f"call to random.{attr} drawn from the module-level "
                      "RNG; plumb a seeded random.Random through")

    def _check_numpy_random(self, node: ast.Call, rest: Tuple[str, ...]) -> None:
        attr = rest[0]
        if attr == "default_rng":
            if not (node.args or node.keywords):
                self._add(node, "D102",
                          "default_rng() without a seed argument")
            return
        if attr in ("Generator", "SeedSequence", "PCG64", "Philox",
                    "MT19937", "SFC64", "BitGenerator"):
            return  # explicit generator plumbing
        self._add(node, "D102",
                  f"np.random.{attr} uses numpy's global RNG state; use "
                  "np.random.default_rng(seed)")

    def _check_datetime(self, node: ast.Call, module: str,
                        rest: Tuple[str, ...]) -> None:
        # ``datetime.now()`` via the class alias, ``datetime.datetime.now()``
        # via the module alias, ``date.today()`` ...
        if module == "datetime" and len(rest) >= 2:
            cls, meth = rest[0], rest[1]
            if cls in ("datetime", "date") and meth in _CLOCK_CALLS["datetime"]:
                self._add(node, "D103",
                          f"wall-clock read datetime.{cls}.{meth}()")
        elif module in ("datetime.datetime", "datetime.date") and rest:
            if rest[0] in _CLOCK_CALLS["datetime"]:
                self._add(node, "D103",
                          f"wall-clock read {module.split('.')[1]}.{rest[0]}()")

    # ----------------------------------------------------------- iteration

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _check_iter(self, iter_node: ast.expr) -> None:
        target = iter_node
        # peel order-sensitive wrappers: list(set(...)), enumerate(set(...))
        while (
            isinstance(target, ast.Call)
            and isinstance(target.func, ast.Name)
            and target.func.id in _ORDER_SENSITIVE_WRAPPERS
            and target.args
        ):
            target = target.args[0]
        if _is_set_expr(target):
            self._add(target, "D104",
                      "iteration over an unordered set; wrap it in "
                      "sorted(...) so downstream order is deterministic")

    # --------------------------------------------------- session isolation

    def _check_module_state(self, tree: ast.AST) -> None:
        """D105: module-level mutable containers in simnet couple sessions."""
        for stmt in getattr(tree, "body", []):
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not _is_mutable_expr(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if _is_constant_name(target.id):
                    continue
                self._add(
                    stmt, "D105",
                    f"module-level mutable state {target.id!r} is shared "
                    "across every interleaved session in the process; scope "
                    "it to the SessionContext",
                )
                break

    def run(self, tree: ast.AST) -> List[Finding]:
        self.imports.collect(tree)
        self.visit(tree)
        if "simnet" in _path_parts(self.path):
            self._check_module_state(tree)
        return self.findings


def _path_parts(path: str) -> Tuple[str, ...]:
    return tuple(path.replace("\\", "/").split("/"))


def check_determinism(path: str, source: str) -> List[Finding]:
    """All D1xx findings for one module's source text."""
    tree = ast.parse(source, filename=path)
    visitor = DeterminismVisitor(path, source.splitlines())
    return visitor.run(tree)

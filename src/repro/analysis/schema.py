"""Metric-schema pass (rules M201/M202).

The whole pipeline hangs on one shared namespace: probes emit metric
dicts, the testbed prefixes them ``<vp>_<layer>_``, and feature
construction / selection / diagnosis refer back to those names (or to
suffixes of them, since the vantage prefix is applied a layer above).  A
typo on the consumer side is *silent*: lookups default to 0.0 and the
model trains on a column of zeros.

This pass statically recovers both sides of the contract:

* **produced** names — string keys of the metric dicts built inside probe
  emission methods (``metrics`` / ``metrics_for`` / ``stop`` / ...), in
  every module under ``probes/``;
* **consumed** names — (a) elements of module-level ``_*_COUNTERS`` /
  ``_*_SUFFIXES`` / ``*_FEATURES`` / ``*_METRICS`` constants in the
  consumer modules (feature construction, selection, diagnosis, FCBF,
  model export), and (b) the constant fragments of f-strings that splice
  a vantage/direction prefix onto a literal tail, e.g.
  ``f"{vp}_tcp_flow_duration"``.

A consumed name matches when some produced name equals it or is a
``_``-aligned suffix of it (``tcp_flow_duration`` matches produced
``flow_duration``).  Constructed-feature suffixes (``_norm``, ``_util``)
are recognised and stripped before matching.

* **M201** (error): consumed but never produced — the silent-zero-fill
  hazard.
* **M202** (note): produced but never referenced by name anywhere —
  purely informational, since unreferenced metrics still flow into the
  generic feature matrix.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.findings import Finding

#: probe methods whose dict keys form the emitted metric namespace
PRODUCER_METHODS = {"metrics", "metrics_for", "stop", "features", "snapshot"}

#: module-level constant names whose string elements are metric references
_CONSUMER_CONST_RE = re.compile(
    r"(COUNTER|COUNTERS|SUFFIX|SUFFIXES|FEATURE|FEATURES|METRIC|METRICS)$"
)

#: a plausible metric name
_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: suffixes added by feature construction, not produced by probes
CONSTRUCTED_SUFFIXES = ("_norm", "_util")

#: f-string fragments that are pure construction suffixes, not references
_FRAGMENT_STOPLIST = {"norm", "util"}


@dataclass(frozen=True)
class MetricRef:
    """One occurrence of a metric name in source."""

    name: str
    path: str
    line: int
    col: int
    source: str


def _is_producer_file(rel_path: str) -> bool:
    return "probes/" in rel_path.replace("\\", "/")


def _iter_dict_keys(node: ast.Dict) -> Iterable[ast.Constant]:
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            yield key


def extract_produced(path: str, source: str) -> List[MetricRef]:
    """Metric names emitted by one probe module."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    refs: List[MetricRef] = []

    def record(const: ast.Constant) -> None:
        name = const.value
        if not _METRIC_NAME_RE.match(name):
            return
        line = lines[const.lineno - 1].strip() if const.lineno <= len(lines) else ""
        refs.append(MetricRef(name, path, const.lineno, const.col_offset + 1, line))

    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name not in PRODUCER_METHODS:
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Dict):
                for key in _iter_dict_keys(inner):
                    record(key)
            elif isinstance(inner, ast.Assign):
                for target in inner.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        record(target.slice)
    return refs


def extract_consumed(path: str, source: str) -> List[MetricRef]:
    """Metric names referenced by one consumer module."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    refs: List[MetricRef] = []

    def record(name: str, node: ast.AST) -> None:
        if not _METRIC_NAME_RE.match(name):
            return
        lineno = getattr(node, "lineno", 0)
        line = lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""
        refs.append(
            MetricRef(name, path, lineno, getattr(node, "col_offset", 0) + 1, line)
        )

    # (a) module-level metric constants
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: ast.expr
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        named = any(
            isinstance(t, ast.Name) and _CONSUMER_CONST_RE.search(t.id.strip("_"))
            for t in targets
        )
        if not named or not isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            continue
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                record(element.value, element)

    # (b) f-string tails: f"{vp}_tcp_flow_duration" -> "tcp_flow_duration"
    for node in ast.walk(tree):
        if not isinstance(node, ast.JoinedStr):
            continue
        has_placeholder = any(
            isinstance(part, ast.FormattedValue) for part in node.values
        )
        if not has_placeholder:
            continue
        for part in node.values:
            if not (isinstance(part, ast.Constant) and isinstance(part.value, str)):
                continue
            fragment = part.value
            if not fragment.startswith("_"):
                continue  # only prefix-composed tails name a metric
            name = fragment.strip("_")
            if not name or name in _FRAGMENT_STOPLIST:
                continue
            record(name, node)
    return refs


def strip_constructed(name: str) -> str:
    for suffix in CONSTRUCTED_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def is_produced(name: str, produced: Set[str]) -> bool:
    """Whether a consumed name resolves to some produced metric."""
    name = strip_constructed(name)
    if name in produced:
        return True
    # vantage/layer prefixes are applied above the probe layer, so a
    # consumed name may carry extra leading components
    return any(name.endswith("_" + p) for p in produced)


def is_consumed(name: str, consumed: Set[str]) -> bool:
    """Whether a produced metric is referenced by any consumed name."""
    if name in consumed:
        return True
    return any(
        strip_constructed(c) == name or strip_constructed(c).endswith("_" + name)
        for c in consumed
    )


def check_schema(
    producer_sources: Dict[str, str], consumer_sources: Dict[str, str]
) -> Tuple[List[Finding], Dict[str, Set[str]]]:
    """Run the schema pass over {rel_path: source} maps.

    Returns ``(findings, namespace)`` where ``namespace`` exposes the
    extracted ``produced`` / ``consumed`` name sets for reporting.
    """
    produced_refs: List[MetricRef] = []
    for path, source in sorted(producer_sources.items()):
        produced_refs.extend(extract_produced(path, source))
    consumed_refs: List[MetricRef] = []
    for path, source in sorted(consumer_sources.items()):
        consumed_refs.extend(extract_consumed(path, source))
    return match_metric_refs(produced_refs, consumed_refs)


def match_metric_refs(
    produced_refs: List[MetricRef], consumed_refs: List[MetricRef]
) -> Tuple[List[Finding], Dict[str, Set[str]]]:
    """The global half of the pass: match pre-extracted refs.

    Split out from :func:`check_schema` so the incremental driver can
    feed it per-file refs recovered from the project-model cache without
    re-reading or re-parsing unchanged files.
    """
    produced_names = {ref.name for ref in produced_refs}
    consumed_names = {ref.name for ref in consumed_refs}

    findings: List[Finding] = []
    for ref in consumed_refs:
        if not is_produced(ref.name, produced_names):
            findings.append(
                Finding(
                    path=ref.path,
                    line=ref.line,
                    col=ref.col,
                    rule="M201",
                    message=(
                        f"feature name {ref.name!r} is consumed here but no "
                        "probe produces it; lookups will silently zero-fill"
                    ),
                    source=ref.source,
                )
            )
    reported: Set[str] = set()
    for ref in produced_refs:
        if ref.name in reported:
            continue
        if not is_consumed(ref.name, consumed_names):
            reported.add(ref.name)
            findings.append(
                Finding(
                    path=ref.path,
                    line=ref.line,
                    col=ref.col,
                    rule="M202",
                    message=(
                        f"probe metric {ref.name!r} is never referenced by "
                        "name downstream"
                    ),
                    source=ref.source,
                )
            )
    namespace = {"produced": produced_names, "consumed": consumed_names}
    return findings, namespace

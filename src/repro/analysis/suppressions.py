"""``# repro: allow[RULE]`` inline suppressions.

A finding is suppressed when the physical line it is anchored to carries a
suppression comment naming its rule id (or ``*``).  Multiple rules may be
listed comma-separated::

    value = rng.choice(options)  # repro: allow[D101,D104]

Suppressions are per-line and per-rule on purpose: a file-wide opt-out
would defeat the baseline workflow.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

from repro.analysis.findings import Finding

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[\s*(?P<rules>[A-Za-z0-9_*,\s-]+?)\s*\]"
)


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of rule ids allowed on that line."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        allowed[lineno] = {rule for rule in rules if rule}
    return allowed


def apply_suppressions(
    findings: List[Finding], allowed: Dict[int, Set[str]]
) -> List[Finding]:
    """Mark findings whose line carries a matching allow comment."""
    for finding in findings:
        rules = allowed.get(finding.line)
        if rules and (finding.rule in rules or "*" in rules):
            finding.suppressed = True
    return findings

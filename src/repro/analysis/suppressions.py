"""``# repro: allow[RULE]`` inline suppressions.

A finding is suppressed when its anchor line is *targeted* by a
suppression comment naming its rule id (or ``*``).  Two comment shapes
target two different lines::

    value = rng.choice(options)  # repro: allow[D101,D104]   <- this line

    # repro: allow[D103] reading config at import time is fine
    t0 = time.time()                                         <- next line

A trailing comment applies to its own line; a comment-only line applies
to the line below it (the usual place to explain *why* the rule is being
waived — anything after the closing bracket is free-form justification).
Multiple rules may be listed comma-separated.

Suppressions are per-line and per-rule on purpose: a file-wide opt-out
would defeat the baseline workflow.  A suppression that matches no
finding is *stale*; the runner reports stale suppressions (non-gating)
so waivers do not outlive the violation they excused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.analysis.findings import Finding

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[\s*(?P<rules>[A-Za-z0-9_*,\s-]+?)\s*\]"
)


@dataclass
class Suppression:
    """One allow comment: where it sits, what it targets, whether it hit."""

    line: int  # 1-based line the comment is written on
    target: int  # 1-based line it applies to
    rules: Set[str] = field(default_factory=set)
    source: str = ""
    used: bool = False
    #: display path of the file the comment lives in (set by the runner)
    path: str = ""

    def matches(self, rule: str) -> bool:
        return rule in self.rules or "*" in self.rules

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "target": self.target,
            "rules": sorted(self.rules),
            "source": self.source,
            "used": self.used,
        }


def _comment_tokens(source: str) -> List[tokenize.TokenInfo]:
    """Real ``#`` comments only — allow text inside strings is not a
    suppression (doc examples would otherwise read as stale waivers)."""
    try:
        return [
            token
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []


def parse_suppression_comments(source: str) -> List[Suppression]:
    """All allow comments in a source text, with their target lines."""
    suppressions: List[Suppression] = []
    for token in _comment_tokens(source):
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rules = {
            part.strip()
            for part in match.group("rules").split(",")
            if part.strip()
        }
        if not rules:
            continue
        lineno, col = token.start
        comment_only = not token.line[:col].strip()
        suppressions.append(
            Suppression(
                line=lineno,
                target=lineno + 1 if comment_only else lineno,
                rules=rules,
                source=token.line.strip(),
            )
        )
    return suppressions


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-based target line -> set of rule ids allowed on that line."""
    allowed: Dict[int, Set[str]] = {}
    for suppression in parse_suppression_comments(source):
        allowed.setdefault(suppression.target, set()).update(suppression.rules)
    return allowed


def apply_suppressions(
    findings: List[Finding], allowed: List[Suppression]
) -> List[Finding]:
    """Mark findings targeted by a matching allow comment.

    Mutates ``allowed`` in place: a suppression that excuses at least one
    finding has ``used`` set, so the caller can report the stale rest.
    """
    by_target: Dict[int, List[Suppression]] = {}
    for suppression in allowed:
        by_target.setdefault(suppression.target, []).append(suppression)
    for finding in findings:
        for suppression in by_target.get(finding.line, ()):
            if suppression.matches(finding.rule):
                finding.suppressed = True
                suppression.used = True
    return findings


def stale_suppressions(allowed: List[Suppression]) -> List[Suppression]:
    """Suppressions that excused nothing (after :func:`apply_suppressions`)."""
    return [suppression for suppression in allowed if not suppression.used]

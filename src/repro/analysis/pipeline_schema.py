"""Pipeline-stage schema pass (rule P401).

Every concrete pipeline stage must declare its item-field contract:
``CONSUMES`` (fields it reads off incoming items) and ``PRODUCES``
(fields carried by the items it yields), each a tuple/list literal of
string literals.  The declarations are what lets ``Pipeline`` validate a
flow at assembly time — an undeclared stage silently opts out of that
check, which is exactly the metric-typo hazard the M2xx pass exists to
prevent, one layer up.

A class is a *stage* when one of its bases is ``Stage``, ``Source`` or
``Sink`` (directly or via attribute access); it is *concrete* when it
carries a ``name = "<literal>"`` class attribute other than
``"abstract"`` — the same concreteness convention the fault-lifecycle
pass uses.  Field names must be non-empty and either the pass-through
sentinel ``"*"`` or dotted identifiers (``features``, ``meta.session_s``).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding

#: base-class names that mark a pipeline-stage hierarchy member
STAGE_BASES = {"Stage", "Source", "Sink"}

#: the declarations rule P401 requires on every concrete stage
SCHEMA_ATTRS = ("CONSUMES", "PRODUCES")


def _base_names(node: ast.ClassDef) -> List[str]:
    names: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _class_attr(node: ast.ClassDef, attr: str) -> Optional[ast.Assign]:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    return stmt
    return None


def _concrete_name(node: ast.ClassDef) -> Optional[str]:
    assign = _class_attr(node, "name")
    if assign is None:
        return None
    value = assign.value
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return None if value.value == "abstract" else value.value
    return None


def _field_name_problem(name: str) -> Optional[str]:
    if not name:
        return "empty field name"
    if name == "*":
        return None
    for part in name.split("."):
        if not part.isidentifier():
            return f"field name {name!r} is not a dotted identifier"
    return None


def _check_schema_attr(node: ast.ClassDef, attr: str) -> Optional[str]:
    """None when the declaration is well-formed, else a message."""
    assign = _class_attr(node, attr)
    if assign is None:
        return (
            f"missing {attr} declaration; declare the item fields this "
            f"stage {'reads' if attr == 'CONSUMES' else 'yields'} as a "
            f"tuple of string literals, e.g. {attr} = (\"features\", \"meta\")"
        )
    value = assign.value
    if not isinstance(value, (ast.Tuple, ast.List)):
        return f"{attr} must be a tuple/list literal of field-name strings"
    # () is legal for CONSUMES (sources); PRODUCES must name something.
    if attr == "PRODUCES" and not value.elts:
        return "PRODUCES must not be empty; use (\"*\",) for pass-through"
    for element in value.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return f"{attr} entries must be string literals"
        problem = _field_name_problem(element.value)
        if problem is not None:
            return f"{attr}: {problem}"
    return None


def check_pipeline_stages(path: str, source: str) -> List[Finding]:
    """All P401 findings for one pipeline module."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    findings: List[Finding] = []

    def add(node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        findings.append(
            Finding(
                path=path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                rule="P401",
                message=message,
                source=lines[lineno - 1].strip() if 0 < lineno <= len(lines) else "",
            )
        )

    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not (STAGE_BASES & set(_base_names(node))):
            continue
        stage_name = _concrete_name(node)
        if stage_name is None:
            continue
        for attr in SCHEMA_ATTRS:
            problem = _check_schema_attr(node, attr)
            if problem is not None:
                add(node, f"stage {stage_name!r}: {problem}")
    return findings

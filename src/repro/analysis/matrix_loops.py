"""Matrix-loop pass (rule M203): per-row Python loops in ML hot paths.

The compiled-inference work moved every ``predict``/``transform`` hot
path in ``repro/ml/`` to whole-batch numpy expressions; a per-row Python
loop reintroduced there silently costs two to three orders of magnitude
at fleet batch sizes.  This pass flags, inside any function whose name
starts with ``predict`` or ``transform``, a ``for`` statement that
iterates rows of a parameter — the feature matrix — via the classic
shapes::

    for i in range(len(X)): ...
    for i in range(X.shape[0]): ...
    for row in zip(X, y): ...
    for i, row in enumerate(X): ...

where ``X`` names a parameter of the enclosing function.  Loops over
locals (chunk starts, node worklists, class indices) are untouched, as
is the object-path reference traversal (its helpers do not match the
``predict*``/``transform*`` naming).  A deliberate per-row loop — say a
scalar fallback kept for differential testing — can carry a
``# repro: allow[M203]`` suppression with its justification.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.findings import Finding


def _param_names(node: ast.AST) -> Set[str]:
    args = node.args  # type: ignore[attr-defined]
    names = {
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    }
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    names.discard("self")
    names.discard("cls")
    return names


def _is_param(node: ast.AST, params: Set[str]) -> bool:
    return isinstance(node, ast.Name) and node.id in params


def _loops_over_param_rows(iter_node: ast.AST, params: Set[str]) -> bool:
    """Does this ``for`` iterator walk a parameter row by row?"""
    if not isinstance(iter_node, ast.Call):
        return False
    func = iter_node.func
    callee = func.id if isinstance(func, ast.Name) else None
    if callee == "range":
        # range(len(X)) / range(X.shape[0]), any argument position
        for arg in iter_node.args:
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id == "len"
                and arg.args
                and _is_param(arg.args[0], params)
            ):
                return True
            if (
                isinstance(arg, ast.Subscript)
                and isinstance(arg.value, ast.Attribute)
                and arg.value.attr == "shape"
                and _is_param(arg.value.value, params)
            ):
                return True
        return False
    if callee == "zip":
        return any(_is_param(arg, params) for arg in iter_node.args)
    if callee == "enumerate":
        return bool(iter_node.args) and _is_param(iter_node.args[0], params)
    return False


class _MatrixLoopVisitor(ast.NodeVisitor):
    def __init__(self, path: str, lines: List[str]) -> None:
        self.path = path
        self.lines = lines
        self.findings: List[Finding] = []
        #: parameter names of the enclosing predict*/transform* function,
        #: empty when we are not inside one
        self._hot_params: Set[str] = set()

    # ------------------------------------------------------------- visits

    def _visit_function(self, node: ast.AST) -> None:
        name = node.name  # type: ignore[attr-defined]
        if name.startswith(("predict", "transform")):
            outer = self._hot_params
            self._hot_params = _param_names(node)
            self.generic_visit(node)
            self._hot_params = outer
        else:
            # a nested helper scopes its own (non-hot) parameters
            outer = self._hot_params
            self._hot_params = set()
            self.generic_visit(node)
            self._hot_params = outer

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_For(self, node: ast.For) -> None:
        if self._hot_params and _loops_over_param_rows(
            node.iter, self._hot_params
        ):
            self._add(node)
        self.generic_visit(node)

    # ------------------------------------------------------------ helpers

    def _add(self, node: ast.For) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=node.lineno,
                col=node.col_offset + 1,
                rule="M203",
                message=(
                    "per-row Python loop over a feature matrix in a "
                    "predict/transform hot path; vectorize over the whole "
                    "batch (one numpy expression) instead"
                ),
                source=(
                    self.lines[node.lineno - 1].strip()
                    if 1 <= node.lineno <= len(self.lines)
                    else ""
                ),
            )
        )


def check_matrix_loops(path: str, source: str) -> List[Finding]:
    """All M203 findings for one module's source text."""
    tree = ast.parse(source, filename=path)
    visitor = _MatrixLoopVisitor(path, source.splitlines())
    visitor.visit(tree)
    return visitor.findings

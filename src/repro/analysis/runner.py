"""Lint driver: file discovery, model build, global passes, reporting.

``lint_paths`` is the library entry point (the CLI's ``repro lint`` is a
thin wrapper).  Since Lint v2 the driver is two-stage:

1. **Per-file** — :func:`repro.analysis.project_model.analyze_file` runs
   every local pass (O5xx everywhere; D1xx on the simulation packages;
   F3xx on ``faults/``; P4xx on ``pipeline/``; A6xx everywhere an
   ``async def`` can appear) and extracts the metric/wire facts the
   global passes need.  This stage is parallel (``--jobs``) and cached
   by content hash (``.repro-lint-cache/``).
2. **Global** — metric-schema matching (M2xx) and wire-schema
   resolution (W7xx) run over the per-file facts, then suppressions,
   occurrence numbering and the baseline gate are applied.

Findings are merged in sorted order, so sequential, parallel and
warm-cache runs are bit-identical.

Paths outside the ``repro`` package (e.g. test fixture trees) are routed
by their top-level directory relative to the lint root, so the passes are
testable on synthetic trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import load_baseline, split_by_baseline
from repro.analysis.findings import (
    Finding,
    RULES,
    assign_occurrences,
    sort_findings,
)
from repro.analysis.project_model import (
    CACHE_DIR_NAME,
    CONSUMER_MODULES,
    DETERMINISM_PACKAGES,
    LIFECYCLE_PACKAGE,
    PIPELINE_PACKAGE,
    PRODUCER_PACKAGE,
    FileFacts,
    ModelCache,
    build_project_model,
    default_jobs,
)
from repro.analysis.schema import match_metric_refs
from repro.analysis.suppressions import (
    Suppression,
    apply_suppressions,
    stale_suppressions,
)
from repro.analysis.wire_schema import check_wire_schema

__all__ = [
    "CACHE_DIR_NAME",
    "CONSUMER_MODULES",
    "DETERMINISM_PACKAGES",
    "LIFECYCLE_PACKAGE",
    "LintResult",
    "PIPELINE_PACKAGE",
    "PRODUCER_PACKAGE",
    "display_path",
    "lint_paths",
    "package_relative",
    "render_text",
    "rule_table",
]


@dataclass
class LintResult:
    """Everything one lint run learned."""

    findings: List[Finding] = field(default_factory=list)
    new_findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    notes: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_suppressions: List[Suppression] = field(default_factory=list)
    parse_errors: List[str] = field(default_factory=list)
    files_checked: int = 0
    #: cache economics of the model build (0/0 when caching is off)
    files_reused: int = 0
    files_analyzed: int = 0
    namespace: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.new_findings and not self.parse_errors

    def summary(self) -> str:
        parts = [
            f"{self.files_checked} files",
            f"{len(self.new_findings)} new",
            f"{len(self.baselined)} baselined",
            f"{len(self.suppressed)} suppressed",
            f"{len(self.notes)} notes",
        ]
        if self.stale_suppressions:
            parts.append(f"{len(self.stale_suppressions)} stale suppressions")
        if self.parse_errors:
            parts.append(f"{len(self.parse_errors)} parse errors")
        if self.files_reused:
            parts.append(f"{self.files_reused} cached")
        return ", ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "files_reused": self.files_reused,
            "files_analyzed": self.files_analyzed,
            "new": [f.to_dict() for f in self.new_findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "notes": [f.to_dict() for f in self.notes],
            "stale_suppressions": [
                s.to_dict() for s in self.stale_suppressions
            ],
            "parse_errors": list(self.parse_errors),
            "namespace": {
                key: sorted(value) for key, value in self.namespace.items()
            },
        }


def _discover(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if CACHE_DIR_NAME not in p.parts
            )
        elif path.suffix == ".py":
            files.append(path)
    # dedupe, keep order
    seen: Set[Path] = set()
    unique: List[Path] = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def package_relative(path: Path, root: Path) -> str:
    """Posix path relative to the ``repro`` package (or the lint root)."""
    parts = list(path.resolve().parts)
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        rel = parts[index + 1:]
        if rel:
            return "/".join(rel)
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def display_path(path: Path, root: Path) -> str:
    """The path findings report: relative to the lint root when possible."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    *,
    jobs: Optional[int] = None,
    cache_dir: Optional[Path] = None,
) -> LintResult:
    """Run every pass over ``paths`` and gate against the baseline.

    ``jobs`` caps the per-file analysis pool (default: CPU count);
    ``cache_dir`` enables the incremental model cache (``None`` — the
    library default — analyzes everything fresh; the CLI passes
    ``<root>/.repro-lint-cache`` unless ``--no-cache``).
    """
    paths = [Path(p) for p in paths]
    root = Path.cwd() if root is None else Path(root)
    if baseline_path is not None:
        baseline_path = Path(baseline_path)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    result = LintResult()
    files = _discover(paths)
    result.files_checked = len(files)

    sources: List[Tuple[str, str, str]] = []
    for file in files:
        shown = display_path(file, root)
        rel = package_relative(file, root)
        try:
            source = file.read_text()
        except OSError as exc:
            result.parse_errors.append(f"{shown}: unreadable ({exc})")
            continue
        sources.append((shown, rel, source))

    cache = ModelCache(Path(cache_dir)) if cache_dir is not None else None
    model, stats = build_project_model(sources, jobs=jobs, cache=cache)
    result.files_reused = stats.reused
    result.files_analyzed = stats.analyzed

    raw: List[Finding] = []
    suppressions: List[Suppression] = []
    suppressions_by_path: Dict[str, List[Suppression]] = {}
    produced: List = []
    consumed: List = []
    wire_facts = []
    for facts in sorted(model, key=lambda f: f.shown):
        if facts.parse_error is not None:
            result.parse_errors.append(facts.parse_error)
            continue
        raw.extend(facts.findings)
        for suppression in facts.suppressions:
            suppression.path = facts.shown
        suppressions_by_path[facts.shown] = facts.suppressions
        suppressions.extend(facts.suppressions)
        produced.extend(facts.produced)
        consumed.extend(facts.consumed)
        if facts.wire is not None:
            wire_facts.append(facts.wire)

    if produced or consumed:
        schema_findings, namespace = match_metric_refs(produced, consumed)
        raw.extend(schema_findings)
        result.namespace = namespace
    if wire_facts:
        raw.extend(check_wire_schema(wire_facts))

    by_path: Dict[str, List[Finding]] = {}
    for finding in raw:
        by_path.setdefault(finding.path, []).append(finding)
    for shown, path_findings in by_path.items():
        apply_suppressions(
            path_findings, suppressions_by_path.get(shown, [])
        )
    result.stale_suppressions = sorted(
        stale_suppressions(suppressions), key=lambda s: (s.path, s.line)
    )

    assign_occurrences(raw)
    result.findings = sort_findings(raw)
    result.suppressed = [f for f in result.findings if f.suppressed]
    result.notes = [
        f for f in result.findings
        if not f.suppressed and f.severity == "note"
    ]

    accepted = load_baseline(baseline_path) if baseline_path else set()
    result.new_findings, result.baselined = split_by_baseline(
        result.findings, accepted
    )
    return result


def render_text(result: LintResult, show_notes: bool = False) -> str:
    """Human-readable report, one finding per line."""
    lines: List[str] = []
    for error in result.parse_errors:
        lines.append(f"{error}")
    for finding in result.new_findings:
        lines.append(finding.render())
    if show_notes:
        for finding in result.notes:
            lines.append(finding.render())
    for suppression in result.stale_suppressions:
        lines.append(
            f"{suppression.path}:{suppression.line}: stale suppression "
            f"({suppression.source}) excuses nothing"
        )
    lines.append(f"repro lint: {result.summary()}")
    lines.append("result: " + ("clean" if result.ok else "FINDINGS"))
    return "\n".join(lines)


def rule_table() -> List[Tuple[str, str, str, str]]:
    """(id, name, severity, summary) rows for docs and ``--rules``."""
    return [
        (rule.id, rule.name, rule.severity, rule.summary)
        for rule in (RULES[rule_id] for rule_id in sorted(RULES))
    ]

"""Lint driver: file discovery, pass routing, reporting.

``lint_paths`` is the library entry point (the CLI's ``repro lint`` is a
thin wrapper).  Pass routing is by package-relative location:

* determinism (D1xx) runs on ``simnet/``, ``faults/``, ``testbed/``,
  ``traffic/`` and ``video/`` — the modules that feed campaign records;
* the metric-schema pass (M2xx) collects producers from ``probes/`` and
  consumers from the feature-construction / selection / diagnosis /
  export modules, then matches the two sides globally;
* the fault-lifecycle pass (F3xx) runs on ``faults/``;
* the pipeline-schema pass (P4xx) runs on ``pipeline/`` — every concrete
  stage must declare its ``CONSUMES``/``PRODUCES`` item fields;
* the telemetry-usage pass (O5xx) runs on *every* file — spans must be
  acquired as ``with`` contexts, never held or driven manually.

Paths outside the ``repro`` package (e.g. test fixture trees) are routed
by their top-level directory relative to the lint root, so the passes are
testable on synthetic trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import load_baseline, split_by_baseline
from repro.analysis.determinism import check_determinism
from repro.analysis.findings import (
    Finding,
    RULES,
    assign_occurrences,
    sort_findings,
)
from repro.analysis.lifecycle import check_lifecycle
from repro.analysis.obs_usage import check_obs_usage
from repro.analysis.pipeline_schema import check_pipeline_stages
from repro.analysis.schema import check_schema
from repro.analysis.suppressions import apply_suppressions, parse_suppressions

#: packages whose modules must stay deterministic
DETERMINISM_PACKAGES = ("simnet", "faults", "testbed", "traffic", "video")

#: package whose modules produce the metric namespace
PRODUCER_PACKAGE = "probes"

#: modules that consume metric names (package-relative posix paths)
CONSUMER_MODULES = (
    "core/construction.py",
    "core/diagnosis.py",
    "core/selection.py",
    "core/vantage.py",
    "ml/fcbf.py",
    "ml/export.py",
)

#: package whose classes the lifecycle pass inspects
LIFECYCLE_PACKAGE = "faults"

#: package whose stage classes the pipeline-schema pass inspects
PIPELINE_PACKAGE = "pipeline"


@dataclass
class LintResult:
    """Everything one lint run learned."""

    findings: List[Finding] = field(default_factory=list)
    new_findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    notes: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    parse_errors: List[str] = field(default_factory=list)
    files_checked: int = 0
    namespace: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.new_findings and not self.parse_errors

    def summary(self) -> str:
        parts = [
            f"{self.files_checked} files",
            f"{len(self.new_findings)} new",
            f"{len(self.baselined)} baselined",
            f"{len(self.suppressed)} suppressed",
            f"{len(self.notes)} notes",
        ]
        if self.parse_errors:
            parts.append(f"{len(self.parse_errors)} parse errors")
        return ", ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "new": [f.to_dict() for f in self.new_findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "notes": [f.to_dict() for f in self.notes],
            "parse_errors": list(self.parse_errors),
            "namespace": {
                key: sorted(value) for key, value in self.namespace.items()
            },
        }


def _discover(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # dedupe, keep order
    seen: Set[Path] = set()
    unique: List[Path] = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def package_relative(path: Path, root: Path) -> str:
    """Posix path relative to the ``repro`` package (or the lint root)."""
    parts = list(path.resolve().parts)
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        rel = parts[index + 1:]
        if rel:
            return "/".join(rel)
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def display_path(path: Path, root: Path) -> str:
    """The path findings report: relative to the lint root when possible."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _top_package(rel: str) -> str:
    return rel.split("/", 1)[0] if "/" in rel else ""


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
) -> LintResult:
    """Run every pass over ``paths`` and gate against the baseline."""
    paths = [Path(p) for p in paths]
    root = Path.cwd() if root is None else Path(root)
    if baseline_path is not None:
        baseline_path = Path(baseline_path)
    result = LintResult()
    files = _discover(paths)
    result.files_checked = len(files)

    producer_sources: Dict[str, str] = {}
    consumer_sources: Dict[str, str] = {}
    raw: List[Finding] = []
    suppressions_by_path: Dict[str, Dict[int, Set[str]]] = {}

    for file in files:
        rel = package_relative(file, root)
        shown = display_path(file, root)
        try:
            source = file.read_text()
        except OSError as exc:
            result.parse_errors.append(f"{shown}: unreadable ({exc})")
            continue
        try:
            ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            result.parse_errors.append(f"{shown}:{exc.lineno}: syntax error")
            continue
        suppressions_by_path[shown] = parse_suppressions(source)

        raw.extend(check_obs_usage(shown, source))

        top = _top_package(rel)
        if top in DETERMINISM_PACKAGES:
            raw.extend(check_determinism(shown, source))
        if top == LIFECYCLE_PACKAGE:
            raw.extend(check_lifecycle(shown, source))
        if top == PIPELINE_PACKAGE:
            raw.extend(check_pipeline_stages(shown, source))
        if top == PRODUCER_PACKAGE:
            producer_sources[shown] = source
        if rel in CONSUMER_MODULES:
            consumer_sources[shown] = source

    if producer_sources or consumer_sources:
        schema_findings, namespace = check_schema(
            producer_sources, consumer_sources
        )
        raw.extend(schema_findings)
        result.namespace = namespace

    for finding in raw:
        allowed = suppressions_by_path.get(finding.path, {})
        apply_suppressions([finding], allowed)

    assign_occurrences(raw)
    result.findings = sort_findings(raw)
    result.suppressed = [f for f in result.findings if f.suppressed]
    result.notes = [
        f for f in result.findings
        if not f.suppressed and f.severity == "note"
    ]

    accepted = load_baseline(baseline_path) if baseline_path else set()
    result.new_findings, result.baselined = split_by_baseline(
        result.findings, accepted
    )
    return result


def render_text(result: LintResult, show_notes: bool = False) -> str:
    """Human-readable report, one finding per line."""
    lines: List[str] = []
    for error in result.parse_errors:
        lines.append(f"{error}")
    for finding in result.new_findings:
        lines.append(finding.render())
    if show_notes:
        for finding in result.notes:
            lines.append(finding.render())
    lines.append(f"repro lint: {result.summary()}")
    lines.append("result: " + ("clean" if result.ok else "FINDINGS"))
    return "\n".join(lines)


def rule_table() -> List[Tuple[str, str, str, str]]:
    """(id, name, severity, summary) rows for docs and ``--rules``."""
    return [
        (rule.id, rule.name, rule.severity, rule.summary)
        for rule in (RULES[rule_id] for rule_id in sorted(RULES))
    ]

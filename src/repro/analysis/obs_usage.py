"""Telemetry-usage pass (rule O501).

Telemetry spans nest through a stack: a span that is opened but never
closed (or closed out of order) corrupts every enclosing span's timing.
The API therefore only hands spans out as context managers, and this
pass enforces the discipline statically, project-wide:

* every ``<expr>.span(...)`` call must be the context expression of a
  ``with`` item — assigning it (``s = tel.span(...)``), passing it
  around, or chaining into it are all findings;
* a span bound by ``with ... as s`` must not be driven manually:
  ``s.start()`` / ``s.finish()`` calls on such names are findings (the
  ``with`` statement already owns the lifetime).

Aggregate spans with non-lexical lifetimes (pipeline stage totals) go
through ``Telemetry.record_span``, which files an already-measured span
and needs no closing — that is the sanctioned escape hatch.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.findings import Finding

#: the span-acquiring method name this pass polices
SPAN_METHOD = "span"

#: lifecycle methods that must never be called on a with-bound span
MANUAL_LIFECYCLE = ("start", "finish")


def _with_context_calls(tree: ast.AST) -> Set[int]:
    """ids of Call nodes used directly as a ``with`` context expression."""
    contexts: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    contexts.add(id(item.context_expr))
    return contexts


def _span_aliases(tree: ast.AST) -> Set[str]:
    """Names bound by ``with <expr>.span(...) as <name>``."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == SPAN_METHOD
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    aliases.add(item.optional_vars.id)
    return aliases


def check_obs_usage(path: str, source: str) -> List[Finding]:
    """All O501 findings for one module."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    findings: List[Finding] = []

    def add(node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        findings.append(
            Finding(
                path=path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                rule="O501",
                message=message,
                source=lines[lineno - 1].strip() if 0 < lineno <= len(lines) else "",
            )
        )

    contexts = _with_context_calls(tree)
    aliases = _span_aliases(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr == SPAN_METHOD:
            if id(node) not in contexts:
                add(
                    node,
                    "span() must be the context expression of a `with` "
                    "statement (a span opened outside `with` can never be "
                    "closed safely); use Telemetry.record_span for "
                    "non-lexical lifetimes",
                )
        elif func.attr in MANUAL_LIFECYCLE:
            if isinstance(func.value, ast.Name) and func.value.id in aliases:
                add(
                    node,
                    f"manual span lifecycle call .{func.attr}() on a "
                    "with-bound span; the `with` statement already owns "
                    "the span's lifetime",
                )
    return findings

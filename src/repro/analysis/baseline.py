"""Committed finding baselines for ``repro lint``.

The baseline is the ratchet: CI fails only on findings *not* in the
committed file, so a clean tree stays clean while historical debt (if
any) is paid down explicitly.  Entries are keyed by fingerprint — a hash
of ``(path, rule, source line text, occurrence)`` — so unrelated edits
that renumber lines do not invalidate the file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.schemas import LINT_BASELINE_V1

FORMAT = LINT_BASELINE_V1


def load_baseline(path: Path) -> Set[str]:
    """Accepted fingerprints from a baseline file (empty set if absent)."""
    path = Path(path)
    if not path.exists():
        return set()
    data = json.loads(path.read_text())
    if data.get("format") != FORMAT:
        raise ValueError(f"{path} is not a {FORMAT} file")
    return {str(entry["fingerprint"]) for entry in data.get("entries", [])}


def save_baseline(path: Path, findings: List[Finding]) -> Dict[str, object]:
    """Write the gating findings as the new accepted baseline."""
    entries = [
        {
            "fingerprint": finding.fingerprint(),
            "rule": finding.rule,
            "path": finding.path,
            "message": finding.message,
        }
        for finding in findings
        if finding.gating
    ]
    payload: Dict[str, object] = {"format": FORMAT, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def split_by_baseline(
    findings: List[Finding], accepted: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition gating findings into (new, baselined)."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        if not finding.gating:
            continue
        if finding.fingerprint() in accepted:
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined

"""repro: root-cause analysis for mobile video streaming QoE.

A full reproduction of "Identifying the Root Cause of Video Streaming
Issues on Mobile Devices" (Dimopoulos et al., CoNEXT 2015): a simulated
testbed (network, WiFi, TCP, video delivery, faults, probes) plus the
paper's multi-vantage-point machine-learning diagnosis framework.

Quickstart::

    from repro import RootCauseAnalyzer, controlled_dataset

    dataset = controlled_dataset(n_instances=200)   # simulate ground truth
    analyzer = RootCauseAnalyzer(vps=("mobile",))   # phone-only deployment
    analyzer.fit(dataset)
    report = analyzer.diagnose(dataset[0])
    print(report.summary())

See ``examples/`` for runnable end-to-end scenarios and ``benchmarks/``
for the reproduction of every table and figure in the paper.
"""

from repro.core.dataset import Dataset, Instance
from repro.core.diagnosis import DiagnosisReport, RootCauseAnalyzer
from repro.experiments.common import (
    controlled_dataset,
    realworld_dataset,
    wild_dataset,
)
from repro.pipeline import (
    CampaignSource,
    DatasetSink,
    DiagnoseStage,
    JsonlSink,
    JsonlSource,
    Pipeline,
)
from repro.testbed.campaign import CampaignConfig, iter_campaign, run_campaign
from repro.testbed.testbed import SessionRecord, Testbed, TestbedConfig
from repro.video.catalog import VideoCatalog, VideoProfile

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "Instance",
    "DiagnosisReport",
    "RootCauseAnalyzer",
    "controlled_dataset",
    "realworld_dataset",
    "wild_dataset",
    "CampaignConfig",
    "iter_campaign",
    "run_campaign",
    "CampaignSource",
    "DatasetSink",
    "DiagnoseStage",
    "JsonlSink",
    "JsonlSource",
    "Pipeline",
    "SessionRecord",
    "Testbed",
    "TestbedConfig",
    "VideoCatalog",
    "VideoProfile",
    "__version__",
]

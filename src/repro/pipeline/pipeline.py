"""Pipeline assembly and execution.

A pipeline is ``Source -> Stage* -> Sink*``: stages are composed into a
single lazy iterator chain, so exactly one record (or one chunk, for
vectorized stages) is in flight at a time and memory stays constant in
the stream length.  At assembly time the declared stage schemas are
checked — every field a stage ``CONSUMES`` must be produced upstream —
turning field-name typos into immediate :class:`SchemaError`\\ s instead
of silent zero-filled columns at the end of a two-hour campaign.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set

from repro.obs.flow import metered_flow
from repro.obs.telemetry import get_telemetry
from repro.pipeline.stages import ANY, Sink, Source, Stage


class SchemaError(ValueError):
    """A stage consumes a field no upstream stage produces."""


def validate_schema(stages: Sequence[Stage]) -> None:
    """Check the CONSUMES/PRODUCES chain of an ordered stage list.

    The walk tracks the set of fields carried by items at each point:
    a source establishes it, a pass-through stage (``PRODUCES = ("*",)``)
    preserves it, anything else replaces it.  A stage producing ``"*"``
    from an unknown source (e.g. ``IterableSource``) suspends checking
    until a stage with a concrete ``PRODUCES`` re-establishes the schema.
    """
    if not stages:
        raise SchemaError("pipeline needs at least a source")
    if not isinstance(stages[0], Source):
        raise SchemaError(
            f"first stage must be a Source, got {type(stages[0]).__name__}"
        )
    available: Optional[Set[str]] = None
    for position, stage in enumerate(stages):
        if position > 0 and isinstance(stage, Source):
            raise SchemaError(
                f"stage {position} ({stage.name!r}) is a Source; sources "
                "can only start a pipeline"
            )
        consumes = set(stage.CONSUMES)
        if position > 0 and ANY not in consumes and available is not None:
            missing = consumes - available
            if missing:
                raise SchemaError(
                    f"stage {position} ({stage.name!r}) consumes "
                    f"{sorted(missing)} which no upstream stage produces "
                    f"(available: {sorted(available)})"
                )
        produces = set(stage.PRODUCES)
        if ANY in produces:
            if position == 0:
                available = None  # unknown item shape: suspend checking
            # pass-through: available unchanged
        else:
            available = produces


class Pipeline:
    """An assembled streaming flow; iterate it or :meth:`run` it.

    Iterating yields the items leaving the final stage one at a time
    (sinks fire their side effects as items pass).  :meth:`run` drains
    the flow and returns the last sink's ``result()`` — or the item
    count when the pipeline has no sink.  Sinks are closed either way,
    even when the flow raises mid-stream, so spool files and checkpoints
    are always consistent.
    """

    def __init__(self, source: Source, *stages: Stage) -> None:
        self.stages: List[Stage] = [source, *stages]
        validate_schema(self.stages)

    @property
    def sinks(self) -> List[Sink]:
        return [stage for stage in self.stages if isinstance(stage, Sink)]

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __iter__(self) -> Iterator[object]:
        tel = get_telemetry()
        if tel.enabled:
            return self._traced_flow()

        def flow() -> Iterator[object]:
            stream: Iterator[object] = iter(())
            for stage in self.stages:
                stream = stage.process(stream)
            try:
                for item in stream:
                    yield item
            finally:
                self.close()

        return flow()

    def _traced_flow(self) -> Iterator[object]:
        """The metered variant of the flow: identical items, plus a trace.

        Each stage boundary is wrapped by a :class:`~repro.obs.flow
        .StageMeter`; when the stream ends (normally or not) the
        finalizer files one aggregate ``pipeline.stage.<name>`` span per
        stage — records in/out, inclusive and self wall time — under the
        enclosing ``pipeline.run`` span.
        """
        tel = get_telemetry()
        with tel.span("pipeline.run", stages=len(self.stages)):
            stream, finalize = metered_flow(self.stages)
            try:
                for item in stream:
                    yield item
            finally:
                finalize()
                self.close()

    def run(self) -> object:
        """Drain the pipeline; return the final sink's result."""
        count = 0
        for _item in self:
            count += 1
        sinks = self.sinks
        if sinks:
            return sinks[-1].result()
        return count

"""Checkpoint/resume bookkeeping for spooled campaign streams.

A spool (``campaign.jsonl``) is accompanied by a tiny sidecar
(``campaign.jsonl.ckpt``) recording how many instances have been fully
written and a fingerprint of the campaign configuration that produced
them.  Resume is then exact: because every campaign instance is a pure
function of ``(config, index, instance_seed)`` and the per-instance seeds
are all drawn up front, restarting at ``completed`` yields bit-identical
records to a never-interrupted run.

Crash safety: the sidecar is written atomically (tmp + fsync + rename +
directory fsync) *after* its record's spool line, so a crash can leave at
most one un-checkpointed or partial trailing line; :func:`resume_position`
truncates the spool back to the last checkpointed record before the
campaign restarts.  The directory fsync matters: ``rename`` alone makes
the new sidecar *contents* durable but not the directory entry, so a
power cut (or SIGKILL racing a dirty page cache) between the rename and
the next journal commit could resurface the old sidecar — or none at all
— while the spool already carries the newer records.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path
from typing import Optional, Union

from repro.schemas import CHECKPOINT_V1

CHECKPOINT_FORMAT = CHECKPOINT_V1


def checkpoint_path(spool: Union[str, Path]) -> Path:
    """The sidecar path for a spool file."""
    spool = Path(spool)
    return spool.with_name(spool.name + ".ckpt")


def fsync_directory(directory: Union[str, Path]) -> None:
    """Flush a directory's entry table to disk (best effort off-POSIX).

    After ``os.replace`` the *file* is durable but the directory entry
    pointing at it may not be; syncing the directory closes that window.
    Platforms that cannot open a directory for reading (Windows) skip.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX fallback
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def durable_write(path: Path, text: str) -> None:
    """Atomically and *durably* replace ``path`` with ``text``.

    tmp write + file fsync + rename + directory fsync: after this
    returns, a crash at any point leaves either the old or the new
    content — never a torn file, and never a rename that evaporates.
    """
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)


def config_fingerprint(config: object) -> str:
    """Stable identity of a campaign config (dataclass or repr-able).

    Deliberately excludes execution knobs that do not change the records
    (worker count, chunk size) — those live outside the config object.
    """
    if is_dataclass(config) and not isinstance(config, type):
        payload = repr(sorted(asdict(config).items()))
    else:
        payload = repr(config)
    payload = f"{type(config).__name__}|{payload}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class Checkpoint:
    """Progress marker for one spooled campaign."""

    config_key: str
    completed: int

    def to_dict(self) -> dict:
        return {
            "format": CHECKPOINT_FORMAT,
            "config_key": self.config_key,
            "completed": self.completed,
        }


def save_checkpoint(spool: Union[str, Path], checkpoint: Checkpoint) -> None:
    """Atomically and durably write the sidecar for ``spool``."""
    durable_write(checkpoint_path(spool), json.dumps(checkpoint.to_dict()))


def load_checkpoint(spool: Union[str, Path]) -> Optional[Checkpoint]:
    """The sidecar contents, or ``None`` when absent/unreadable."""
    path = checkpoint_path(spool)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("format") != CHECKPOINT_FORMAT:
        return None
    return Checkpoint(
        config_key=str(payload["config_key"]),
        completed=int(payload["completed"]),
    )


def clear_checkpoint(spool: Union[str, Path]) -> None:
    """Remove the sidecar (a completed campaign needs no resume marker)."""
    path = checkpoint_path(spool)
    if path.exists():
        path.unlink()


def resume_position(spool: Union[str, Path], config_key: str) -> int:
    """Where to restart a spooled campaign: the count of completed records.

    Reconciles the spool with its checkpoint sidecar and truncates any
    trailing bytes past the last checkpointed record (a crash mid-write
    leaves at most a partial line).  Raises ``ValueError`` when the spool
    belongs to a *different* campaign configuration — resuming someone
    else's spool would silently mix datasets.
    """
    spool = Path(spool)
    if not spool.exists():
        return 0
    checkpoint = load_checkpoint(spool)
    if checkpoint is None:
        raise ValueError(
            f"{spool} exists but has no usable checkpoint sidecar; "
            "delete the spool to start over"
        )
    if checkpoint.config_key != config_key:
        raise ValueError(
            f"{spool} was written by a different campaign config "
            f"({checkpoint.config_key} != {config_key}); refusing to resume"
        )
    # Keep exactly `completed` full lines; drop anything after them.
    keep = checkpoint.completed
    offset = 0
    seen = 0
    with spool.open("rb") as fh:
        for line in fh:
            if seen >= keep:
                break
            if line.endswith(b"\n"):
                seen += 1
                offset += len(line)
            else:
                break  # partial trailing line
    if seen < keep:
        # Spool is shorter than the checkpoint claims: trust the spool.
        keep = seen
    with spool.open("rb+") as fh:
        fh.truncate(offset)
    if keep != checkpoint.completed:
        save_checkpoint(spool, Checkpoint(config_key=config_key, completed=keep))
    return keep

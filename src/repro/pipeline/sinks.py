"""Pipeline sinks: where streamed items land.

``JsonlSink`` spools session records to disk with per-record checkpoints
(the durable end of a campaign stream — constant memory, resumable).
``DatasetSink`` assembles a :class:`~repro.core.dataset.Dataset`
incrementally; ``CollectSink`` and ``CountSink`` are the in-memory and
forget-everything terminals.  All sinks pass items through unchanged, so
they can be placed mid-pipeline (spool *and* diagnose in one flow).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, TextIO, Union

from repro.core.dataset import Dataset, DatasetBuilder, Instance
from repro.obs.telemetry import get_telemetry
from repro.pipeline.checkpoint import (
    Checkpoint,
    clear_checkpoint,
    save_checkpoint,
)
from repro.pipeline.records import record_to_json
from repro.pipeline.stages import Sink
from repro.testbed.testbed import SessionRecord


class JsonlSink(Sink):
    """Spool session records to a JSONL file with checkpoint sidecar.

    Each record is written and flushed before its checkpoint is bumped,
    so the ``(spool, sidecar)`` pair is always resumable: at most the
    final, un-checkpointed line can be lost to a crash, and
    :func:`repro.pipeline.checkpoint.resume_position` truncates it away.

    ``start`` is the number of already-completed records when resuming
    (the sink appends and continues counting from there).  When the
    stream finishes cleanly the sidecar is dropped (a finished spool
    needs no resume marker) unless ``keep_checkpoint`` is true; an
    interrupted stream always keeps it, so the campaign can resume.
    """

    name = "jsonl-spool"
    CONSUMES = ("features", "meta")
    PRODUCES = ("*",)

    def __init__(
        self,
        path: Union[str, Path],
        config_key: str = "",
        start: int = 0,
        keep_checkpoint: bool = False,
    ) -> None:
        self.path = Path(path)
        self.config_key = config_key
        self.completed = start
        self.keep_checkpoint = keep_checkpoint
        self._stream_completed = False
        mode = "a" if start else "w"
        self._fh: Optional[TextIO] = self.path.open(mode, encoding="utf-8")

    def consume(self, item: object) -> None:
        if self._fh is None:
            raise RuntimeError("sink is closed")
        assert isinstance(item, SessionRecord)
        self._fh.write(record_to_json(item) + "\n")
        self._fh.flush()
        self.completed += 1
        save_checkpoint(
            self.path,
            Checkpoint(config_key=self.config_key, completed=self.completed),
        )
        tel = get_telemetry()
        if tel.enabled:
            tel.count("pipeline.checkpoint.saves")
            tel.event(
                "checkpoint.save",
                spool=str(self.path),
                completed=self.completed,
            )

    def result(self) -> object:
        return self.completed

    def on_complete(self) -> None:
        self._stream_completed = True

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            if self._stream_completed and not self.keep_checkpoint:
                clear_checkpoint(self.path)
                tel = get_telemetry()
                if tel.enabled:
                    tel.event(
                        "checkpoint.clear",
                        spool=str(self.path),
                        completed=self.completed,
                    )


class DatasetSink(Sink):
    """Assemble a :class:`Dataset` incrementally from the stream.

    Accepts ``SessionRecord`` and ``Instance`` items alike.  The dataset
    itself is the one deliberately-materialized object of the flow; the
    assembly is single-pass and never re-walks what it has collected.
    """

    name = "dataset"
    CONSUMES = ("features", "meta")
    PRODUCES = ("*",)

    def __init__(self) -> None:
        self._builder = DatasetBuilder()

    def consume(self, item: object) -> None:
        if isinstance(item, Instance):
            self._builder.add(item)
        else:
            self._builder.add_record(item)

    def result(self) -> Dataset:
        return self._builder.build()


class CollectSink(Sink):
    """Collect every item into a list (the batch-compatibility terminal)."""

    name = "collect"
    CONSUMES = ("*",)
    PRODUCES = ("*",)

    def __init__(self) -> None:
        self.items: List[object] = []

    def consume(self, item: object) -> None:
        self.items.append(item)

    def result(self) -> List[object]:
        return self.items


class CountSink(Sink):
    """Count items (and severity labels when present), retaining nothing.

    The truly constant-memory terminal: useful for smoke runs and for
    measuring the pipeline's memory floor.
    """

    name = "count"
    CONSUMES = ("*",)
    PRODUCES = ("*",)

    def __init__(self) -> None:
        self.count = 0
        self.severity_counts: Dict[str, int] = {}

    def consume(self, item: object) -> None:
        self.count += 1
        severity = getattr(item, "severity_label", None)
        if severity is None:
            report = getattr(item, "report", None)
            severity = getattr(report, "severity", None)
        if severity is not None:
            self.severity_counts[severity] = self.severity_counts.get(severity, 0) + 1

    def result(self) -> Dict[str, object]:
        return {"count": self.count, "severity": dict(sorted(self.severity_counts.items()))}

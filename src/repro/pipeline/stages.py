"""The stage contract: typed, schema-declaring iterator transforms.

A pipeline stage is an ``Iterator -> Iterator`` transform with a declared
*schema*: ``CONSUMES`` names the item fields the stage reads, ``PRODUCES``
names the fields carried by the items it yields.  Declarations are plain
tuples of string literals so that both :func:`repro.pipeline.Pipeline`
(at assembly time) and ``repro lint`` rule P401 (statically) can check
that every stage's inputs are satisfied by its upstream neighbours.

Three conventions keep the schema algebra small:

* a *source* consumes nothing (``CONSUMES = ()``) and ignores its
  upstream iterator;
* ``PRODUCES = ("*",)`` marks a *pass-through* stage (typically a sink):
  items flow out exactly as they came in, so the effective output schema
  is the input schema;
* ``CONSUMES = ("*",)`` marks a stage that accepts any item.

Stages hold no references to items they have yielded: memory stays
bounded by the largest in-flight chunk, never by the stream length.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple, TypeVar

T = TypeVar("T")

#: the pass-through / accept-anything schema sentinel
ANY = "*"


def chunked(stream: Iterable[T], size: int) -> Iterator[List[T]]:
    """Yield successive lists of up to ``size`` items from ``stream``.

    The workhorse of every vectorized streaming stage: bounded batches
    give numpy-sized work units without materializing the stream.
    """
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    chunk: List[T] = []
    for item in stream:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class Stage:
    """Base class of every pipeline stage.

    Concrete subclasses declare a ``name`` (a string literal other than
    ``"abstract"``), ``CONSUMES`` and ``PRODUCES``; ``repro lint`` rule
    P401 enforces the declarations statically.  The only behavioural
    obligation is :meth:`process`: take an iterator, return an iterator,
    never materialize the whole stream.
    """

    name = "abstract"
    CONSUMES: Tuple[str, ...] = ()
    PRODUCES: Tuple[str, ...] = ()

    def process(self, stream: Iterator[object]) -> Iterator[object]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class Source(Stage):
    """A stage that originates items; its upstream iterator is ignored."""

    name = "abstract"

    def items(self) -> Iterator[object]:
        raise NotImplementedError

    def process(self, stream: Iterator[object]) -> Iterator[object]:
        # Drain nothing: a source starts the flow.
        return self.items()


class Sink(Stage):
    """A pass-through stage with a side effect and a final result.

    Sinks see every item (``consume``), forward it unchanged, and expose
    whatever they accumulated via :meth:`result` once the stream is
    drained.  Because they pass items through, sinks compose: a spool
    sink can feed a diagnosis stage that feeds a report sink.
    """

    name = "abstract"
    CONSUMES = (ANY,)
    PRODUCES = (ANY,)

    def consume(self, item: object) -> None:
        raise NotImplementedError

    def result(self) -> object:
        return None

    def on_complete(self) -> None:
        """Called only when the upstream stream is exhausted normally.

        An interrupted flow (exception, early close) skips this — which
        is how :class:`~repro.pipeline.sinks.JsonlSink` knows whether its
        resume checkpoint is still needed.
        """

    def close(self) -> None:
        """Release resources (files, ...); called when the flow ends."""

    def process(self, stream: Iterator[object]) -> Iterator[object]:
        for item in stream:
            self.consume(item)
            yield item
        self.on_complete()

"""The shard orchestrator: run N shards as subprocesses, survive crashes.

A mega-campaign's shards are embarrassingly parallel and individually
resumable (:mod:`repro.pipeline.shard`), so supervision reduces to a
small state machine per shard::

    pending -> running -> done
                  |  \\
                  |   failed          (retry budget exhausted)
                  v
               backoff -> pending     (crash or stalled heartbeat)

Shards run as real subprocesses (``multiprocessing`` with the ``fork``
start method where available), so a SIGKILL, an OOM kill, or a hard
crash in one shard cannot corrupt the supervisor or any sibling — the
shard's spool simply stops growing at its last durable checkpoint, and
the retry relaunches ``run_shard(resume=True)`` which continues from
exactly that record.  Liveness is judged two ways: the subprocess exit
code (a dead shard), and a *heartbeat* read from the shard's checkpoint
sidecar (a hung shard: alive but not committing records).  Retries use
bounded exponential backoff; a shard that exhausts its budget is marked
failed with its partial spool preserved, while the remaining shards run
to completion — partial data is never discarded.

The supervisor is deliberately single-threaded: one poll loop owns all
state, so there are no races between exit detection, heartbeat checks,
and relaunches.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.context
import multiprocessing.process
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.obs.telemetry import get_telemetry
from repro.pipeline.shard import (
    run_shard,
    shard_complete,
    shard_progress,
)
from repro.testbed.campaign import CampaignConfig


@dataclass
class OrchestratorSettings:
    """Supervision knobs (simulation knobs live on the campaign config)."""

    #: relaunches allowed per shard after its first attempt
    max_retries: int = 2
    #: seconds without checkpoint progress before a live shard is
    #: declared hung and killed
    heartbeat_timeout: float = 60.0
    #: exponential backoff: ``base * 2**(retry-1)`` seconds, capped
    backoff_base: float = 0.25
    backoff_max: float = 5.0
    #: supervisor poll interval
    poll_interval: float = 0.05
    #: concurrently running shards (None: all at once)
    max_procs: Optional[int] = None


@dataclass
class ShardStatus:
    """One shard's supervision record."""

    shard: int
    attempts: int = 0
    completed: int = 0
    state: str = "pending"  # pending | running | backoff | done | failed
    reasons: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "attempts": self.attempts,
            "completed": self.completed,
            "state": self.state,
            "reasons": list(self.reasons),
        }


@dataclass
class OrchestrateResult:
    """Outcome of one supervised sharded campaign."""

    statuses: List[ShardStatus]
    retries: int

    @property
    def ok(self) -> bool:
        return all(status.state == "done" for status in self.statuses)

    @property
    def failed_shards(self) -> List[int]:
        return [s.shard for s in self.statuses if s.state == "failed"]

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "retries": self.retries,
            "failed": self.failed_shards,
            "shards": [status.to_dict() for status in self.statuses],
        }


#: ``(event, shard, detail)`` observer for human progress output
LogFn = Callable[[str, int, str], None]


def _shard_entry(
    config: CampaignConfig,
    base: str,
    shards: int,
    shard: int,
    workers: Optional[int],
    sessions_per_proc: Optional[int],
) -> None:
    """Subprocess body: run one shard, resuming from its checkpoint."""
    run_shard(
        config,
        base,
        shards,
        shard,
        workers=workers,
        sessions_per_proc=sessions_per_proc,
        resume=True,
    )


def _context() -> multiprocessing.context.BaseContext:
    """Fork where possible (cheap relaunches), spawn elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")  # pragma: no cover


@dataclass
class _Running:
    process: multiprocessing.process.BaseProcess
    started: float
    last_progress: float
    last_completed: int


def orchestrate(
    config: CampaignConfig,
    base: Union[str, "os.PathLike[str]"],
    shards: int,
    workers: Optional[int] = None,
    sessions_per_proc: Optional[int] = None,
    settings: Optional[OrchestratorSettings] = None,
    log: Optional[LogFn] = None,
) -> OrchestrateResult:
    """Run every shard of a campaign under crash-retry supervision.

    Returns once all shards are done or have exhausted their retry
    budget; check ``result.ok`` (the CLI maps failures to exit 1).
    Merging is a separate, explicit step — a failed orchestration keeps
    every completed shard's spool on disk for later resumption.
    """
    settings = settings or OrchestratorSettings()
    base = str(base)
    statuses = [ShardStatus(shard=shard) for shard in range(shards)]
    ctx = _context()
    pending: List[int] = list(range(shards))
    backoff: List[Tuple[float, int]] = []  # (restart_at, shard)
    running: Dict[int, _Running] = {}
    retries = 0
    limit = settings.max_procs or shards

    def emit(event: str, shard: int, detail: str = "") -> None:
        if log is not None:
            log(event, shard, detail)

    tel = get_telemetry()
    with tel.span(
        "campaign.orchestrate", shards=shards, n=config.n_instances
    ) as span:
        while pending or backoff or running:
            now = time.monotonic()
            # Backoff timers that have expired rejoin the launch queue.
            due = [shard for at, shard in backoff if at <= now]
            if due:
                backoff[:] = [(at, s) for at, s in backoff if s not in due]
                pending.extend(due)
            # Launch while there is queue and process budget.
            while pending and len(running) < limit:
                shard = pending.pop(0)
                status = statuses[shard]
                status.attempts += 1
                status.state = "running"
                process = ctx.Process(
                    target=_shard_entry,
                    args=(config, base, shards, shard,
                          workers, sessions_per_proc),
                )
                process.start()
                span.count("launches")
                emit("launch", shard, f"attempt {status.attempts}")
                running[shard] = _Running(
                    process=process,
                    started=now,
                    last_progress=now,
                    last_completed=shard_progress(base, shards, shard),
                )

            progressed = False
            for shard in list(running):
                state = running[shard]
                status = statuses[shard]
                exitcode = state.process.exitcode
                if exitcode is None:
                    completed = shard_progress(base, shards, shard)
                    if completed > state.last_completed:
                        state.last_completed = completed
                        state.last_progress = now
                        status.completed = completed
                    elif now - state.last_progress > settings.heartbeat_timeout:
                        # Alive but not committing records: a hung shard.
                        pid = state.process.pid
                        if pid is not None:
                            os.kill(pid, signal.SIGKILL)
                        state.process.join()
                        del running[shard]
                        progressed = True
                        _record_failure(status, "heartbeat timeout", emit)
                        retries += _schedule_retry(
                            status, settings, backoff, now,
                        )
                    continue
                # The subprocess has exited.
                state.process.join()
                del running[shard]
                progressed = True
                status.completed = shard_progress(base, shards, shard)
                if exitcode == 0 and shard_complete(base, shards, shard):
                    status.state = "done"
                    span.count("completed")
                    emit("done", shard,
                         f"{status.completed} records")
                    continue
                reason = (f"exit code {exitcode}" if exitcode != 0
                          else "exited without completing its spool")
                _record_failure(status, reason, emit)
                retries += _schedule_retry(status, settings, backoff, now)

            if not progressed:
                time.sleep(settings.poll_interval)
        span.set("retries", retries)
        span.set("ok", all(s.state == "done" for s in statuses))
    return OrchestrateResult(statuses=statuses, retries=retries)


def _record_failure(
    status: ShardStatus,
    reason: str,
    emit: Callable[[str, int, str], None],
) -> None:
    status.reasons.append(reason)
    tel = get_telemetry()
    tel.event("shard.dead", shard=status.shard, reason=reason,
              attempts=status.attempts)
    emit("dead", status.shard, reason)


def _schedule_retry(
    status: ShardStatus,
    settings: OrchestratorSettings,
    backoff: List[Tuple[float, int]],
    now: float,
) -> int:
    """Queue a relaunch (returns 1) or mark the shard failed (0)."""
    tel = get_telemetry()
    retry = status.attempts  # retries already spent == launches so far
    if retry > settings.max_retries:
        status.state = "failed"
        tel.event("shard.failed", shard=status.shard,
                  attempts=status.attempts)
        return 0
    delay = min(settings.backoff_max,
                settings.backoff_base * (2 ** (retry - 1)))
    status.state = "backoff"
    tel.count("orchestrator.retries")
    tel.event("shard.retry", shard=status.shard, attempt=status.attempts,
              delay=delay)
    backoff.append((now + delay, status.shard))
    return 1

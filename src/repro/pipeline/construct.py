"""Construct stages: records -> labelled instances -> constructed features.

``InstanceStage`` performs the canonical SessionRecord -> Instance
conversion (one shared code path with ``Dataset.from_records``).
``ConstructStage`` applies a fitted :class:`FeatureConstructor` in
vectorized chunks via ``transform_rows``, so a streaming flow pays the
same numpy prices as the batch path while holding only one chunk.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.core.construction import FeatureConstructor
from repro.core.dataset import Instance
from repro.pipeline.stages import Stage, chunked


class InstanceStage(Stage):
    """Convert :class:`SessionRecord` items into labelled ``Instance``s."""

    name = "instances"
    CONSUMES = (
        "features",
        "app_metrics",
        "mos",
        "severity_label",
        "location_label",
        "exact_label",
        "meta",
    )
    PRODUCES = ("features", "labels", "mos", "app_metrics", "meta")

    def process(self, stream: Iterator[object]) -> Iterator[object]:
        for record in stream:
            yield Instance.from_record(record)


class ConstructStage(Stage):
    """Vectorized feature construction over a stream of instances.

    Each chunk goes through :meth:`FeatureConstructor.transform_rows`
    once; the resulting rows are re-attached to their instances.  Within
    a chunk, rows share the chunk's feature-name union (missing raw
    features are zero-filled) — the same contract as the batch matrix
    path, and exactly equal to it when the stream is homogeneous.
    """

    name = "construct"
    CONSUMES = ("features", "meta")
    PRODUCES = ("features", "labels", "mos", "app_metrics", "meta")

    def __init__(self, constructor: FeatureConstructor, chunk: int = 256) -> None:
        if not constructor.fitted:
            raise RuntimeError("constructor must be fit before streaming")
        self.constructor = constructor
        self.chunk = chunk

    def process(self, stream: Iterator[object]) -> Iterator[object]:
        for batch in chunked(stream, self.chunk):
            instances: List[Instance] = list(batch)  # type: ignore[arg-type]
            rows = [inst.features for inst in instances]
            durations = [
                float(inst.meta.get("session_s", 0.0) or 0.0) for inst in instances
            ]
            matrix, names = self.constructor.transform_rows(rows, session_s=durations)
            for i, inst in enumerate(instances):
                features = {name: float(matrix[i, j]) for j, name in enumerate(names)}
                yield Instance(
                    features=features,
                    labels=dict(inst.labels),
                    mos=inst.mos,
                    app_metrics=dict(inst.app_metrics),
                    meta=dict(inst.meta),
                )

"""Sharded campaigns: seed-partitioned spools that merge bit-identically.

One campaign's instance space is partitioned into N shards by the
per-instance *seed values* the campaign RNG draws up front
(:func:`repro.testbed.campaign.shard_partition`): shard ``k`` owns every
index whose seed satisfies ``seed % N == k``.  The partition is a pure
function of ``(config.seed, n_instances, shards)``, so independent
processes — or hosts — compute it identically with no coordination.

Each shard spools its records as ordinary ``repro-record-v1`` JSONL with
the same atomic checkpoint sidecar a serial campaign uses, plus a
*shard manifest* sidecar (``repro-shard-manifest-v1``) recording exactly
which absolute campaign indices the spool's lines correspond to, in
order.  That manifest is what makes the merge exact: line ``j`` of shard
``k``'s spool *is* campaign instance ``manifest.indices[j]``, so
:func:`merge_shards` reconstructs the serial record order byte for byte
— every line is copied as raw bytes, never re-parsed or re-serialized.

Crash injection (test hooks): ``REPRO_SHARD_KILL``, ``REPRO_SHARD_FAIL``
and ``REPRO_SHARD_HANG`` each hold ``shard:completed`` pairs
(comma-separated); when a shard's checkpoint counter hits a matching
value the process SIGKILLs itself / raises / sleeps.  The orchestrator's
retry machinery is validated against these — see
:mod:`repro.pipeline.orchestrate` and ``tests/pipeline/test_shard_crash``.
"""

from __future__ import annotations

import heapq
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs.telemetry import get_telemetry
from repro.pipeline.checkpoint import (
    checkpoint_path,
    config_fingerprint,
    durable_write,
    fsync_directory,
    load_checkpoint,
    resume_position,
)
from repro.pipeline.sinks import JsonlSink
from repro.schemas import SHARD_MANIFEST_V1
from repro.testbed.campaign import (
    CampaignConfig,
    ProgressFn,
    campaign_seeds,
    iter_campaign_pairs,
    shard_partition,
)

MANIFEST_FORMAT = SHARD_MANIFEST_V1


class ShardError(ValueError):
    """A shard-layer domain failure (mismatched manifests, incomplete
    spools, foreign configs) — maps to CLI exit code 1."""


class NotShardedError(ShardError):
    """A sharded operation pointed at a spool that was never sharded
    (no manifest sidecar) — maps to CLI exit code 2."""


# ------------------------------------------------------------ manifests


@dataclass(frozen=True)
class ShardManifest:
    """Which campaign indices one shard spool owns, in spool-line order.

    ``indices[j]`` is the absolute campaign index of spool line ``j``;
    the list is ascending (a property of :func:`shard_partition`) and
    the manifests of all N shards partition ``range(n_instances)``.
    """

    config_key: str
    campaign_seed: int
    n_instances: int
    shards: int
    shard: int
    indices: Tuple[int, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": MANIFEST_FORMAT,
            "config_key": self.config_key,
            "campaign_seed": self.campaign_seed,
            "n_instances": self.n_instances,
            "shards": self.shards,
            "shard": self.shard,
            "indices": list(self.indices),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ShardManifest":
        if payload.get("format") != MANIFEST_FORMAT:
            raise ShardError("not a repro shard-manifest payload")
        return cls(
            config_key=str(payload["config_key"]),
            campaign_seed=int(payload["campaign_seed"]),  # type: ignore[arg-type]
            n_instances=int(payload["n_instances"]),  # type: ignore[arg-type]
            shards=int(payload["shards"]),  # type: ignore[arg-type]
            shard=int(payload["shard"]),  # type: ignore[arg-type]
            indices=tuple(int(i) for i in payload["indices"]),  # type: ignore[union-attr]
        )


def manifest_path(spool: Union[str, Path]) -> Path:
    """The manifest sidecar path for a shard spool."""
    spool = Path(spool)
    return spool.with_name(spool.name + ".manifest")


def save_manifest(spool: Union[str, Path], manifest: ShardManifest) -> None:
    """Atomically and durably write the manifest sidecar for ``spool``."""
    durable_write(manifest_path(spool), json.dumps(manifest.to_dict()))


def load_manifest(spool: Union[str, Path]) -> Optional[ShardManifest]:
    """The manifest sidecar contents, or ``None`` when absent/garbled."""
    path = manifest_path(spool)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    try:
        return ShardManifest.from_dict(payload)
    except (ShardError, KeyError, TypeError, ValueError):
        return None


def shard_spool_path(base: Union[str, Path], shard: int, shards: int) -> Path:
    """The spool path of shard ``shard``/``shards`` for campaign ``base``.

    ``campaign.jsonl`` with 4 shards yields
    ``campaign.shard0000-of-0004.jsonl`` ... ``campaign.shard0003-of-0004.jsonl``.
    Zero-padding keeps listings sorted for fleets of up to 10k shards.
    """
    base = Path(base)
    return base.with_name(
        f"{base.stem}.shard{shard:04d}-of-{shards:04d}{base.suffix}"
    )


def plan_shards(config: CampaignConfig, shards: int) -> List[ShardManifest]:
    """The N manifests one campaign partitions into (pure of config)."""
    if shards < 1:
        raise ShardError(f"shards must be >= 1, got {shards}")
    seeds = campaign_seeds(config.seed, config.n_instances)
    key = config_fingerprint(config)
    return [
        ShardManifest(
            config_key=key,
            campaign_seed=config.seed,
            n_instances=config.n_instances,
            shards=shards,
            shard=shard,
            indices=tuple(indices),
        )
        for shard, indices in enumerate(shard_partition(seeds, shards))
    ]


# -------------------------------------------------------- crash injection
#
# Test-only hooks, armed through the environment so they survive into
# shard subprocesses: each variable holds comma-separated
# ``shard:completed`` pairs.  KILL delivers SIGKILL to the shard's own
# process the moment its checkpoint counter reaches the value (the
# checkpoint is already durable — exactly the crash the resume contract
# covers), FAIL raises (a crash with an exit code and a traceback), HANG
# sleeps far past any heartbeat (a live process making no progress).

KILL_ENV = "REPRO_SHARD_KILL"
FAIL_ENV = "REPRO_SHARD_FAIL"
HANG_ENV = "REPRO_SHARD_HANG"

#: how long an injected hang sleeps; orchestrator heartbeats kill it first
_HANG_S = 600.0


def _parse_triggers(raw: str) -> List[Tuple[int, int]]:
    triggers: List[Tuple[int, int]] = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        shard_text, _, completed_text = part.partition(":")
        try:
            triggers.append((int(shard_text), int(completed_text)))
        except ValueError:
            continue  # garbage injection specs never break a real run
    return triggers


def _injected(env: str, shard: int, completed: int) -> bool:
    raw = os.environ.get(env, "")
    if not raw:
        return False
    return (shard, completed) in _parse_triggers(raw)


def _maybe_inject_crash(shard: int, completed: int) -> None:
    if _injected(KILL_ENV, shard, completed):
        os.kill(os.getpid(), signal.SIGKILL)
    if _injected(FAIL_ENV, shard, completed):
        raise RuntimeError(
            f"injected failure: shard {shard} at checkpoint {completed}"
        )
    if _injected(HANG_ENV, shard, completed):
        time.sleep(_HANG_S)


# ------------------------------------------------------------- shard runs


def _count_full_lines(spool: Path) -> int:
    """Newline-terminated lines in ``spool`` (a trailing torn write is
    not a record)."""
    count = 0
    with spool.open("rb") as fh:
        for line in fh:
            if line.endswith(b"\n"):
                count += 1
    return count


def shard_resume_position(spool: Path, manifest: ShardManifest) -> int:
    """Where to restart one shard: completed records, spool reconciled.

    A finished shard (all lines present; sidecar possibly already
    cleared) resumes at its end.  An unfinished spool without a sidecar
    means the crash predates the first checkpoint — restart from zero.
    Everything else defers to :func:`resume_position`, which truncates
    torn or un-checkpointed trailing lines.
    """
    if not spool.exists():
        return 0
    expected = len(manifest.indices)
    if load_checkpoint(spool) is None:
        lines = _count_full_lines(spool)
        if lines == expected:
            return expected
        if lines > expected:
            raise ShardError(
                f"{spool} holds {lines} records but shard "
                f"{manifest.shard}/{manifest.shards} owns {expected}; "
                "refusing to resume a foreign spool"
            )
        spool.unlink()  # crash before the first checkpoint: start over
        return 0
    return resume_position(spool, manifest.config_key)


@dataclass
class ShardResult:
    """Outcome of one shard run."""

    shard: int
    shards: int
    spool: Path
    records: int
    resumed_at: int


def run_shard(
    config: CampaignConfig,
    base: Union[str, Path],
    shards: int,
    shard: int,
    workers: Optional[int] = None,
    sessions_per_proc: Optional[int] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> ShardResult:
    """Simulate one shard of a campaign into its own checkpointed spool.

    Writes the shard manifest first (durably, before any record), then
    streams the shard's instances through a :class:`JsonlSink`.  With
    ``resume=True`` an interrupted spool continues from its checkpoint —
    bit-identical to an uninterrupted run, because every instance is a
    pure function of ``(config, index, instance_seed)`` and the manifest
    pins which instances the spool holds.  The checkpoint sidecar is
    kept even on clean completion: an orchestrator (or a human) must be
    able to re-invoke a finished shard and have it no-op.
    """
    if shards < 1:
        raise ShardError(f"shards must be >= 1, got {shards}")
    if not 0 <= shard < shards:
        raise ShardError(f"shard must be in [0, {shards}), got {shard}")
    manifest = plan_shards(config, shards)[shard]
    spool = shard_spool_path(base, shard, shards)

    existing = load_manifest(spool)
    if existing is not None and existing != manifest:
        raise ShardError(
            f"{spool} belongs to a different campaign or partition "
            f"(config {existing.config_key} shard {existing.shard}/"
            f"{existing.shards}); delete it to start over"
        )
    if spool.exists() and existing is None:
        if resume:
            raise NotShardedError(
                f"{spool} exists but has no shard manifest; it was not "
                "written by a sharded campaign, refusing to resume"
            )
        spool.unlink()
    save_manifest(spool, manifest)

    start = shard_resume_position(spool, manifest) if resume else 0
    expected = len(manifest.indices)
    tel = get_telemetry()
    with tel.span(
        "campaign.shard",
        shard=shard, shards=shards, n=expected, start=start,
    ) as span:
        if start >= expected:
            if not spool.exists():  # a shard can legitimately own nothing
                spool.touch()
            span.set("skipped", True)
            return ShardResult(shard, shards, spool, expected, start)
        seeds = campaign_seeds(config.seed, config.n_instances)
        pairs = [(i, seeds[i]) for i in manifest.indices[start:]]
        sink = JsonlSink(
            spool,
            config_key=manifest.config_key,
            start=start,
            keep_checkpoint=True,
        )
        try:
            for record in iter_campaign_pairs(
                config,
                pairs,
                progress=progress,
                workers=workers,
                sessions_per_proc=sessions_per_proc,
            ):
                sink.consume(record)
                span.count("records")
                _maybe_inject_crash(shard, sink.completed)
            sink.on_complete()
        finally:
            sink.close()
    return ShardResult(shard, shards, spool, expected, start)


# ----------------------------------------------------------------- merge


@dataclass
class MergeResult:
    """Outcome of merging N shard spools back into serial order."""

    out: Path
    shards: int
    records: int
    config_key: str


def load_shard_manifests(
    base: Union[str, Path], shards: int
) -> List[ShardManifest]:
    """The manifests of all N shards of ``base``, cross-validated.

    Raises :class:`ShardError` when any manifest is missing or the set
    is inconsistent (mixed configs, wrong shard counts, indices that do
    not exactly partition the instance space).
    """
    if shards < 1:
        raise ShardError(f"shards must be >= 1, got {shards}")
    manifests: List[ShardManifest] = []
    for shard in range(shards):
        spool = shard_spool_path(base, shard, shards)
        manifest = load_manifest(spool)
        if manifest is None:
            raise NotShardedError(
                f"{spool} has no shard manifest; run shard {shard} first"
            )
        if manifest.shard != shard or manifest.shards != shards:
            raise ShardError(
                f"{spool} claims shard {manifest.shard}/{manifest.shards}, "
                f"expected {shard}/{shards}"
            )
        manifests.append(manifest)
    first = manifests[0]
    for manifest in manifests[1:]:
        if (
            manifest.config_key != first.config_key
            or manifest.campaign_seed != first.campaign_seed
            or manifest.n_instances != first.n_instances
        ):
            raise ShardError(
                "shard manifests disagree about the campaign "
                f"(shard {manifest.shard}: config {manifest.config_key} "
                f"!= {first.config_key})"
            )
    seen: Dict[int, int] = {}
    for manifest in manifests:
        for index in manifest.indices:
            if index in seen:
                raise ShardError(
                    f"instance {index} owned by shards {seen[index]} "
                    f"and {manifest.shard}"
                )
            seen[index] = manifest.shard
    if len(seen) != first.n_instances or (
        seen and (min(seen) != 0 or max(seen) != first.n_instances - 1)
    ):
        raise ShardError(
            f"shard manifests cover {len(seen)} of "
            f"{first.n_instances} instances; the partition is torn"
        )
    return manifests


def _iter_shard_lines(
    spool: Path, manifest: ShardManifest
) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(absolute_index, raw_line)`` pairs from one shard spool."""
    with spool.open("rb") as fh:
        for index, line in zip(manifest.indices, fh):
            yield index, line


def merge_shards(
    base: Union[str, Path],
    shards: int,
    out: Optional[Union[str, Path]] = None,
) -> MergeResult:
    """Merge N completed shard spools into one serial-order spool.

    A k-way streaming merge: every shard's ``(index, line)`` stream is
    ascending in index, so :func:`heapq.merge` reconstructs the exact
    serial record order while holding one line per shard in memory.
    Lines are copied as raw bytes — the merged spool is byte-identical
    to the spool a never-sharded serial campaign writes.  Every shard
    must be complete (spool line count == manifest length); partial
    shards raise :class:`ShardError` and nothing is written.
    """
    base = Path(base)
    target = base if out is None else Path(out)
    manifests = load_shard_manifests(base, shards)
    incomplete: List[str] = []
    for manifest in manifests:
        spool = shard_spool_path(base, manifest.shard, shards)
        lines = _count_full_lines(spool)
        if lines != len(manifest.indices):
            incomplete.append(
                f"shard {manifest.shard}: {lines}/{len(manifest.indices)}"
            )
    if incomplete:
        raise ShardError(
            "cannot merge, incomplete shard spool(s): "
            + "; ".join(incomplete)
        )
    total = manifests[0].n_instances
    tel = get_telemetry()
    with tel.span("campaign.merge", shards=shards, n=total) as span:
        tmp = target.with_name(target.name + ".tmp")
        streams = [
            _iter_shard_lines(shard_spool_path(base, m.shard, shards), m)
            for m in manifests
        ]
        written = 0
        with tmp.open("wb") as fh:
            for _index, line in heapq.merge(*streams):
                fh.write(line)
                written += 1
            fh.flush()
            os.fsync(fh.fileno())
        if written != total:  # pragma: no cover - guarded by count check
            tmp.unlink()
            raise ShardError(
                f"merge produced {written} records, expected {total}"
            )
        os.replace(tmp, target)
        fsync_directory(target.parent)
        span.count("records", written)
    return MergeResult(
        out=target,
        shards=shards,
        records=total,
        config_key=manifests[0].config_key,
    )


def shard_progress(base: Union[str, Path], shards: int, shard: int) -> int:
    """Completed-record count of one shard, read from its sidecars.

    The orchestrator's heartbeat probe: cheap (one small JSON read), and
    monotone while the shard is healthy.  A finished shard whose
    checkpoint equals its manifest length reports the full count even
    after the sidecar would have been cleared.
    """
    spool = shard_spool_path(base, shard, shards)
    checkpoint = load_checkpoint(spool)
    if checkpoint is not None:
        return checkpoint.completed
    manifest = load_manifest(spool)
    if manifest is not None and spool.exists():
        lines = _count_full_lines(spool)
        if lines == len(manifest.indices):
            return lines
    return 0


def shard_complete(base: Union[str, Path], shards: int, shard: int) -> bool:
    """Whether one shard's spool holds every record its manifest owns."""
    spool = shard_spool_path(base, shard, shards)
    manifest = load_manifest(spool)
    if manifest is None or not spool.exists():
        return False
    return _count_full_lines(spool) == len(manifest.indices)


def clear_shard(base: Union[str, Path], shards: int, shard: int) -> None:
    """Remove one shard's spool and sidecars (a fresh-start primitive)."""
    spool = shard_spool_path(base, shard, shards)
    for path in (spool, checkpoint_path(spool), manifest_path(spool)):
        if path.exists():
            path.unlink()

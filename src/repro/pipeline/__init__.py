"""Streaming session pipeline: constant-memory record flow.

The paper's deployment model (Section 6) is an always-on measurement
loop: sessions arrive one at a time, are featurized, diagnosed, and
logged — nothing ever holds a whole campaign in RAM.  This package makes
that the repo's execution model.  Records flow through typed stages as
iterators::

    Source -> Construct -> Diagnose -> Sink

Every stage declares the item fields it ``CONSUMES`` and ``PRODUCES``;
:class:`Pipeline` checks the chain at assembly time and ``repro lint``
rule P401 checks the declarations statically.

Example — spool a campaign to disk while diagnosing it, resumably::

    from repro.pipeline import (
        CampaignSource, DiagnoseStage, JsonlSink, Pipeline,
    )
    from repro.pipeline.checkpoint import config_fingerprint, resume_position

    key = config_fingerprint(config)
    start = resume_position("campaign.jsonl", key)     # 0 on a fresh run
    pipeline = Pipeline(
        CampaignSource(config, start=start),
        JsonlSink("campaign.jsonl", config_key=key, start=start),
        DiagnoseStage(analyzer, chunk=32),
    )
    for diagnosed in pipeline:
        print(diagnosed.report.summary())

The stream is bit-identical to the batch path (``run_campaign`` +
``diagnose_batch``) for the same config — serial or parallel — which the
equivalence tests pin down.
"""

from repro.pipeline.checkpoint import (
    Checkpoint,
    checkpoint_path,
    config_fingerprint,
    durable_write,
    fsync_directory,
    load_checkpoint,
    resume_position,
    save_checkpoint,
)
from repro.pipeline.construct import ConstructStage, InstanceStage
from repro.pipeline.diagnose import Diagnosed, DiagnoseStage
from repro.pipeline.orchestrate import (
    OrchestrateResult,
    OrchestratorSettings,
    ShardStatus,
    orchestrate,
)
from repro.pipeline.pipeline import Pipeline, SchemaError, validate_schema
from repro.pipeline.records import (
    record_from_dict,
    record_from_json,
    record_to_dict,
    record_to_json,
)
from repro.pipeline.shard import (
    MergeResult,
    NotShardedError,
    ShardError,
    ShardManifest,
    ShardResult,
    clear_shard,
    load_manifest,
    load_shard_manifests,
    manifest_path,
    merge_shards,
    plan_shards,
    run_shard,
    save_manifest,
    shard_complete,
    shard_progress,
    shard_resume_position,
    shard_spool_path,
)
from repro.pipeline.sinks import CollectSink, CountSink, DatasetSink, JsonlSink
from repro.pipeline.sources import CampaignSource, IterableSource, JsonlSource
from repro.pipeline.stages import ANY, Sink, Source, Stage, chunked

__all__ = [
    "ANY",
    "CampaignSource",
    "Checkpoint",
    "CollectSink",
    "ConstructStage",
    "CountSink",
    "DatasetSink",
    "Diagnosed",
    "DiagnoseStage",
    "InstanceStage",
    "IterableSource",
    "JsonlSink",
    "JsonlSource",
    "MergeResult",
    "NotShardedError",
    "OrchestrateResult",
    "OrchestratorSettings",
    "Pipeline",
    "SchemaError",
    "ShardError",
    "ShardManifest",
    "ShardResult",
    "ShardStatus",
    "Sink",
    "Source",
    "Stage",
    "checkpoint_path",
    "chunked",
    "clear_shard",
    "config_fingerprint",
    "durable_write",
    "fsync_directory",
    "load_checkpoint",
    "load_manifest",
    "load_shard_manifests",
    "manifest_path",
    "merge_shards",
    "orchestrate",
    "plan_shards",
    "record_from_dict",
    "record_from_json",
    "record_to_dict",
    "record_to_json",
    "resume_position",
    "run_shard",
    "save_checkpoint",
    "save_manifest",
    "shard_complete",
    "shard_progress",
    "shard_resume_position",
    "shard_spool_path",
    "validate_schema",
]

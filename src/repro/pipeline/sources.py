"""Pipeline sources: where session records enter the stream.

``CampaignSource`` is the canonical one — it wraps the testbed campaign
iterators (controlled / real-world / wild, dispatched on the config
type), so records flow straight out of the simulator one at a time,
optionally fanned out over the parallel engine.  ``JsonlSource`` replays
a spool written by :class:`repro.pipeline.sinks.JsonlSink`, which is how
an interrupted or archived campaign re-enters the pipeline.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from repro.pipeline.records import record_from_json
from repro.pipeline.stages import Source
from repro.testbed.campaign import CampaignConfig, iter_campaign
from repro.testbed.realworld import (
    RealWorldConfig,
    WildConfig,
    iter_realworld,
    iter_wild,
)
from repro.testbed.testbed import SessionRecord

#: progress callback: ``(absolute_index, record)``
ProgressFn = Callable[[int, SessionRecord], None]

CampaignLike = Union[CampaignConfig, RealWorldConfig, WildConfig]


class CampaignSource(Source):
    """Stream a testbed campaign, instance by instance.

    The campaign kind follows the config type (``CampaignConfig``,
    ``RealWorldConfig`` or ``WildConfig``).  ``start`` skips the first
    ``start`` instances *without changing any later record* — the
    per-instance seeds are all drawn up front, so this is the resume
    primitive — and ``workers`` fans simulation out over the parallel
    engine (records still arrive in index order, bit-identical to a
    serial run).  ``sessions_per_proc`` interleaves K sessions on one
    shared event loop per process (controlled campaigns only; composes
    with ``workers``, records stay bit-identical).
    """

    name = "campaign"
    CONSUMES = ()
    PRODUCES = (
        "features",
        "app_metrics",
        "mos",
        "severity_label",
        "location_label",
        "exact_label",
        "meta",
    )

    def __init__(
        self,
        config: CampaignLike,
        start: int = 0,
        workers: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        sessions_per_proc: Optional[int] = None,
    ) -> None:
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self.config = config
        self.start = start
        self.workers = workers
        self.progress = progress
        self.sessions_per_proc = sessions_per_proc
        if isinstance(config, CampaignConfig):
            self._iter = iter_campaign
        elif isinstance(config, RealWorldConfig):
            self._iter = iter_realworld
        elif isinstance(config, WildConfig):
            self._iter = iter_wild
        else:
            raise TypeError(
                f"unsupported campaign config type: {type(config).__name__}"
            )
        if sessions_per_proc is not None and self._iter is not iter_campaign:
            raise ValueError(
                "sessions_per_proc applies to controlled campaigns only "
                f"(got {type(config).__name__})"
            )

    def items(self) -> Iterator[SessionRecord]:
        if self._iter is iter_campaign:
            return self._iter(
                self.config,
                progress=self.progress,
                workers=self.workers,
                start=self.start,
                sessions_per_proc=self.sessions_per_proc,
            )
        return self._iter(
            self.config,
            progress=self.progress,
            workers=self.workers,
            start=self.start,
        )


class JsonlSource(Source):
    """Replay session records from a JSONL spool file."""

    name = "jsonl"
    CONSUMES = ()
    PRODUCES = (
        "features",
        "app_metrics",
        "mos",
        "severity_label",
        "location_label",
        "exact_label",
        "meta",
    )

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def items(self) -> Iterator[SessionRecord]:
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield record_from_json(line)


class IterableSource(Source):
    """Adapt any in-memory iterable of items into a pipeline source.

    The escape hatch for tests and ad-hoc composition; it cannot know
    what fields its items carry, so downstream schema checking is
    suspended (``PRODUCES = ("*",)``).
    """

    name = "iterable"
    CONSUMES = ()
    PRODUCES = ("*",)

    def __init__(self, iterable: "object") -> None:
        self.iterable = iterable

    def items(self) -> Iterator[object]:
        return iter(self.iterable)  # type: ignore[call-overload]

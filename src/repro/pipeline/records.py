"""JSON round-tripping of :class:`~repro.testbed.testbed.SessionRecord`.

The spool format is one JSON object per line.  Serialization must be
*exact*: ``json`` preserves floats through ``repr`` round-trips, so a
record written and re-read compares equal field for field — the property
the checkpoint/resume contract and the streaming-equivalence tests rely
on.  ``meta`` values are restricted to JSON scalars, which is all the
simulators ever store there.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.schemas import RECORD_V1
from repro.testbed.testbed import SessionRecord

#: format tag written into every spooled line, so foreign JSONL files
#: fail loudly instead of half-parsing.
RECORD_FORMAT = RECORD_V1


def record_to_dict(record: SessionRecord) -> Dict[str, object]:
    """A JSON-safe dict capturing every field of ``record``."""
    return {
        "format": RECORD_FORMAT,
        "features": dict(record.features),
        "app_metrics": dict(record.app_metrics),
        "mos": record.mos,
        "severity": record.severity,
        "fault_name": record.fault_name,
        "fault_severity": record.fault_severity,
        "fault_location": record.fault_location,
        "fault_intensity": dict(record.fault_intensity),
        "meta": dict(record.meta),
    }


def record_from_dict(payload: Dict[str, object]) -> SessionRecord:
    """Rebuild a :class:`SessionRecord` from :func:`record_to_dict` output."""
    if payload.get("format") != RECORD_FORMAT:
        raise ValueError("not a repro session-record payload")
    return SessionRecord(
        features={str(k): float(v) for k, v in dict(payload["features"]).items()},  # type: ignore[arg-type]
        app_metrics={str(k): float(v) for k, v in dict(payload["app_metrics"]).items()},  # type: ignore[arg-type]
        mos=float(payload["mos"]),  # type: ignore[arg-type]
        severity=str(payload["severity"]),
        fault_name=str(payload["fault_name"]),
        fault_severity=str(payload["fault_severity"]),
        fault_location=str(payload["fault_location"]),
        fault_intensity={str(k): float(v) for k, v in dict(payload["fault_intensity"]).items()},  # type: ignore[arg-type]
        meta=dict(payload["meta"]),  # type: ignore[arg-type]
    )


def record_to_json(record: SessionRecord) -> str:
    """One spool line (no trailing newline)."""
    return json.dumps(record_to_dict(record), separators=(",", ":"))


def record_from_json(line: str) -> SessionRecord:
    return record_from_dict(json.loads(line))

"""The diagnose stage: chunked, vectorized root-cause analysis.

Wraps a fitted :class:`~repro.core.diagnosis.RootCauseAnalyzer` as a
pipeline stage.  Sessions are diagnosed ``chunk`` at a time through the
vectorized ``diagnose_batch`` path, and each session flows onward paired
with its report (``Diagnosed``), so downstream sinks can print, spool,
or score against ground truth without re-joining two streams.

Labels are identical to calling ``analyzer.diagnose`` per session: the
chunking changes peak memory and throughput, never the output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.diagnosis import DiagnosisReport, RootCauseAnalyzer
from repro.pipeline.stages import Stage, chunked


@dataclass
class Diagnosed:
    """One diagnosed session: the input item plus its report."""

    session: object
    report: DiagnosisReport


class DiagnoseStage(Stage):
    """Diagnose every session flowing through, in vectorized chunks."""

    name = "diagnose"
    CONSUMES = ("features", "meta")
    PRODUCES = ("session", "report")

    def __init__(self, analyzer: RootCauseAnalyzer, chunk: int = 64) -> None:
        if not analyzer.fitted:
            raise RuntimeError("analyzer must be fit before streaming")
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.analyzer = analyzer
        self.chunk = chunk

    def process(self, stream: Iterator[object]) -> Iterator[object]:
        for batch in chunked(stream, self.chunk):
            reports = self.analyzer.diagnose_batch(batch)
            for session, report in zip(batch, reports):
                yield Diagnosed(session=session, report=report)

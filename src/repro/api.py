"""The stable, versioned public facade: one definition for wire and library.

Every way into a diagnosis — the ``repro diagnose`` CLI, the ``repro
serve`` HTTP service, a notebook import — goes through this module, so
the JSON wire schema and the library API cannot drift apart: the server
parses request bodies with :meth:`DiagnoseRequest.from_dict`, the CLI
builds the same object from argparse flags, and both hand the result to
:func:`diagnose_records`, which wraps ``RootCauseAnalyzer.diagnose_batch``
and returns a :class:`DiagnoseResponse` whose :meth:`~DiagnoseResponse.to_dict`
*is* the response body.

Schemas are versioned by tag (``repro-diagnose-request-v1`` /
``repro-diagnose-response-v1`` / ``repro-model-info-v1``); a breaking
change mints a ``-v2`` tag rather than mutating ``-v1``.

Records on the wire
-------------------

:meth:`DiagnoseRequest.from_dict` accepts three record shapes, each
normalised to the ``SessionLike`` protocol ``diagnose_batch`` consumes:

* a full ``repro-record-v1`` spool object (what ``JsonlSink`` writes);
* ``{"features": {...}, "meta": {...}}`` — the minimal shape a probe
  uploads (``meta.session_s`` drives flow-duration normalisation);
* a bare ``{feature: value}`` mapping.

Example::

    from repro import api

    analyzer = api.load_analyzer(path="model.json")     # or train=..., dataset=...
    response = api.diagnose_records(analyzer, records)
    print(api.canonical_json(response.to_dict()))
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.dataset import Dataset
from repro.core.diagnosis import DiagnosisReport, RootCauseAnalyzer, SessionLike
from repro.core.vantage import ALL_VPS
from repro.pipeline.records import record_from_dict
from repro.schemas import (
    ANALYZER_V2,
    DIAGNOSE_REQUEST_V1,
    DIAGNOSE_RESPONSE_V1,
    MODEL_INFO_V1,
    RECORD_V1,
)

#: wire-schema tags, re-exported from the central registry
#: (:mod:`repro.schemas`) under their historical facade names
REQUEST_SCHEMA = DIAGNOSE_REQUEST_V1
RESPONSE_SCHEMA = DIAGNOSE_RESPONSE_V1
MODEL_INFO_SCHEMA = MODEL_INFO_V1

__all__ = [
    "ApiError",
    "DiagnoseRequest",
    "DiagnoseResponse",
    "ModelInfo",
    "SessionInput",
    "canonical_json",
    "coerce_session",
    "diagnose_records",
    "diagnose_stream",
    "load_analyzer",
    "model_info",
    "MODEL_INFO_SCHEMA",
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
]


class ApiError(ValueError):
    """A request that violates the wire schema (client error, not a bug)."""


def canonical_json(payload: object) -> str:
    """The one canonical JSON encoding (sorted keys, no whitespace).

    Responses serialised with this function are byte-comparable: the
    served-vs-offline equivalence tests pin
    ``canonical_json(server output) == canonical_json(diagnose_batch output)``.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SessionInput:
    """The minimal wire record: raw features plus optional metadata."""

    features: Dict[str, float]
    meta: Dict[str, object] = field(default_factory=dict)


def coerce_session(obj: object) -> SessionLike:
    """Normalise one wire record to the ``SessionLike`` protocol.

    Accepts a full ``repro-record-v1`` dict, a ``{"features": ..,
    "meta": ..}`` object, a bare feature mapping, or anything already
    carrying a ``features`` attribute.  Raises :class:`ApiError` for
    everything else — per record, so a malformed record can fail its
    request without poisoning a server batch.
    """
    if hasattr(obj, "features"):
        return obj
    if not isinstance(obj, dict):
        raise ApiError(f"record must be an object, got {type(obj).__name__}")
    if obj.get("format") == RECORD_V1:
        try:
            return record_from_dict(obj)
        except (KeyError, TypeError, ValueError) as exc:
            raise ApiError(f"malformed {RECORD_V1} record: {exc}") from exc
    if "features" in obj and isinstance(obj["features"], dict):
        features = obj["features"]
        meta = obj.get("meta", {})
        if not isinstance(meta, dict):
            raise ApiError("record meta must be an object")
        try:
            return SessionInput(
                features={str(k): float(v) for k, v in features.items()},
                meta=dict(meta),
            )
        except (TypeError, ValueError) as exc:
            raise ApiError(f"non-numeric feature value: {exc}") from exc
    try:
        return {str(k): float(v) for k, v in obj.items()}  # bare feature map
    except (TypeError, ValueError) as exc:
        raise ApiError(f"non-numeric feature value: {exc}") from exc


def _session_to_dict(session: SessionLike) -> Dict[str, object]:
    """The wire form of one record (inverse of :func:`coerce_session`)."""
    if hasattr(session, "features"):
        return {
            "features": dict(getattr(session, "features")),
            "meta": dict(getattr(session, "meta", {}) or {}),
        }
    return dict(session)  # type: ignore[call-overload]


@dataclass
class DiagnoseRequest:
    """One diagnosis request: an ordered batch of session records."""

    records: List[SessionLike]

    @classmethod
    def from_dict(cls, payload: object) -> "DiagnoseRequest":
        """Parse and validate a request body (the server's only parser)."""
        if not isinstance(payload, dict):
            raise ApiError("request body must be a JSON object")
        schema = payload.get("schema")
        if schema != REQUEST_SCHEMA:
            raise ApiError(
                f"unsupported request schema {schema!r} (want {REQUEST_SCHEMA!r})"
            )
        records = payload.get("records")
        if not isinstance(records, list):
            raise ApiError("request 'records' must be a list")
        return cls(records=[coerce_session(record) for record in records])

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": REQUEST_SCHEMA,
            "records": [_session_to_dict(record) for record in self.records],
        }


@dataclass(frozen=True)
class ModelInfo:
    """Identity and shape of one servable analyzer version."""

    version: str
    format: str
    vps: Tuple[str, ...]
    features: Dict[str, int]  # task -> number of selected features

    @classmethod
    def from_analyzer(
        cls, analyzer: RootCauseAnalyzer, version: str = "default"
    ) -> "ModelInfo":
        if not analyzer.fitted:
            raise ValueError("analyzer must be fit before describing it")
        return cls(
            version=version,
            format=ANALYZER_V2,
            vps=tuple(analyzer.vps),
            features={task: len(names) for task, names in analyzer.features.items()},
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": MODEL_INFO_SCHEMA,
            "version": self.version,
            "format": self.format,
            "vps": list(self.vps),
            "features": dict(self.features),
        }


@dataclass
class DiagnoseResponse:
    """One diagnosis response: per-record reports plus model identity.

    ``diagnoses`` holds ``DiagnosisReport.to_dict()`` payloads verbatim
    and in request order, so the served bytes are canonically identical
    to the offline ``diagnose_batch`` path.
    """

    diagnoses: List[Dict[str, object]]
    model: ModelInfo

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": RESPONSE_SCHEMA,
            "model": self.model.to_dict(),
            "diagnoses": [dict(entry) for entry in self.diagnoses],
        }

    @classmethod
    def from_reports(
        cls, reports: Sequence[DiagnosisReport], model: ModelInfo
    ) -> "DiagnoseResponse":
        return cls(diagnoses=[report.to_dict() for report in reports], model=model)


# --------------------------------------------------------------- entry points


def load_analyzer(
    path: Optional[Union[str, Path]] = None,
    *,
    train: Optional[Union[str, Path]] = None,
    dataset: Optional[Dataset] = None,
    vps: Sequence[str] = ALL_VPS,
    workers: Optional[int] = None,
) -> RootCauseAnalyzer:
    """One loader for every analyzer provenance.

    Exactly one source wins, checked in this order: ``path`` (a
    ``repro-analyzer-v1/v2`` JSON export), ``dataset`` (an in-memory
    labelled :class:`Dataset` to fit on), ``train`` (a campaign pickle
    to fit on), or — with no argument — the cached controlled campaign.
    ``vps``/``workers`` only apply when fitting.
    """
    given = [name for name, value in
             (("path", path), ("train", train), ("dataset", dataset))
             if value is not None]
    if len(given) > 1:
        raise ValueError(f"pass at most one analyzer source, got {given}")
    if path is not None:
        return RootCauseAnalyzer.load(path)
    if dataset is None:
        if train is not None:
            with Path(train).open("rb") as fh:
                obj = pickle.load(fh)
            if not isinstance(obj, Dataset):
                raise ValueError(f"{train} does not contain a repro Dataset")
            dataset = obj
        else:
            from repro.experiments.common import controlled_dataset

            dataset = controlled_dataset(workers=workers)
    return RootCauseAnalyzer(vps=tuple(vps)).fit(dataset)


def model_info(
    analyzer: RootCauseAnalyzer, version: str = "default"
) -> ModelInfo:
    """The :class:`ModelInfo` describing ``analyzer``."""
    return ModelInfo.from_analyzer(analyzer, version=version)


def diagnose_records(
    analyzer: RootCauseAnalyzer,
    records: Iterable[object],
    *,
    model: Optional[ModelInfo] = None,
) -> DiagnoseResponse:
    """Diagnose a batch of records through the one vectorized path.

    ``records`` may be wire dicts (coerced per :func:`coerce_session`) or
    in-memory record objects.  Output order matches input order, and the
    per-record payloads are exactly ``diagnose_batch``'s reports.
    """
    sessions = [coerce_session(record) for record in records]
    reports = analyzer.diagnose_batch(sessions)
    return DiagnoseResponse.from_reports(
        reports, model or ModelInfo.from_analyzer(analyzer)
    )


def diagnose_stream(
    analyzer: RootCauseAnalyzer,
    records: Iterable[object],
    chunk: int = 64,
) -> Iterator[DiagnosisReport]:
    """Streaming diagnosis: constant memory, one report per record in order."""
    coerced: Iterator[Any] = (coerce_session(record) for record in records)
    return analyzer.diagnose_stream(coerced, chunk=chunk)

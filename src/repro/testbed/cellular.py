"""Cellular testbed: phone -- 3G cell -- RNC -- WAN -- server.

Supports the Section 6.2 extension: "introducing more VPs (e.g., on 3G
RNCs)".  The RNC takes the router's place in the feature namespace
(prefix ``router_``), contributing passive flow metrics plus the bearer
state only an operator can see (RSCP, CQI, HARQ, handovers, cell load).

Cellular-specific conditions are injected directly (no registry):

* ``cell_load``   -- a busy cell (background load share),
* ``weak_signal`` -- low RSCP at the UE,
* plus the standard ``wan_congestion`` / ``mobile_load`` faults, which
  work unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.probes.application import ApplicationProbe
from repro.probes.hardware import HardwareProbe
from repro.probes.link import LinkProbe
from repro.probes.rnc import RncProbe
from repro.probes.tstat import TstatProbe
from repro.simnet.cellular import CellularCell
from repro.simnet.engine import Simulator
from repro.simnet.link import Channel, NetemChannel
from repro.simnet.node import Host, Router, wire
from repro.testbed.devices import MobileDevice, RouterDevice, ServerDevice
from repro.testbed.testbed import SessionRecord
from repro.traffic.apachebench import ApacheBenchLoad
from repro.traffic.ditg import BackgroundTraffic, TrafficMix
from repro.video.catalog import VideoCatalog, VideoProfile
from repro.video.mos import mos_to_severity
from repro.video.server import VideoServer
from repro.video.session import VideoSession

#: condition -> (label location, injector)  -- see apply_condition
CELL_CONDITIONS = ("none", "cell_load", "weak_signal", "wan_congestion", "mobile_load")


@dataclass
class CellularConfig:
    seed: int = 0
    cell_capacity_bps: float = 7.2e6
    base_cell_load_range: Tuple[float, float] = (0.15, 0.45)
    ue_rscp_range: Tuple[float, float] = (-95.0, -70.0)
    warmup_s: float = 3.0


class CellularTestbed:
    """One phone streaming over a simulated 3G cell."""

    def __init__(self, config: Optional[CellularConfig] = None) -> None:
        self.config = config or CellularConfig()
        cfg = self.config
        self.sim = Simulator(seed=cfg.seed)
        sim = self.sim
        self.rng = sim.fork_rng("cellbed")

        self.server = Host(sim, "server")
        self.rnc = Router(sim, "router", bridge_rate_bps=100e6)
        self.phone = Host(sim, "phone")
        self.wired_client = Host(sim, "wired")

        # Core/WAN between server and RNC (operator backhaul + internet).
        self.wan_down = NetemChannel(
            sim, "wan.down", "mobile",
            rate_bps=30e6, delay=0.025, jitter=0.008, loss=0.002,
        )
        self.wan_up = NetemChannel(
            sim, "wan.up", "mobile",
            rate_bps=30e6, delay=0.025, jitter=0.008, loss=0.002,
        )
        wire(sim, self.server, "eth0", self.rnc, "wan0", self.wan_down, self.wan_up)
        self.eth_down = Channel(sim, "eth.down", 100e6, delay=0.0002)
        self.eth_up = Channel(sim, "eth.up", 100e6, delay=0.0002)
        wire(sim, self.rnc, "eth0", self.wired_client, "eth0",
             self.eth_down, self.eth_up)

        # The cell.
        self.cell = CellularCell(
            sim,
            capacity_bps=cfg.cell_capacity_bps,
            background_load=self.rng.uniform(*cfg.base_cell_load_range),
        )
        rnc_cell_if = self.rnc.add_interface("cell0")
        phone_if = self.phone.add_interface("cell0")
        self.cell.attach_rnc(rnc_cell_if)
        self.ue = self.cell.add_ue(
            "phone", phone_if, base_rscp=self.rng.uniform(*cfg.ue_rscp_range)
        )

        self.server.set_default_route(self.server.interfaces["eth0"])
        self.rnc.add_route("server", self.rnc.interfaces["wan0"])
        self.rnc.add_route("phone", rnc_cell_if)
        self.rnc.add_route("wired", self.rnc.interfaces["eth0"])
        self.phone.set_default_route(phone_if)
        self.wired_client.set_default_route(self.wired_client.interfaces["eth0"])

        self.video_server = VideoServer(sim, self.server, mode="youtube")
        self.phone_device = MobileDevice(sim, self.phone)
        self.rnc_device = RouterDevice(sim, self.rnc)
        self.server_device = ServerDevice(sim, self.video_server)
        self.ab_load = ApacheBenchLoad(
            sim, self.video_server, base_load=self.rng.uniform(0.05, 0.4)
        )
        self.background = BackgroundTraffic(
            sim, self.server, self.wired_client, self.phone,
            mix=TrafficMix(intensity=self.rng.uniform(0.5, 1.5),
                           phone_apps=False),
        )

    # -- condition injection --------------------------------------------------

    def apply_condition(self, condition: str, severity: str,
                        rng: random.Random) -> Dict[str, float]:
        """Inject one cellular-world problem; returns its intensity."""
        if condition == "none":
            return {}
        if condition == "cell_load":
            load = rng.uniform(0.6, 0.8) if severity == "mild" else rng.uniform(0.85, 0.97)
            self.cell.set_background_load(load)
            return {"cell_load": load}
        if condition == "weak_signal":
            rscp = rng.uniform(-108, -103) if severity == "mild" else rng.uniform(-116, -109)
            self.ue.base_rscp = rscp
            # Poor coverage area: neighbour cells are no better, so a
            # handover cannot escape the condition.
            self.cell.handover_rscp_range = (rscp - 2.0, rscp + 4.0)
            return {"rscp": rscp}
        if condition == "wan_congestion":
            from repro.faults.congestion import WanCongestion

            fault = WanCongestion(severity, rng)
            fault.apply(self)
            self._fault = fault
            return dict(fault.intensity)
        if condition == "mobile_load":
            from repro.faults.load import MobileLoad

            fault = MobileLoad(severity, rng)
            fault.apply(self)
            self._fault = fault
            return dict(fault.intensity)
        raise ValueError(f"unknown cellular condition {condition!r}")

    def clear_condition(self) -> None:
        fault = getattr(self, "_fault", None)
        if fault is not None:
            fault.clear(self)
            self._fault = None

    #: location labels for the cellular conditions
    CONDITION_LOCATION = {
        "cell_load": "lan",     # the access segment
        "weak_signal": "lan",
        "wan_congestion": "wan",
        "mobile_load": "mobile",
    }

    # -- session ------------------------------------------------------------

    def run_video_session(
        self,
        profile: VideoProfile,
        condition: str = "none",
        severity: str = "mild",
        rng: Optional[random.Random] = None,
    ) -> SessionRecord:
        rng = rng or self.rng
        sim = self.sim
        self.background.start()
        self.ab_load.start()
        sim.run(until=sim.now + self.config.warmup_s)
        intensity = self.apply_condition(condition, severity, rng)
        sim.run(until=sim.now + 1.0)

        self.phone_device.new_session(profile)
        tstat_mobile = TstatProbe(sim, "tstat.mobile")
        tstat_mobile.attach(self.phone.interfaces["cell0"])
        tstat_rnc = TstatProbe(sim, "tstat.rnc")
        tstat_rnc.attach(self.rnc.interfaces["wan0"])
        tstat_server = TstatProbe(sim, "tstat.server")
        tstat_server.attach(self.server.interfaces["eth0"])
        hw = {
            "mobile": HardwareProbe(sim, self.phone_device.cpu_utilization,
                                    self.phone_device.free_memory),
            "router": HardwareProbe(sim, self.rnc_device.cpu_utilization,
                                    self.rnc_device.free_memory),
            "server": HardwareProbe(sim, self.server_device.cpu_utilization,
                                    self.server_device.free_memory),
        }
        # The phone sees its own radio state; the RNC sees the full bearer.
        radio_phone = RncProbe(sim, self.ue)
        radio_rnc = RncProbe(sim, self.ue)
        link_mobile = LinkProbe(sim, self.phone.interfaces["cell0"])
        link_server = LinkProbe(sim, self.server.interfaces["eth0"])
        for probe in (*hw.values(), radio_phone, radio_rnc, link_mobile,
                      link_server):
            probe.start()

        session = VideoSession(
            sim, self.phone, self.video_server, profile,
            decode_speed_fn=self.phone_device.decode_speed,
            recv_capacity_fn=self.phone_device.recv_capacity,
        )
        session.start()
        deadline = sim.now + session.hard_timeout_s + 10.0
        while not session.finished and sim.now < deadline:
            sim.run(until=min(deadline, sim.now + 1.0))

        features: Dict[str, float] = {}

        def add(prefix: str, metrics: Dict[str, float]) -> None:
            for key, value in metrics.items():
                features[f"{prefix}_{key}"] = float(value)

        flow = session.flow_key
        add("mobile_tcp", tstat_mobile.metrics_for(flow))
        add("router_tcp", tstat_rnc.metrics_for(flow))
        add("server_tcp", tstat_server.metrics_for(flow))
        for vp, probe in hw.items():
            add(f"{vp}_hw", probe.stop())
        phone_radio = radio_phone.stop()
        phone_radio.pop("cell_load", None)  # the phone cannot see cell state
        add("mobile_radio", phone_radio)
        add("router_radio", radio_rnc.stop())
        add("mobile_link", link_mobile.stop())
        add("server_link", link_server.stop())
        for probe in (tstat_mobile, tstat_rnc, tstat_server):
            probe.detach()

        app_metrics = ApplicationProbe().collect(session)
        mos = session.mos().mos
        sev = mos_to_severity(mos)
        self.phone_device.end_session()
        self.clear_condition()

        good = sev == "good" or condition == "none"
        location = self.CONDITION_LOCATION.get(condition, "")
        return SessionRecord(
            features=features,
            app_metrics=app_metrics,
            mos=mos,
            severity=sev,
            fault_name=condition if condition != "none" else "none",
            fault_severity=severity if condition != "none" else "",
            fault_location=location,
            fault_intensity=intensity,
            meta={
                "video_id": profile.video_id,
                "bitrate_bps": profile.bitrate_bps,
                "duration_s": profile.duration_s,
                "wan_profile": "cellular",
                "server_mode": "youtube",
                "seed": self.config.seed,
                "session_s": session.duration,
                "true_cpu": features.get("mobile_hw_cpu_avg", 0.0),
                "true_rssi": features.get("mobile_radio_rscp_avg", 0.0),
            },
        )

    def shutdown(self) -> None:
        self.background.stop()
        self.ab_load.stop()


def run_cellular_campaign(
    n_instances: int = 120,
    seed: int = 31337,
    healthy_fraction: float = 0.45,
    progress: Optional[Callable[[int, SessionRecord], None]] = None,
) -> List[SessionRecord]:
    """A labelled campaign over the cellular testbed."""
    rng = random.Random(seed)
    catalog = VideoCatalog(size=100, duration_range=(18.0, 45.0),
                           seed=seed ^ 0x5EED)
    records: List[SessionRecord] = []
    conditions = [c for c in CELL_CONDITIONS if c != "none"]
    for index in range(n_instances):
        instance_seed = rng.randrange(2**31)
        scenario_rng = random.Random(instance_seed)
        bed = CellularTestbed(CellularConfig(seed=instance_seed))
        condition = "none"
        severity = "mild"
        if scenario_rng.random() >= healthy_fraction:
            condition = scenario_rng.choice(conditions)
            severity = "mild" if scenario_rng.random() < 0.5 else "severe"
        record = bed.run_video_session(
            catalog.pick(scenario_rng), condition=condition,
            severity=severity, rng=scenario_rng,
        )
        record.meta["instance_index"] = index
        bed.shutdown()
        records.append(record)
        if progress is not None:
            progress(index, record)
    return records

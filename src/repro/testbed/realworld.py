"""Real-world deployments (Section 6).

Two campaign generators mirror the paper's protocol:

* :func:`run_realworld_campaign` (Section 6.1) -- a *corporate WiFi*
  environment with induced faults: noisier background, more clients'
  worth of traffic variance, user mobility (RSSI wander), and a 3:1
  YouTube:private-server mix.  Labels are known because faults are induced.
* :func:`run_wild_campaign` (Section 6.2) -- fully uncontrolled usage over
  3G and WiFi: faults occur *naturally* (drawn from an occurrence model the
  operator cannot see), most sessions ride mobile networks where the router
  VP is unavailable, and only good/problematic ground truth exists.

Both are evaluated with the model trained on the controlled campaign,
which is the paper's central robustness claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.faults.base import make_fault
from repro.testbed.campaign import _catalog, campaign_seeds, iter_instances
from repro.testbed.testbed import SessionRecord, Testbed, TestbedConfig
from repro.traffic.ditg import TrafficMix
from repro.video.catalog import VideoCatalog


@dataclass
class RealWorldConfig:
    """Section 6.1: induced faults on a real (busy) wireless network."""

    n_instances: int = 300
    seed: int = 1337
    healthy_fraction: float = 0.6
    mild_fraction: float = 0.55
    #: the five faults induced in Section 6.1
    faults: Sequence[str] = (
        "lan_congestion",
        "wan_congestion",
        "mobile_load",
        "low_rssi",
        "wifi_interference",
    )
    youtube_fraction: float = 0.75
    catalog_size: int = 100
    video_duration_range: Tuple[float, float] = (18.0, 45.0)
    mobility: bool = True


@dataclass
class WildConfig:
    """Section 6.2: one month in the wild, 3G + WiFi, no induced faults."""

    n_instances: int = 300
    seed: int = 2718
    #: empirical share of sessions streamed over cellular (majority, per
    #: the paper) -- these lack the router VP.
    cellular_fraction: float = 0.7
    youtube_fraction: float = 0.75
    #: natural fault occurrence: most sessions are fine; problems skew
    #: towards the local network, as the paper's Table 5 finds.
    fault_probability: float = 0.2
    fault_weights: Dict[str, float] = field(
        default_factory=lambda: {
            "lan_congestion": 0.3,
            "lan_shaping": 0.12,
            "wan_congestion": 0.18,
            "wan_shaping": 0.1,
            "mobile_load": 0.17,
            "low_rssi": 0.06,
            "wifi_interference": 0.07,
        }
    )
    mild_fraction: float = 0.65
    catalog_size: int = 100
    video_duration_range: Tuple[float, float] = (18.0, 45.0)


def _apply_mobility(testbed: Testbed, rng: random.Random) -> None:
    """Random-walk the phone's base RSSI (the user carries the phone)."""

    def wander() -> None:
        station = testbed.phone_station
        station.base_rssi = min(
            -40.0, max(-85.0, station.base_rssi + rng.gauss(0.0, 1.5))
        )
        testbed.sim.schedule(2.0, wander)

    testbed.sim.schedule(2.0, wander)


def _realworld_catalog(config: Union[RealWorldConfig, WildConfig]) -> VideoCatalog:
    return _catalog(
        config.catalog_size,
        tuple(config.video_duration_range),
        0.5,
        config.seed ^ 0x5EED,
    )


def _realworld_instance(
    config: RealWorldConfig, index: int, instance_seed: int
) -> SessionRecord:
    """One induced-fault corporate-WiFi session (pure of its arguments)."""
    catalog = _realworld_catalog(config)
    scenario_rng = random.Random(instance_seed)
    is_youtube = scenario_rng.random() < config.youtube_fraction
    # Corporate WiFi: more contention and variance than the lab.
    mix = TrafficMix(intensity=scenario_rng.uniform(0.8, 2.2))
    testbed = Testbed(
        TestbedConfig(
            seed=instance_seed,
            wan_profile="dsl",
            server_mode="youtube" if is_youtube else "apache",
            phone_rssi_range=(-70.0, -45.0),
            background_intensity_range=(0.8, 2.2),
            traffic_mix=mix,
        )
    )
    if config.mobility:
        _apply_mobility(testbed, scenario_rng)
    profile = catalog.pick(scenario_rng)
    fault = None
    if scenario_rng.random() >= config.healthy_fraction:
        name = scenario_rng.choice(list(config.faults))
        severity = (
            "mild" if scenario_rng.random() < config.mild_fraction else "severe"
        )
        fault = make_fault(name, severity, scenario_rng)
    record = testbed.run_video_session(profile, fault=fault)
    record.meta["instance_index"] = index
    record.meta["environment"] = "realworld-induced"
    record.meta["service"] = "youtube" if is_youtube else "private"
    testbed.shutdown()
    return record


def iter_realworld(
    config: RealWorldConfig,
    progress: Optional[Callable[[int, SessionRecord], None]] = None,
    workers: Optional[int] = None,
    start: int = 0,
) -> Iterator[SessionRecord]:
    seeds = campaign_seeds(config.seed, config.n_instances)
    yield from iter_instances(
        _realworld_instance,
        config,
        seeds,
        progress=progress,
        workers=workers,
        start=start,
    )


def run_realworld_campaign(
    config: Optional[RealWorldConfig] = None,
    progress: Optional[Callable[[int, SessionRecord], None]] = None,
    workers: Optional[int] = None,
) -> List[SessionRecord]:
    return list(
        iter_realworld(config or RealWorldConfig(), progress=progress, workers=workers)
    )


def _wild_instance(config: WildConfig, index: int, instance_seed: int) -> SessionRecord:
    """One uncontrolled 3G/WiFi session (pure of its arguments)."""
    catalog = _realworld_catalog(config)
    fault_names = list(config.fault_weights)
    weights = [config.fault_weights[n] for n in fault_names]
    scenario_rng = random.Random(instance_seed)
    cellular = scenario_rng.random() < config.cellular_fraction
    is_youtube = scenario_rng.random() < config.youtube_fraction
    testbed = Testbed(
        TestbedConfig(
            seed=instance_seed,
            wan_profile="mobile" if cellular else "dsl",
            server_mode="youtube" if is_youtube else "apache",
            phone_rssi_range=(-75.0, -45.0),
            background_intensity_range=(0.5, 2.5),
        )
    )
    if cellular:
        # On a cellular path the WiFi leg of the shared topology merely
        # stands in for the radio bearer: keep it clean and model the
        # access variability on the WAN side instead.  Table 3 gives
        # the cellular loss as 1.4 +/- 1%: draw each session's link
        # quality from that band rather than pinning the mean, so
        # good-coverage sessions exist.
        testbed.phone_station.base_rssi = -50.0
        loss = scenario_rng.uniform(0.002, 0.020)
        testbed.wan_down.set_impairments(loss=loss)
        testbed.wan_up.set_impairments(loss=loss * 0.3)
        # 2015-era mobile players default to SD over cellular data.
        profile = catalog.pick_sd(scenario_rng)
    else:
        _apply_mobility(testbed, scenario_rng)
        profile = catalog.pick(scenario_rng)
    fault = None
    if scenario_rng.random() < config.fault_probability:
        name = scenario_rng.choices(fault_names, weights=weights, k=1)[0]
        severity = (
            "mild" if scenario_rng.random() < config.mild_fraction else "severe"
        )
        fault = make_fault(name, severity, scenario_rng)
    record = testbed.run_video_session(profile, fault=fault)
    record.meta["instance_index"] = index
    record.meta["environment"] = "wild"
    record.meta["network"] = "3g" if cellular else "wifi"
    record.meta["service"] = "youtube" if is_youtube else "private"
    if cellular:
        # No home router on a cellular path: the router VP is absent.
        for name in [k for k in record.features if k.startswith("router_")]:
            record.features[name] = 0.0
        record.meta["router_vp_available"] = False
    else:
        record.meta["router_vp_available"] = True
    testbed.shutdown()
    return record


def iter_wild(
    config: WildConfig,
    progress: Optional[Callable[[int, SessionRecord], None]] = None,
    workers: Optional[int] = None,
    start: int = 0,
) -> Iterator[SessionRecord]:
    seeds = campaign_seeds(config.seed, config.n_instances)
    yield from iter_instances(
        _wild_instance,
        config,
        seeds,
        progress=progress,
        workers=workers,
        start=start,
    )


def run_wild_campaign(
    config: Optional[WildConfig] = None,
    progress: Optional[Callable[[int, SessionRecord], None]] = None,
    workers: Optional[int] = None,
) -> List[SessionRecord]:
    return list(
        iter_wild(config or WildConfig(), progress=progress, workers=workers)
    )

"""The simulated testbed (Figure 2) and instrumented session runner.

Topology::

    server ===WAN (netem DSL/mobile)=== router/AP ---WiFi--- phone
                                          |
                                          +----Ethernet---- wired client

All three instrumented devices carry the probe stack of Section 3.1; the
wired client exists to generate congestion and background traffic, exactly
as in the paper's setup.  :meth:`Testbed.run_video_session` streams one
video under an optional fault and returns a :class:`SessionRecord` with
the full per-VP feature set and the MOS-based ground truth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.faults.base import Fault
from repro.obs.telemetry import get_telemetry
from repro.probes.application import ApplicationProbe
from repro.probes.hardware import HardwareProbe
from repro.probes.link import LinkProbe
from repro.probes.radio import RadioProbe
from repro.probes.tstat import FlowKey, TstatProbe
from repro.simnet.engine import EventLoop, SessionContext, Simulator
from repro.simnet.link import Channel, NetemChannel
from repro.simnet.node import Host, Router, wire
from repro.simnet.packet import pool_stats
from repro.simnet.rng import RngBlockAllocator, resolve_rng_mode
from repro.simnet.wireless import WifiMedium
from repro.testbed.devices import MobileDevice, RouterDevice, ServerDevice
from repro.traffic.apachebench import ApacheBenchLoad
from repro.traffic.ditg import BackgroundTraffic, TrafficMix
from repro.video.catalog import VideoProfile
from repro.video.mos import mos_to_severity
from repro.video.player import PlayerConfig
from repro.video.server import VideoServer
from repro.video.session import VideoSession

#: asymmetric WAN profiles; the Table 3 values apply to the downlink, the
#: uplink is the matching access technology (ADSL 1 Mbit/s, HSPA uplink).
WAN_PROFILES = {
    "dsl": {
        "down": dict(rate_bps=7.8e6, delay=0.040, jitter=0.015, loss=0.0075),
        "up": dict(rate_bps=1.0e6, delay=0.012, jitter=0.005, loss=0.002),
    },
    "mobile": {
        "down": dict(rate_bps=5.22e6, delay=0.080, jitter=0.025, loss=0.014),
        "up": dict(rate_bps=1.5e6, delay=0.030, jitter=0.010, loss=0.004),
    },
}


@dataclass
class TestbedConfig:
    """Knobs of one testbed instance."""

    seed: int = 0
    wan_profile: str = "dsl"
    server_mode: str = "apache"  # or "youtube"
    bridge_rate_bps: float = 25e6
    ethernet_rate_bps: float = 100e6
    phone_rssi_range: Tuple[float, float] = (-62.0, -42.0)
    server_base_load_range: Tuple[float, float] = (0.05, 0.4)
    background_intensity_range: Tuple[float, float] = (0.6, 1.6)
    warmup_s: float = 3.0
    traffic_mix: Optional[TrafficMix] = None
    player_config: Optional[PlayerConfig] = None
    #: keep raw per-packet traces on the tstat probes (``probe.trace``).
    #: Off by default: probes are streaming accumulators, and retention
    #: makes a session's memory proportional to its packet count.
    retain_trace: bool = False


@dataclass
class SessionRecord:
    """One labelled instance: features + ground truth + metadata."""

    features: Dict[str, float]
    app_metrics: Dict[str, float]
    mos: float
    severity: str  # good / mild / severe, from the MOS
    fault_name: str  # "none" for healthy scenarios
    fault_severity: str  # injected intent: "", "mild", "severe"
    fault_location: str  # "", "mobile", "lan", "wan"
    fault_intensity: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def exact_label(self) -> str:
        """Fault type + MOS severity, 'good' if QoE was unaffected."""
        if self.severity == "good" or self.fault_name == "none":
            return "good"
        return f"{self.fault_name}_{self.severity}"

    @property
    def location_label(self) -> str:
        if self.severity == "good" or self.fault_name == "none":
            return "good"
        return f"{self.fault_location}_{self.severity}"

    @property
    def severity_label(self) -> str:
        return self.severity


@dataclass
class SessionSpec:
    """One session of a batched run: its testbed config and scenario.

    ``kind`` selects the delivery mechanism: ``"video"`` (progressive
    HTTP, the paper's setup) or ``"abr"`` (DASH-style adaptive bitrate).
    """

    config: TestbedConfig
    profile: "VideoProfile"
    fault: Optional[Fault] = None
    kind: str = "video"


class Testbed:
    """One fully-wired instance of the Figure 2 testbed.

    By default a testbed owns a private single-session engine
    (:class:`Simulator`).  For interleaved batches, pass ``sim``: a
    :class:`SessionContext` attached to a shared :class:`EventLoop` —
    all of this testbed's world state (nodes, links, endpoints, probes,
    faults) then hangs off that context, and its events coexist with
    other sessions' on the shared queue.  See :func:`run_sessions`.
    """

    def __init__(
        self,
        config: Optional[TestbedConfig] = None,
        sim: Optional[SessionContext] = None,
    ) -> None:
        self.config = config or TestbedConfig()
        cfg = self.config
        if cfg.wan_profile not in WAN_PROFILES:
            raise ValueError(f"unknown WAN profile {cfg.wan_profile!r}")
        self.sim = sim if sim is not None else Simulator(seed=cfg.seed)
        sim = self.sim
        self.rng = sim.fork_rng("testbed")

        # --- nodes ---
        self.server = Host(sim, "server")
        self.router = Router(
            sim, "router", bridge_rate_bps=cfg.bridge_rate_bps,
            bridge_queue_bytes=256 * 1024,
        )
        self.phone = Host(sim, "phone")
        self.wired_client = Host(sim, "wired")

        # --- WAN link (netem-emulated DSL / mobile backhaul) ---
        profile = WAN_PROFILES[cfg.wan_profile]
        self.wan_down = NetemChannel(
            sim, "wan.down", cfg.wan_profile, **profile["down"]
        )
        self.wan_up = NetemChannel(sim, "wan.up", cfg.wan_profile, **profile["up"])
        wire(sim, self.server, "eth0", self.router, "wan0", self.wan_down, self.wan_up)

        # --- LAN Ethernet to the wired client ---
        self.eth_down = Channel(sim, "eth.down", cfg.ethernet_rate_bps, delay=0.0002)
        self.eth_up = Channel(sim, "eth.up", cfg.ethernet_rate_bps, delay=0.0002)
        wire(sim, self.router, "eth0", self.wired_client, "eth0", self.eth_down, self.eth_up)

        # --- WiFi ---
        self.medium = WifiMedium(sim)
        ap_if = self.router.add_interface("wlan0")
        phone_if = self.phone.add_interface("wlan0")
        self.ap_station = self.medium.add_station(
            "router", ap_if, is_ap=True, base_rssi=-30.0, shadow_sigma=0.5
        )
        base_rssi = self.rng.uniform(*cfg.phone_rssi_range)
        self.phone_station = self.medium.add_station(
            "phone", phone_if, base_rssi=base_rssi
        )

        # --- routing ---
        self.server.set_default_route(self.server.interfaces["eth0"])
        self.router.add_route("server", self.router.interfaces["wan0"])
        self.router.add_route("phone", ap_if)
        self.router.add_route("wired", self.router.interfaces["eth0"])
        self.phone.set_default_route(phone_if)
        self.wired_client.set_default_route(self.wired_client.interfaces["eth0"])

        # --- application-layer services and devices ---
        self.video_server = VideoServer(sim, self.server, mode=cfg.server_mode)
        self.phone_device = MobileDevice(sim, self.phone)
        self.phone_device.station = self.phone_station
        self.router_device = RouterDevice(sim, self.router)
        self.server_device = ServerDevice(sim, self.video_server)

        # --- background variation ---
        self.ab_load = ApacheBenchLoad(
            sim, self.video_server,
            base_load=self.rng.uniform(*cfg.server_base_load_range),
        )
        mix = cfg.traffic_mix or TrafficMix(
            intensity=self.rng.uniform(*cfg.background_intensity_range)
        )
        self.background = BackgroundTraffic(
            sim, self.server, self.wired_client, self.phone, mix=mix
        )

    # ------------------------------------------------------------------ run

    def _probes_up(self) -> Dict[str, object]:
        """Deploy the full Section 3.1 probe stack at all three VPs."""
        sim = self.sim
        retain = self.config.retain_trace
        probes: Dict[str, object] = {}
        tstat_mobile = TstatProbe(sim, "tstat.mobile", retain_trace=retain)
        tstat_mobile.attach(self.phone.interfaces["wlan0"])
        tstat_router = TstatProbe(sim, "tstat.router", retain_trace=retain)
        tstat_router.attach(self.router.interfaces["wan0"])
        tstat_server = TstatProbe(sim, "tstat.server", retain_trace=retain)
        tstat_server.attach(self.server.interfaces["eth0"])
        probes["tstat"] = {
            "mobile": tstat_mobile, "router": tstat_router, "server": tstat_server,
        }
        probes["hw"] = {
            "mobile": HardwareProbe(
                sim, self.phone_device.cpu_utilization, self.phone_device.free_memory
            ),
            "router": HardwareProbe(
                sim, self.router_device.cpu_utilization, self.router_device.free_memory
            ),
            "server": HardwareProbe(
                sim, self.server_device.cpu_utilization, self.server_device.free_memory
            ),
        }
        probes["radio"] = RadioProbe(sim, self.phone_station)
        probes["link"] = {
            "mobile_link": LinkProbe(sim, self.phone.interfaces["wlan0"]),
            "router_linkwan": LinkProbe(sim, self.router.interfaces["wan0"]),
            "router_linklan": LinkProbe(
                sim, self.router.interfaces["wlan0"], bridge=self.router.bridge
            ),
            "server_link": LinkProbe(sim, self.server.interfaces["eth0"]),
        }
        for probe in probes["hw"].values():
            probe.start()
        probes["radio"].start()
        for probe in probes["link"].values():
            probe.start()
        return probes

    def _probes_down(
        self, probes: Dict[str, Any], flow: Optional[FlowKey]
    ) -> Dict[str, float]:
        """Stop every probe and flatten the per-VP feature namespace."""
        features: Dict[str, float] = {}

        def add(prefix: str, metrics: Dict[str, float]) -> None:
            for key, value in metrics.items():
                features[f"{prefix}_{key}"] = float(value)

        for vp, tstat in probes["tstat"].items():
            add(f"{vp}_tcp", tstat.metrics_for(flow))
            tstat.detach()
        for vp, hw in probes["hw"].items():
            add(f"{vp}_hw", hw.stop())
        add("mobile_radio", probes["radio"].stop())
        for prefix, link in probes["link"].items():
            add(prefix, link.stop())
        return features

    def _session_plan(
        self,
        session_factory: Callable[[], Any],
        fault: Optional[Fault],
        deadline_s: float,
    ) -> Generator[float, None, Tuple[Any, Dict[str, float]]]:
        """Warm up, apply the fault, run the session, collect features.

        A *plan generator*: every ``yield t`` means "run my events up to
        absolute time ``t``, then resume me" — exactly the ``run(until=
        ...)`` call sequence the solo runner used to make, so a plan
        driven on a private loop is step-for-step identical to the old
        inline code, and a plan driven interleaved (:meth:`EventLoop.
        drain`) observes the same per-session clocks and draw sequences.

        ``session_factory`` is invoked *after* the fault is applied, so
        faults that alter session setup (e.g. DNS resolution delay) take
        effect.  Returns ``(session, features)`` via ``StopIteration``.

        The ``testbed.session`` span is filed post-hoc (machinery API):
        a lexical span cannot bracket an interleaved generator, and in a
        shared-loop batch its wall time includes co-scheduled sessions'
        event processing.
        """
        cfg = self.config
        sim = self.sim
        self.background.start()
        self.ab_load.start()
        yield sim.now + cfg.warmup_s
        if fault is not None:
            fault.apply(self)
            # Let queues/load settle so the probe window sees the fault state.
            yield sim.now + 1.0
        probes = self._probes_up()
        session = session_factory()
        events_before = sim.events_processed
        # repro: allow[D103] telemetry wall time, never feeds simulation state
        wall0 = time.perf_counter()
        session.start()
        deadline = sim.now + deadline_s
        while not session.finished and sim.now < deadline:
            yield min(deadline, sim.now + 1.0)
        get_telemetry().record_span(
            "testbed.session",
            # repro: allow[D103] telemetry wall time, never feeds simulation state
            time.perf_counter() - wall0,
            attrs={
                "fault": fault.name if fault else "none",
                "events": sim.events_processed - events_before,
                "packets_pooled": pool_stats()["pooled"],
            },
        )
        features = self._probes_down(probes, session.flow_key)
        if fault is not None:
            fault.clear(self)
        return session, features

    def _drive_solo(self, plan: Generator[float, None, Any]) -> Any:
        """Run a plan generator to completion on this testbed's own loop."""
        sim = self.sim
        try:
            while True:
                sim.run(until=next(plan))
        except StopIteration as stop:
            return stop.value

    def _record_plan(
        self, spec: SessionSpec
    ) -> Generator[float, None, SessionRecord]:
        """The full record plan for one :class:`SessionSpec`."""
        if spec.kind == "video":
            return self._video_record_plan(spec.profile, spec.fault)
        if spec.kind == "abr":
            return self._abr_record_plan(spec.profile, spec.fault)
        raise ValueError(f"unknown session kind {spec.kind!r}")

    def run_video_session(
        self,
        profile: VideoProfile,
        fault: Optional[Fault] = None,
    ) -> SessionRecord:
        """Stream one video under ``fault`` and collect everything.

        The background workloads start first (warm-up), the fault is applied,
        the instrumented session runs to completion, then probes are read and
        the fault cleared.  Returns the labelled :class:`SessionRecord`.
        """
        return self._drive_solo(self._video_record_plan(profile, fault))

    def _video_record_plan(
        self,
        profile: VideoProfile,
        fault: Optional[Fault] = None,
    ) -> Generator[float, None, SessionRecord]:
        cfg = self.config
        self.phone_device.new_session(profile)

        def make_session() -> VideoSession:
            return VideoSession(
                self.sim,
                self.phone,
                self.video_server,
                profile,
                player_config=cfg.player_config,
                decode_speed_fn=self.phone_device.decode_speed,
                recv_capacity_fn=self.phone_device.recv_capacity,
                pre_connect_delay_s=getattr(self, "dns_delay_s", 0.0),
            )

        session, features = yield from self._session_plan(
            make_session, fault,
            deadline_s=profile.duration_s * 3 + 100.0,
        )

        app_metrics = ApplicationProbe().collect(session)
        mos = session.mos().mos
        severity = mos_to_severity(mos)
        self.phone_device.end_session()

        record = SessionRecord(
            features=features,
            app_metrics=app_metrics,
            mos=mos,
            severity=severity,
            fault_name=fault.name if fault is not None else "none",
            fault_severity=fault.severity if fault is not None else "",
            fault_location=fault.location if fault is not None else "",
            fault_intensity=dict(fault.intensity) if fault is not None else {},
            meta={
                "video_id": profile.video_id,
                "definition": profile.definition,
                "bitrate_bps": profile.bitrate_bps,
                "duration_s": profile.duration_s,
                "wan_profile": cfg.wan_profile,
                "server_mode": cfg.server_mode,
                "seed": cfg.seed,
                "session_s": session.duration,
                "phone_base_rssi": self.phone_station.base_rssi,
                # Ground truth used only by the Fig. 9 analysis: the
                # phone-side measurements during the session (the fault is
                # already cleared here, so instantaneous reads would lie).
                "true_cpu": features.get("mobile_hw_cpu_avg", 0.0),
                "true_rssi": features.get("mobile_radio_rssi_avg", 0.0),
            },
        )
        return record

    def run_abr_session(
        self,
        profile: VideoProfile,
        fault: Optional[Fault] = None,
    ) -> SessionRecord:
        """Stream one video with DASH-style adaptive bitrate delivery.

        Exercises the paper's claim that the diagnosis pipeline is agnostic
        to the delivery mechanism: probes, labelling and record format are
        identical to :meth:`run_video_session`, only the application-layer
        delivery differs.  Extra ABR statistics land in ``app_metrics``.
        """
        return self._drive_solo(self._abr_record_plan(profile, fault))

    def _abr_record_plan(
        self,
        profile: VideoProfile,
        fault: Optional[Fault] = None,
    ) -> Generator[float, None, SessionRecord]:
        from repro.video.abr import AbrVideoServer, AbrVideoSession

        cfg = self.config
        self.phone_device.new_session(profile)
        abr_server = AbrVideoServer(self.sim, self.server)

        def make_session() -> "AbrVideoSession":
            return AbrVideoSession(
                self.sim,
                self.phone,
                abr_server,
                profile,
                player_config=cfg.player_config,
                decode_speed_fn=self.phone_device.decode_speed,
            )

        session, features = yield from self._session_plan(
            make_session, fault,
            deadline_s=profile.duration_s * 3 + 100.0,
        )
        abr_server.close()

        m = session.player.metrics
        app_metrics = {
            "started": float(m.started),
            "completed": float(m.completed),
            "abandoned": float(m.abandoned),
            "startup_delay": m.startup_delay_s,
            "qoe_stall_count": float(m.qoe_stall_count),
            "qoe_stall_time": m.qoe_stall_s,
            "abr_segments": float(session.abr.segments),
            "abr_switches": float(session.abr.switches),
            "abr_avg_bitrate": session.abr.average_bitrate,
        }
        mos = session.mos().mos
        severity = mos_to_severity(mos)
        self.phone_device.end_session()

        duration = (session.end_time or self.sim.now) - (session.start_time or 0.0)
        return SessionRecord(
            features=features,
            app_metrics=app_metrics,
            mos=mos,
            severity=severity,
            fault_name=fault.name if fault is not None else "none",
            fault_severity=fault.severity if fault is not None else "",
            fault_location=fault.location if fault is not None else "",
            fault_intensity=dict(fault.intensity) if fault is not None else {},
            meta={
                "video_id": profile.video_id,
                "definition": profile.definition,
                "bitrate_bps": profile.bitrate_bps,
                "duration_s": profile.duration_s,
                "wan_profile": cfg.wan_profile,
                "server_mode": "abr",
                "seed": cfg.seed,
                "session_s": duration,
                "phone_base_rssi": self.phone_station.base_rssi,
                "true_cpu": features.get("mobile_hw_cpu_avg", 0.0),
                "true_rssi": features.get("mobile_radio_rssi_avg", 0.0),
            },
        )

    def shutdown(self) -> None:
        self.background.stop()
        self.ab_load.stop()

    # ------------------------------------------------------------ batch API

    @classmethod
    def run_video_sessions(
        cls,
        specs: Sequence[SessionSpec],
        scheduler: Optional[str] = None,
        rng_mode: Optional[str] = None,
    ) -> List[SessionRecord]:
        """Run many progressive-HTTP sessions interleaved on one loop.

        Convenience wrapper over :func:`run_sessions` that forces
        ``kind="video"`` on every spec.
        """
        forced = [
            SessionSpec(s.config, s.profile, s.fault, "video") for s in specs
        ]
        return run_sessions(forced, scheduler=scheduler, rng_mode=rng_mode)

    @classmethod
    def run_abr_sessions(
        cls,
        specs: Sequence[SessionSpec],
        scheduler: Optional[str] = None,
        rng_mode: Optional[str] = None,
    ) -> List[SessionRecord]:
        """Batched ABR equivalent of :meth:`run_video_sessions`."""
        forced = [
            SessionSpec(s.config, s.profile, s.fault, "abr") for s in specs
        ]
        return run_sessions(forced, scheduler=scheduler, rng_mode=rng_mode)


def run_sessions(
    specs: Sequence[SessionSpec],
    scheduler: Optional[str] = None,
    rng_mode: Optional[str] = None,
) -> List[SessionRecord]:
    """Run K independent sessions interleaved on one shared event loop.

    Builds one :class:`EventLoop`, one shared
    :class:`~repro.simnet.rng.RngBlockAllocator` (batched RNG mode) and
    K :class:`SessionContext`/:class:`Testbed` pairs, then drains every
    session's record plan on the shared queue.  Each session's
    :class:`SessionRecord` is byte-identical to running that session
    alone: per-session event order, clock readings and RNG draw
    sequences are all preserved (see :meth:`EventLoop.drain` and the
    DESIGN "Multi-session simnet" section for the argument).

    Records are returned in spec order.
    """
    if not specs:
        return []
    loop = EventLoop(scheduler)
    mode = resolve_rng_mode(rng_mode)
    allocator = RngBlockAllocator() if mode == "batched" else None

    def finalized(
        testbed: Testbed, plan: Generator[float, None, SessionRecord]
    ) -> Generator[float, None, SessionRecord]:
        record = yield from plan
        # Quiesce this session the moment its record is complete: its
        # workload chains (background traffic, server load) would
        # otherwise keep generating events on the shared queue until the
        # slowest co-scheduled session finishes.  The solo path shuts
        # down after its private loop stops running, so post-record
        # activity is unobservable either way.
        testbed.shutdown()
        return record

    plans: List[Tuple[SessionContext, Generator[float, None, SessionRecord]]] = []
    for spec in specs:
        ctx = SessionContext(
            loop, seed=spec.config.seed, rng_mode=mode, allocator=allocator
        )
        testbed = Testbed(spec.config, sim=ctx)
        plans.append((ctx, finalized(testbed, testbed._record_plan(spec))))
    tel = get_telemetry()
    # repro: allow[D103] telemetry wall time, never feeds simulation state
    wall0 = time.perf_counter()
    records = loop.drain(plans)
    tel.record_span(
        "testbed.batch",
        # repro: allow[D103] telemetry wall time, never feeds simulation state
        time.perf_counter() - wall0,
        attrs={"sessions": len(specs), "events": loop.events_processed},
    )
    return records

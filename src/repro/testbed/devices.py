"""Hardware models for the three instrumented devices.

These provide the OS/hardware-layer signals the probes sample (CPU
utilisation, free memory) and the couplings that make faults *cause* QoE
problems on the right code path:

* the phone's decoder speed collapses under CPU stress (``stress`` fault),
  producing stutter/stalls in the player;
* memory pressure shrinks the TCP receive window, throttling the stream;
* the router's CPU tracks its bridge (forwarding) utilisation;
* the server's CPU/memory track the ApacheBench load and active streams.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.simnet.engine import SessionContext
from repro.simnet.node import Host, Router
from repro.simnet.wireless import WifiStation
from repro.video.catalog import VideoProfile
from repro.video.server import VideoServer

RWND_FULL = 262144
RWND_MIN = 12 * 1024
OS_MEMORY = 0.35
PLAYER_MEMORY = 0.08
NET_CPU_COST = 0.04


class MobileDevice:
    """CPU/memory/decoder model of an Android phone."""

    def __init__(self, sim: SessionContext, node: Host, rng: Optional[random.Random] = None) -> None:
        self.sim = sim
        self.node = node
        self.rng = rng or sim.fork_rng(f"device/{node.name}")
        self.station: Optional[WifiStation] = None
        # Ambient state, re-drawn per session (other apps running).
        self.base_cpu = 0.15
        self.base_mem = 0.15
        # Fault-injected stress (the `stress` tool).
        self.stress_cpu = 0.0
        self.stress_mem = 0.0
        # Current playback demand.
        self._decode_requirement = 0.0
        self._streaming = False

    def new_session(self, profile: VideoProfile) -> None:
        """Redraw ambient load and register the decode demand."""
        self.base_cpu = self.rng.uniform(0.05, 0.28)
        self.base_mem = self.rng.uniform(0.08, 0.22)
        mbps = profile.bitrate_bps / 1e6
        self._decode_requirement = 0.12 + 0.11 * mbps
        self._streaming = True

    def end_session(self) -> None:
        self._streaming = False

    # -- couplings ----------------------------------------------------------

    @property
    def decode_requirement(self) -> float:
        return self._decode_requirement

    def decode_speed(self) -> float:
        """Fraction of real-time the decoder sustains under current load.

        OS scheduling makes the CPU actually granted to the decoder
        fluctuate tick-to-tick, so moderate load produces intermittent
        stutter rather than a hard cliff -- the source of *mild* QoE
        degradation under the ``stress`` fault.
        """
        if self._decode_requirement <= 0:
            return 1.0
        available = max(0.0, 1.0 - self.base_cpu - self.stress_cpu - NET_CPU_COST)
        available += self.sim.normal(0.0, 0.08)
        return max(0.0, min(1.0, available / self._decode_requirement))

    def recv_capacity(self) -> int:
        """TCP receive buffer available to the stream (memory pressure)."""
        free = self.free_memory_true()
        if free >= 0.12:
            return RWND_FULL
        scale = (free / 0.12) ** 2
        return max(RWND_MIN, int(RWND_FULL * scale))

    # -- probe-visible state --------------------------------------------------

    def cpu_utilization(self) -> float:
        decode_used = self._decode_requirement * self.decode_speed() if self._streaming else 0.0
        net = NET_CPU_COST if self._streaming else 0.0
        return min(1.0, self.base_cpu + self.stress_cpu + decode_used + net)

    def free_memory_true(self) -> float:
        used = OS_MEMORY + self.base_mem + self.stress_mem
        if self._streaming:
            used += PLAYER_MEMORY
        return max(0.02, 1.0 - used)

    def free_memory(self) -> float:
        return self.free_memory_true()


class RouterDevice:
    """The home router/AP: CPU follows forwarding load."""

    def __init__(self, sim: SessionContext, node: Router) -> None:
        self.sim = sim
        self.node = node
        self._last_time = 0.0
        self._last_busy = 0.0

    def cpu_utilization(self) -> float:
        """Bridge utilisation over the window since the last call."""
        now = self.sim.now
        busy = self.node.bridge.busy_time
        dt = now - self._last_time
        util = (busy - self._last_busy) / dt if dt > 0 else 0.0
        self._last_time = now
        self._last_busy = busy
        return min(1.0, 0.04 + util)

    def free_memory(self) -> float:
        queue_frac = self.node.bridge.queued_bytes / max(
            1, self.node.bridge.queue_limit_bytes
        )
        return max(0.05, 0.6 - 0.3 * queue_frac)


class ServerDevice:
    """The content server: CPU/memory follow the ApacheBench load."""

    def __init__(self, sim: SessionContext, video_server: VideoServer) -> None:
        self.sim = sim
        self.video_server = video_server

    def cpu_utilization(self) -> float:
        return self.video_server.cpu_utilization()

    def free_memory(self) -> float:
        return self.video_server.free_memory()

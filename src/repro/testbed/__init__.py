"""Testbed assembly: the Figure 2 topology, devices and campaigns.

* :mod:`repro.testbed.devices` -- hardware models for the phone (CPU /
  memory / decoder), the router and the server.
* :mod:`repro.testbed.testbed` -- builds the simulated equivalent of the
  paper's testbed (video server -- router/AP -- phone + wired client) and
  runs instrumented video sessions.
* :mod:`repro.testbed.campaign` -- ground-truth collection campaigns
  (Section 4): iterate scenarios, inject faults, label by MOS.
* :mod:`repro.testbed.realworld` -- the two real-world deployments of
  Section 6 (induced faults on a busy WiFi; uncontrolled 3G/WiFi usage).
"""

from repro.testbed.campaign import CampaignConfig, run_campaign
from repro.testbed.devices import MobileDevice, RouterDevice, ServerDevice
from repro.testbed.realworld import RealWorldConfig, WildConfig, run_realworld_campaign, run_wild_campaign
from repro.testbed.testbed import SessionRecord, Testbed, TestbedConfig

__all__ = [
    "CampaignConfig",
    "run_campaign",
    "MobileDevice",
    "RouterDevice",
    "ServerDevice",
    "RealWorldConfig",
    "WildConfig",
    "run_realworld_campaign",
    "run_wild_campaign",
    "SessionRecord",
    "Testbed",
    "TestbedConfig",
]

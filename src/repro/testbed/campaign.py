"""Controlled ground-truth campaigns (Section 4).

A campaign iterates scenarios: a randomly picked video is streamed while a
fault of varied intensity is injected (or none, for healthy baselines),
always on top of randomized background variations.  Every instance runs in
a fresh, independently-seeded testbed so campaigns are reproducible and
embarrassingly parallel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.faults.base import FAULT_NAMES, make_fault
from repro.testbed.testbed import SessionRecord, Testbed, TestbedConfig
from repro.video.catalog import VideoCatalog


@dataclass
class CampaignConfig:
    """Parameters of one data-collection campaign."""

    n_instances: int = 400
    seed: int = 42
    healthy_fraction: float = 0.45
    mild_fraction: float = 0.5
    faults: Sequence[str] = FAULT_NAMES
    wan_profile: str = "dsl"
    #: "apache", "youtube", or "mixed" (per-instance draw).  The paper's
    #: system must be agnostic to "static or adaptive streaming, pacing and
    #: so on" (Section 2); training across delivery mechanisms is what
    #: keeps feature selection away from delivery-pattern features.
    server_mode: str = "mixed"
    catalog_size: int = 100
    #: campaign videos are kept short so a full dataset simulates quickly;
    #: the distributional diversity (SD/HD, bitrates) is what matters.
    video_duration_range: tuple = (18.0, 45.0)
    hd_fraction: float = 0.5
    testbed_overrides: dict = field(default_factory=dict)


def iter_campaign(
    config: CampaignConfig,
    progress: Optional[Callable[[int, SessionRecord], None]] = None,
):
    """Yield one :class:`SessionRecord` per scenario instance."""
    rng = random.Random(config.seed)
    catalog = VideoCatalog(
        size=config.catalog_size,
        duration_range=config.video_duration_range,
        hd_fraction=config.hd_fraction,
        seed=config.seed ^ 0x5EED,
    )
    for index in range(config.n_instances):
        instance_seed = rng.randrange(2**31)
        scenario_rng = random.Random(instance_seed)
        server_mode = config.server_mode
        if server_mode == "mixed":
            server_mode = scenario_rng.choice(("apache", "youtube"))
        testbed = Testbed(
            TestbedConfig(
                seed=instance_seed,
                wan_profile=config.wan_profile,
                server_mode=server_mode,
                **config.testbed_overrides,
            )
        )
        profile = catalog.pick(scenario_rng)
        fault = None
        if scenario_rng.random() >= config.healthy_fraction:
            name = scenario_rng.choice(list(config.faults))
            severity = (
                "mild"
                if scenario_rng.random() < config.mild_fraction
                else "severe"
            )
            fault = make_fault(name, severity, scenario_rng)
        record = testbed.run_video_session(profile, fault=fault)
        record.meta["instance_index"] = index
        record.meta["instance_seed"] = instance_seed
        testbed.shutdown()
        if progress is not None:
            progress(index, record)
        yield record


def run_campaign(
    config: CampaignConfig,
    progress: Optional[Callable[[int, SessionRecord], None]] = None,
) -> List[SessionRecord]:
    """Collect the full campaign into a list of records."""
    return list(iter_campaign(config, progress=progress))

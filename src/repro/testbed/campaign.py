"""Controlled ground-truth campaigns (Section 4) and the parallel engine.

A campaign iterates scenarios: a randomly picked video is streamed while a
fault of varied intensity is injected (or none, for healthy baselines),
always on top of randomized background variations.  Every instance runs in
a fresh, independently-seeded testbed so campaigns are reproducible and
embarrassingly parallel.

The parallel engine exploits exactly that: all per-instance seeds are drawn
up front from the campaign RNG (the same draws the serial loop makes), then
instances are fanned out over a ``multiprocessing`` fork pool in chunks.
Because every instance depends only on ``(config, index, instance_seed)``,
a ``workers=N`` run is bit-identical to the serial one.  The engine falls
back to the serial path when ``workers <= 1``, when the platform lacks
``fork``, or when already inside a worker process.

Telemetry: with tracing enabled (:mod:`repro.obs`), every run emits a
``campaign.run`` span containing one ``campaign.instance`` span per
scenario.  Parallel workers collect each instance into a scratch
registry and ship the export back alongside the record; the parent
absorbs it, so worker spans carry per-worker attribution while counters
aggregate exactly as in a serial run.  Records themselves are never
touched — traced and untraced campaigns are bit-identical.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import random
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.faults.base import FAULT_NAMES, make_fault
from repro.obs.telemetry import Telemetry, get_telemetry, set_telemetry
from repro.testbed.testbed import (
    SessionRecord,
    SessionSpec,
    Testbed,
    TestbedConfig,
    run_sessions,
)
from repro.video.catalog import VideoCatalog

#: one scenario simulator: ``(config, index, instance_seed) -> SessionRecord``.
#: Must be a module-level callable so a fork pool can dispatch it.
InstanceFn = Callable[[object, int, int], SessionRecord]

#: one interleaved batch: ``(config, ((index, seed), ...)) -> [SessionRecord]``.
#: Must be a module-level callable so a fork pool can dispatch it.
BatchFn = Callable[[object, Sequence[Tuple[int, int]]], List[SessionRecord]]

#: progress callback signature shared by all campaign runners.
ProgressFn = Callable[[int, SessionRecord], None]


@dataclass
class CampaignConfig:
    """Parameters of one data-collection campaign."""

    n_instances: int = 400
    seed: int = 42
    healthy_fraction: float = 0.45
    mild_fraction: float = 0.5
    faults: Sequence[str] = FAULT_NAMES
    wan_profile: str = "dsl"
    #: "apache", "youtube", or "mixed" (per-instance draw).  The paper's
    #: system must be agnostic to "static or adaptive streaming, pacing and
    #: so on" (Section 2); training across delivery mechanisms is what
    #: keeps feature selection away from delivery-pattern features.
    server_mode: str = "mixed"
    catalog_size: int = 100
    #: campaign videos are kept short so a full dataset simulates quickly;
    #: the distributional diversity (SD/HD, bitrates) is what matters.
    video_duration_range: Tuple[float, float] = (18.0, 45.0)
    hd_fraction: float = 0.5
    testbed_overrides: Dict[str, object] = field(default_factory=dict)


# --------------------------------------------------------------- the engine


def campaign_seeds(seed: int, n_instances: int) -> List[int]:
    """The per-instance seed sequence a campaign RNG would draw serially."""
    rng = random.Random(seed)
    return [rng.randrange(2**31) for _ in range(n_instances)]


def shard_partition(seeds: Sequence[int], shards: int) -> List[List[int]]:
    """Partition instance indices into ``shards`` buckets by seed value.

    Shard ``k`` owns every index ``i`` with ``seeds[i] % shards == k``:
    a pure function of the campaign's own seed draws, so any process on
    any host that knows ``(config.seed, n_instances, shards)`` computes
    the identical partition.  Every index lands in exactly one shard and
    each shard's index list is ascending — the two invariants the merge
    step's order reconstruction relies on (and the property tests pin).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    buckets: List[List[int]] = [[] for _ in range(shards)]
    for index, instance_seed in enumerate(seeds):
        buckets[instance_seed % shards].append(index)
    return buckets


def env_workers() -> int:
    """The ``REPRO_WORKERS`` default, tolerating unset/garbage values.

    A typo in an environment knob must not crash campaign code (or module
    import); it degrades to serial with a warning.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        warnings.warn(
            f"ignoring non-integer REPRO_WORKERS={raw!r}; running serial",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1


def resolve_workers(workers: Optional[int]) -> int:
    """Worker count from an explicit value or the ``REPRO_WORKERS`` env."""
    if workers is None:
        return env_workers()
    return max(1, int(workers))


def env_sessions_per_proc() -> int:
    """The ``REPRO_SESSIONS_PER_PROC`` default, tolerating garbage values."""
    raw = os.environ.get("REPRO_SESSIONS_PER_PROC", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        warnings.warn(
            f"ignoring non-integer REPRO_SESSIONS_PER_PROC={raw!r}; "
            "running one session per process",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1


def resolve_sessions_per_proc(sessions_per_proc: Optional[int]) -> int:
    """Sessions-per-process from an explicit value or the environment."""
    if sessions_per_proc is None:
        return env_sessions_per_proc()
    return max(1, int(sessions_per_proc))


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """A fork multiprocessing context, or ``None`` where unavailable."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


#: one pool job: ``(fn, config, index, seed, traced)``
_Job = Tuple[InstanceFn, object, int, int, bool]

#: one pool result: the record plus the worker's trace payload (if traced)
_JobResult = Tuple[SessionRecord, Optional[Dict[str, object]]]


def _run_job(job: _Job) -> _JobResult:
    instance_fn, config, index, instance_seed, traced = job
    if not traced:
        return instance_fn(config, index, instance_seed), None
    # Collect into a scratch registry so only this instance's data ships
    # back: the worker's inherited (forked) registry stays untouched.
    local = Telemetry(enabled=True)
    previous = set_telemetry(local)
    try:
        with local.span("campaign.instance", index=index):
            record = instance_fn(config, index, instance_seed)
    finally:
        set_telemetry(previous)
    return record, local.export()


def iter_instances(
    instance_fn: InstanceFn,
    config: object,
    seeds: Sequence[int],
    progress: Optional[ProgressFn] = None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    start: int = 0,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> Iterator[SessionRecord]:
    """Yield one record per ``(index, seed)`` pair, in pair order.

    With ``workers > 1`` (and a fork-capable platform) instances are
    dispatched to a process pool in chunks; results stream back in order
    and ``progress`` fires in the parent, so callers cannot tell the two
    modes apart except by wall clock.

    ``start`` skips the first ``start`` instances while keeping absolute
    indices and per-instance seeds unchanged — the records produced for
    indices ``start..`` are bit-identical to the tail of a full run,
    which is what makes checkpoint/resume exact.  ``pairs`` replaces the
    ``seeds``/``start`` prefix convention with an explicit ``(index,
    seed)`` subsequence — the shard primitive: any subset of the
    campaign's instance space runs with absolute indices and seeds
    unchanged, so sharded records stay bit-identical to serial ones.
    """
    if pairs is None:
        pairs = [(start + off, seed) for off, seed in enumerate(seeds[start:])]
    else:
        pairs = list(pairs)
    n = len(pairs)
    workers = min(resolve_workers(workers), max(1, n))
    context = _fork_context() if workers > 1 else None
    if multiprocessing.current_process().daemon:
        context = None  # no nested pools inside a worker
    tel = get_telemetry()
    with tel.span("campaign.run", n=n, workers=workers, start=start) as run:
        if context is None or workers <= 1:
            for index, instance_seed in pairs:
                with tel.span("campaign.instance", index=index):
                    record = instance_fn(config, index, instance_seed)
                run.count("instances")
                if progress is not None:
                    progress(index, record)
                yield record
            return
        if chunksize is None:
            # Small chunks keep the pool load-balanced (instances are seconds
            # each) while still amortising dispatch for large campaigns.
            chunksize = max(1, min(4, n // (workers * 4)))
        jobs: List[_Job] = [
            (instance_fn, config, index, seed, tel.enabled)
            for index, seed in pairs
        ]
        with context.Pool(processes=workers) as pool:
            for (index, _seed), (record, payload) in zip(
                pairs, pool.imap(_run_job, jobs, chunksize=chunksize)
            ):
                if payload is not None:
                    tel.absorb(payload)
                run.count("instances")
                if progress is not None:
                    progress(index, record)
                yield record


#: one pool batch job: ``(fn, config, ((index, seed), ...), traced)``
_BatchJob = Tuple[BatchFn, object, Tuple[Tuple[int, int], ...], bool]

#: one pool batch result: the records plus the worker's trace payload
_BatchJobResult = Tuple[List[SessionRecord], Optional[Dict[str, object]]]


def _run_batch_job(job: _BatchJob) -> _BatchJobResult:
    batch_fn, config, group, traced = job
    if not traced:
        return batch_fn(config, group), None
    local = Telemetry(enabled=True)
    previous = set_telemetry(local)
    try:
        with local.span("campaign.batch", start=group[0][0], k=len(group)):
            records = batch_fn(config, group)
    finally:
        set_telemetry(previous)
    return records, local.export()


def iter_instance_batches(
    batch_fn: BatchFn,
    config: object,
    seeds: Sequence[int],
    sessions_per_proc: int,
    progress: Optional[ProgressFn] = None,
    workers: Optional[int] = None,
    start: int = 0,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> Iterator[SessionRecord]:
    """Yield records in index order, K sessions interleaved per process.

    The batched twin of :func:`iter_instances`: instances are grouped
    into runs of ``sessions_per_proc`` consecutive indices, each group
    simulated interleaved on one shared event loop (see
    :func:`repro.testbed.testbed.run_sessions`).  Records are
    bit-identical to the one-session-per-process path — grouping and
    interleaving amortize per-event engine overhead, they never touch
    per-session draws — so ``sessions_per_proc`` composes freely with
    ``workers`` (groups fan out over the fork pool) and ``start``
    (absolute indices and per-instance seeds are unchanged).  ``pairs``
    supplies an explicit ``(index, seed)`` subsequence instead (the
    shard primitive); grouping is then pair-order-local, which is safe
    because interleaving never touches a session's own draws.
    """
    k = max(1, int(sessions_per_proc))
    if pairs is None:
        indexed = [(start + off, seed)
                   for off, seed in enumerate(seeds[start:])]
    else:
        indexed = list(pairs)
    groups = [tuple(indexed[i : i + k]) for i in range(0, len(indexed), k)]
    n = len(indexed)
    workers = min(resolve_workers(workers), max(1, len(groups)))
    context = _fork_context() if workers > 1 else None
    if multiprocessing.current_process().daemon:
        context = None  # no nested pools inside a worker
    tel = get_telemetry()
    with tel.span(
        "campaign.run", n=n, workers=workers, start=start, sessions_per_proc=k
    ) as run:
        if context is None or workers <= 1:
            for group in groups:
                with tel.span("campaign.batch", start=group[0][0], k=len(group)):
                    records = batch_fn(config, group)
                for (index, _seed), record in zip(group, records):
                    run.count("instances")
                    if progress is not None:
                        progress(index, record)
                    yield record
            return
        jobs: List[_BatchJob] = [
            (batch_fn, config, group, tel.enabled) for group in groups
        ]
        with context.Pool(processes=workers) as pool:
            for group, (records, payload) in zip(
                groups, pool.imap(_run_batch_job, jobs, chunksize=1)
            ):
                if payload is not None:
                    tel.absorb(payload)
                for (index, _seed), record in zip(group, records):
                    run.count("instances")
                    if progress is not None:
                        progress(index, record)
                    yield record


@functools.lru_cache(maxsize=8)
def _catalog(
    size: int, duration_range: Tuple[float, float], hd_fraction: float, seed: int
) -> VideoCatalog:
    """Per-process catalog cache: identical in every worker (pure of seed)."""
    return VideoCatalog(
        size=size,
        duration_range=duration_range,
        hd_fraction=hd_fraction,
        seed=seed,
    )


# ------------------------------------------------- the controlled campaign


def _controlled_spec(
    config: CampaignConfig, index: int, instance_seed: int
) -> SessionSpec:
    """Draw one instance's scenario; pure function of its arguments.

    Makes exactly the scenario-RNG draws the solo path has always made
    (server-mode choice, catalog pick, fault draws, in that order), so
    the solo and interleaved campaign paths share one source of truth
    for per-instance randomness.
    """
    catalog = _catalog(
        config.catalog_size,
        tuple(config.video_duration_range),
        config.hd_fraction,
        config.seed ^ 0x5EED,
    )
    scenario_rng = random.Random(instance_seed)
    server_mode = config.server_mode
    if server_mode == "mixed":
        server_mode = scenario_rng.choice(("apache", "youtube"))
    testbed_config = TestbedConfig(
        seed=instance_seed,
        wan_profile=config.wan_profile,
        server_mode=server_mode,
        **config.testbed_overrides,
    )
    profile = catalog.pick(scenario_rng)
    fault = None
    if scenario_rng.random() >= config.healthy_fraction:
        name = scenario_rng.choice(list(config.faults))
        severity = (
            "mild"
            if scenario_rng.random() < config.mild_fraction
            else "severe"
        )
        fault = make_fault(name, severity, scenario_rng)
    return SessionSpec(testbed_config, profile, fault)


def _controlled_instance(
    config: CampaignConfig, index: int, instance_seed: int
) -> SessionRecord:
    """Simulate one scenario instance; pure function of its arguments."""
    spec = _controlled_spec(config, index, instance_seed)
    testbed = Testbed(spec.config)
    record = testbed.run_video_session(spec.profile, fault=spec.fault)
    record.meta["instance_index"] = index
    record.meta["instance_seed"] = instance_seed
    testbed.shutdown()
    return record


def _controlled_batch(
    config: CampaignConfig, group: Sequence[Tuple[int, int]]
) -> List[SessionRecord]:
    """Simulate a group of instances interleaved on one shared loop."""
    specs = [
        _controlled_spec(config, index, seed) for index, seed in group
    ]
    records = run_sessions(specs)
    for (index, seed), record in zip(group, records):
        record.meta["instance_index"] = index
        record.meta["instance_seed"] = seed
    return records


def iter_campaign(
    config: CampaignConfig,
    progress: Optional[ProgressFn] = None,
    workers: Optional[int] = None,
    start: int = 0,
    sessions_per_proc: Optional[int] = None,
) -> Iterator[SessionRecord]:
    """Yield one :class:`SessionRecord` per scenario instance.

    This is the canonical streaming entry point: records are produced
    one at a time (or streamed back in order from the worker pool), so
    callers that consume incrementally hold at most a chunk in memory.
    ``start`` resumes mid-campaign without perturbing any later record.

    ``sessions_per_proc=K`` (default: the ``REPRO_SESSIONS_PER_PROC``
    environment variable, else 1) interleaves K consecutive instances
    on one shared event loop per process; it composes with ``workers``
    and produces bit-identical records either way.
    """
    seeds = campaign_seeds(config.seed, config.n_instances)
    k = resolve_sessions_per_proc(sessions_per_proc)
    if k > 1:
        yield from iter_instance_batches(
            _controlled_batch,
            config,
            seeds,
            k,
            progress=progress,
            workers=workers,
            start=start,
        )
        return
    yield from iter_instances(
        _controlled_instance,
        config,
        seeds,
        progress=progress,
        workers=workers,
        start=start,
    )


def iter_campaign_pairs(
    config: CampaignConfig,
    pairs: Sequence[Tuple[int, int]],
    progress: Optional[ProgressFn] = None,
    workers: Optional[int] = None,
    sessions_per_proc: Optional[int] = None,
) -> Iterator[SessionRecord]:
    """Yield records for an explicit ``(index, seed)`` subsequence.

    The shard entry point: a shard owns an arbitrary ascending subset of
    the campaign's instance space (see :func:`shard_partition`), and
    because every instance is a pure function of ``(config, index,
    instance_seed)``, running the subset produces records bit-identical
    to the same positions of a serial full run.  ``workers`` and
    ``sessions_per_proc`` compose exactly as in :func:`iter_campaign`.
    """
    k = resolve_sessions_per_proc(sessions_per_proc)
    if k > 1:
        yield from iter_instance_batches(
            _controlled_batch, config, (), k,
            progress=progress, workers=workers, pairs=pairs,
        )
        return
    yield from iter_instances(
        _controlled_instance, config, (),
        progress=progress, workers=workers, pairs=pairs,
    )


def run_campaign(
    config: CampaignConfig,
    progress: Optional[ProgressFn] = None,
    workers: Optional[int] = None,
    sessions_per_proc: Optional[int] = None,
) -> List[SessionRecord]:
    """Collect the full campaign into a list of records.

    A thin batch wrapper over :func:`iter_campaign` — the streaming path
    is the canonical one; use it (or :mod:`repro.pipeline`) when the
    campaign should not be held in memory at once.  ``workers`` fans
    instances out over a process pool (default: the ``REPRO_WORKERS``
    environment variable, else serial); ``sessions_per_proc`` interleaves
    that many sessions on one loop inside each process.  Results are
    identical to a serial run for the same config.
    """
    return list(
        iter_campaign(
            config,
            progress=progress,
            workers=workers,
            sessions_per_proc=sessions_per_proc,
        )
    )

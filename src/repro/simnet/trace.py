"""Packet traces: record at a tap, analyse offline.

Real ``tstat`` is habitually run over recorded traces (pcap) rather than
live taps.  This module provides the same workflow for the simulator:

* :class:`TraceRecorder` -- a tap that snapshots every packet crossing an
  interface into an immutable, picklable trace;
* :meth:`PacketTrace.replay_into` -- feed a recorded trace to any passive
  probe (e.g. :class:`~repro.probes.tstat.TstatProbe`) offline, yielding
  bit-identical metrics to a live capture;
* :meth:`PacketTrace.save` / :meth:`PacketTrace.load` -- persistence, so
  a measurement box can capture now and diagnose later.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Tuple

from repro.schemas import PACKET_TRACE_V1
from repro.simnet.node import Interface, Tap
from repro.simnet.packet import FlowKey, Packet

#: the header fields a capture preserves (payload bytes never existed)
_FIELDS = (
    "src", "dst", "sport", "dport", "proto", "payload_len", "seq", "ack",
    "flags", "wnd", "sack", "ts_val", "ts_ecr", "mss_opt", "wscale_opt",
    "ttl", "retx", "app_tag",
)


@dataclass(frozen=True)
class TraceEntry:
    """One captured packet: timestamp, direction and header snapshot."""

    time: float
    direction: str  # "tx" | "rx"
    header: tuple   # values aligned with _FIELDS

    def to_packet(self) -> Packet:
        kwargs = dict(zip(_FIELDS, self.header))
        return Packet(created_at=self.time, **kwargs)


class PacketTrace:
    """An ordered capture of packets at one observation point."""

    FORMAT = PACKET_TRACE_V1

    def __init__(self, description: str = ""):
        self.description = description
        self.entries: List[TraceEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def record(self, pkt: Packet, direction: str, now: float) -> None:
        # Explicit field tuple, aligned with _FIELDS (a getattr loop costs
        # ~3x as much and this runs once per captured packet).
        header = (
            pkt.src, pkt.dst, pkt.sport, pkt.dport, pkt.proto,
            pkt.payload_len, pkt.seq, pkt.ack, pkt.flags, pkt.wnd, pkt.sack,
            pkt.ts_val, pkt.ts_ecr, pkt.mss_opt, pkt.wscale_opt, pkt.ttl,
            pkt.retx, pkt.app_tag,
        )
        self.entries.append(TraceEntry(now, direction, header))

    # -- offline analysis ------------------------------------------------------

    def replay_into(self, probe) -> None:
        """Feed the capture to a passive probe's ``_observe`` pipeline."""
        for entry in self.entries:
            probe._observe(entry.to_packet(), entry.direction, entry.time)

    def flows(self) -> List[Tuple]:
        """Distinct canonical 5-tuples present in the trace."""
        seen = []
        known = set()
        for entry in self.entries:
            h = entry.header
            key = FlowKey(h[0], h[1], h[2], h[3], h[4]).canonical()
            if key not in known:
                known.add(key)
                seen.append(key)
        return seen

    # -- persistence -------------------------------------------------------------

    def save(self, path) -> None:
        payload = {
            "format": self.FORMAT,
            "description": self.description,
            "fields": _FIELDS,
            "entries": [(e.time, e.direction, e.header) for e in self.entries],
        }
        with Path(path).open("wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path) -> "PacketTrace":
        with Path(path).open("rb") as fh:
            payload = pickle.load(fh)
        if payload.get("format") != cls.FORMAT:
            raise ValueError("not a repro packet trace")
        if tuple(payload["fields"]) != _FIELDS:
            raise ValueError("trace was recorded with an incompatible field set")
        trace = cls(description=payload.get("description", ""))
        trace.entries = [TraceEntry(t, d, tuple(h))
                         for t, d, h in payload["entries"]]
        return trace


class TraceRecorder:
    """Attach to an interface and capture everything that crosses it."""

    def __init__(self, iface: Interface, description: str = ""):
        self.iface = iface
        self.trace = PacketTrace(description or f"{iface.node.name}.{iface.name}")
        self._tap = Tap(self.trace.record, name="trace")
        iface.add_tap(self._tap)

    def detach(self) -> PacketTrace:
        """Stop recording and return the capture."""
        self.iface.remove_tap(self._tap)
        return self.trace

"""Shared 802.11 medium: RSSI, rate adaptation, contention and interference.

The model captures exactly the observables the paper's faults manipulate:

* **Low RSSI** (distance / attenuation at the AP) lowers the SNR, which
  drops the selected PHY rate and raises the per-frame error rate -- the
  video throughput collapses and the radio probe sees a low RSSI and
  link-layer retries.
* **WiFi interference** (an adjacent WLAN on the same channel) occupies
  airtime and causes collisions -- throughput and jitter degrade *without*
  any change in RSSI, which is why only probes with radio access can tell
  the two apart (Section 5.3 of the paper).

One frame occupies the medium at a time (no spatial reuse); stations with
queued frames contend with randomized backoff, approximating DCF fairness.
Frames that exhaust their retry budget are dropped, surfacing as IP loss to
TCP.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Optional

from repro.simnet.engine import SessionContext
from repro.simnet.node import Interface
from repro.simnet.packet import Packet, free_packet

#: (min SNR dB, PHY rate bit/s) -- roughly 802.11a/b/g/n single-stream rates,
#: spanning the 1..70 Mbit/s range used for LAN shaping in Table 2.
RATE_TABLE = [
    (1.0, 1e6),
    (2.0, 2e6),
    (4.0, 5.5e6),
    (6.0, 6.5e6),
    (8.0, 13e6),
    (11.0, 19.5e6),
    (14.0, 26e6),
    (17.0, 39e6),
    (21.0, 52e6),
    (25.0, 58.5e6),
    (28.0, 65e6),
]

MAC_OVERHEAD_S = 100e-6  # preamble + SIFS + ACK, per attempt
SLOT_TIME_S = 9e-6
MAX_RETRIES = 7
RATE_MARGIN_DB = 2.0
DISCONNECT_RSSI = -88.0


def select_rate(snr_db: float) -> float:
    """Highest PHY rate whose SNR requirement is met with margin."""
    best = RATE_TABLE[0][1]
    for min_snr, rate in RATE_TABLE:
        if snr_db >= min_snr + RATE_MARGIN_DB:
            best = rate
    return best


def frame_error_prob(snr_db: float, rate_bps: float) -> float:
    """Per-attempt frame error probability for ``rate`` at ``snr``."""
    threshold = RATE_TABLE[0][0]
    for min_snr, rate in RATE_TABLE:
        if rate == rate_bps:
            threshold = min_snr
            break
    margin = snr_db - threshold
    return min(0.9, 0.5 * math.exp(-0.8 * margin))


class WifiStation:
    """A radio participant: the AP or one client device."""

    def __init__(
        self,
        medium: "WifiMedium",
        name: str,
        iface: Interface,
        base_rssi: float = -45.0,
        shadow_sigma: float = 2.0,
        is_ap: bool = False,
        queue_limit_bytes: int = 256 * 1024,
    ):
        self.medium = medium
        self.name = name
        self.iface = iface
        self.base_rssi = base_rssi
        self.attenuation = 0.0  # extra path loss injected by faults (dB)
        self.shadow_sigma = shadow_sigma
        self.is_ap = is_ap
        self.queue_limit_bytes = queue_limit_bytes
        self.queue: deque[Packet] = deque()
        self.queued_bytes = 0

        self._shadow = 0.0
        self._shadow_updated = 0.0

        # Radio statistics consumed by the radio probe.
        self.frames_tx = 0
        self.frames_rx = 0
        self.retries = 0
        self.frame_drops = 0
        self.queue_drops = 0
        self.airtime = 0.0
        self.rate_sum = 0.0
        self.rate_samples = 0
        self.disconnections = 0
        self._was_connected = True

    def rssi(self, now: float) -> float:
        """Current received signal strength (dBm), with OU shadowing."""
        dt = now - self._shadow_updated
        if dt > 0:
            theta = 0.5  # mean-reversion rate (1/s)
            decay = math.exp(-theta * dt)
            noise_std = self.shadow_sigma * math.sqrt(max(0.0, 1.0 - decay * decay))
            self._shadow = self._shadow * decay + self.medium.sim.normal(0.0, noise_std)
            self._shadow_updated = now
        value = self.base_rssi - self.attenuation + self._shadow
        connected = value >= DISCONNECT_RSSI
        if self._was_connected and not connected:
            self.disconnections += 1
        self._was_connected = connected
        return value

    def snr(self, now: float) -> float:
        return self.rssi(now) - self.medium.noise_floor

    @property
    def mean_phy_rate(self) -> float:
        if self.rate_samples == 0:
            return 0.0
        return self.rate_sum / self.rate_samples


class _WifiPort:
    """Interface-compatible sender that enqueues frames on the medium."""

    def __init__(self, medium: "WifiMedium", station: WifiStation):
        self.medium = medium
        self.station = station

    def send(self, pkt: Packet) -> bool:
        return self.medium.enqueue(self.station, pkt)


class WifiMedium:
    """The shared wireless channel between the AP and its stations."""

    def __init__(self, sim: SessionContext, name: str = "wlan0", noise_floor: float = -95.0):
        self.sim = sim
        self.name = name
        self.noise_floor = noise_floor
        self.stations: Dict[str, WifiStation] = {}
        self.ap: Optional[WifiStation] = None
        #: fraction of airtime consumed by an adjacent WLAN (interference
        #: fault); 0 means a clean channel.
        self.interference_duty = 0.0
        #: optional PHY-rate ceiling (bit/s) -- the LAN-shaping fault caps
        #: the WLAN at a lower 802.11 standard's rate, as in Table 2.
        self.rate_cap: Optional[float] = None
        self._busy = False
        self._backlog: list[WifiStation] = []
        self.busy_time = 0.0
        self.collisions = 0

    # -- topology ----------------------------------------------------------

    def add_station(
        self,
        name: str,
        iface: Interface,
        base_rssi: float = -45.0,
        is_ap: bool = False,
        shadow_sigma: float = 2.0,
    ) -> WifiStation:
        if name in self.stations:
            raise ValueError(f"duplicate station {name!r}")
        station = WifiStation(
            self, name, iface, base_rssi=base_rssi, is_ap=is_ap,
            shadow_sigma=shadow_sigma,
        )
        self.stations[name] = station
        if is_ap:
            if self.ap is not None:
                raise ValueError("medium already has an AP")
            self.ap = station
        iface.attach_sender(_WifiPort(self, station))
        return station

    def set_interference(self, duty: float) -> None:
        """Set the adjacent-WLAN airtime occupancy in ``[0, 0.97]``."""
        self.interference_duty = min(0.97, max(0.0, duty))

    def set_rate_cap(self, cap: Optional[float]) -> None:
        """Cap the selected PHY rate (``None`` removes the cap)."""
        if cap is not None and cap <= 0:
            raise ValueError("rate cap must be positive")
        self.rate_cap = cap

    # -- data path ----------------------------------------------------------

    def enqueue(self, station: WifiStation, pkt: Packet) -> bool:
        if station.queued_bytes + pkt.size > station.queue_limit_bytes:
            station.queue_drops += 1
            free_packet(pkt)
            return False
        station.queue.append(pkt)
        station.queued_bytes += pkt.size
        if station not in self._backlog:
            self._backlog.append(station)
        if not self._busy:
            self._grant()
        return True

    def _resolve_destination(self, src: WifiStation, pkt: Packet) -> Optional[WifiStation]:
        if src.is_ap:
            return self.stations.get(pkt.dst)
        return self.ap

    def _client_side(self, src: WifiStation, dst: WifiStation) -> WifiStation:
        """The non-AP endpoint, whose RSSI governs the link budget."""
        return dst if src.is_ap else src

    def _grant(self) -> None:
        if self._busy or not self._backlog:
            return
        idx = self.sim.rng.randrange(len(self._backlog))
        station = self._backlog[idx]
        pkt = station.queue.popleft()
        station.queued_bytes -= pkt.size
        if not station.queue:
            self._backlog.pop(idx)
        dst = self._resolve_destination(station, pkt)
        if dst is None:
            free_packet(pkt)
            self._grant_later(0.0)
            return
        self._busy = True
        self._attempt(station, dst, pkt, retries=0)

    def _attempt(
        self, src: WifiStation, dst: WifiStation, pkt: Packet, retries: int
    ) -> None:
        now = self.sim.now
        client = self._client_side(src, dst)
        snr = client.snr(now)
        rate = select_rate(snr)
        if self.rate_cap is not None:
            rate = min(rate, self.rate_cap)
        client.rate_sum += rate
        client.rate_samples += 1

        cw = min(1023, 15 * (2 ** retries))
        backoff = self.sim.rng.uniform(0, cw) * SLOT_TIME_S
        interferer_wait = 0.0
        duty = self.interference_duty
        if duty > 0.0:
            frame_time = MAC_OVERHEAD_S + pkt.size * 8.0 / rate
            interferer_wait = self.sim.expovariate(
                1.0 / max(1e-6, duty / (1.0 - duty) * frame_time)
            )
        airtime = MAC_OVERHEAD_S + pkt.size * 8.0 / rate
        total = backoff + interferer_wait + airtime
        self.busy_time += airtime
        src.airtime += airtime

        collision_p = min(0.5, 0.35 * duty + 0.02 * (len(self._backlog) > 0))
        error_p = frame_error_prob(snr, rate)
        failed = self.sim.chance(collision_p) or self.sim.chance(error_p)
        if failed and self.sim.chance(collision_p):
            self.collisions += 1
        self.sim.post(total, self._attempt_done, src, dst, pkt, retries, failed)

    def _attempt_done(
        self,
        src: WifiStation,
        dst: WifiStation,
        pkt: Packet,
        retries: int,
        failed: bool,
    ) -> None:
        if failed:
            src.retries += 1
            if retries + 1 > MAX_RETRIES:
                src.frame_drops += 1
                free_packet(pkt)
                self._finish_frame()
            else:
                self._attempt(src, dst, pkt, retries + 1)
            return
        src.frames_tx += 1
        dst.frames_rx += 1
        self._finish_frame()
        dst.iface.deliver(pkt)

    def _finish_frame(self) -> None:
        self._busy = False
        self._grant_later(SLOT_TIME_S)

    def _grant_later(self, delay: float) -> None:
        if self._backlog and not self._busy:
            self.sim.post(delay, self._grant)

    # -- monitoring -----------------------------------------------------------

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon + self.interference_duty)

"""Batched Mersenne-Twister randomness with an exact ``random.Random`` shim.

The simulator draws randomness one variate at a time (a loss draw per
packet, a jitter draw per transmission, ...), and campaign records are
pinned bit-identical across refactors, so the draw *sequence* is part of
the repo's compatibility contract.  This module batches the underlying
entropy generation without changing a single draw:

* :class:`BatchedRandom` subclasses :class:`random.Random` and overrides
  only the two primitives every stdlib distribution is built from --
  ``random()`` and ``getrandbits()``.  Both consume pre-drawn blocks of
  raw 32-bit Mersenne-Twister output words produced vectorized by a
  ``numpy.random.MT19937`` bit generator whose state is transplanted from
  the CPython generator.
* CPython and numpy implement the *same* MT19937, so the word stream is
  identical, and the overridden primitives reproduce CPython's exact
  word-to-value mapping (``random()`` folds two words; ``getrandbits``
  consumes ``ceil(k/32)`` words little-endian).  Every inherited method
  (``gauss``, ``uniform``, ``expovariate``, ``choice``, ``randrange``,
  ``shuffle``, ...) therefore returns the exact values a seeded
  ``random.Random`` would -- the compat-shim tests pin this per call and
  under arbitrary interleavings.
* ``seed``/``getstate``/``setstate`` keep the CPython-visible state
  authoritative: ``getstate`` rolls the transplanted generator forward by
  the number of words actually handed out, so round-tripping state between
  :class:`BatchedRandom` and :class:`random.Random` is lossless.

Without numpy (or with ``REPRO_SIMNET_RNG=stdlib``) the factory returns a
plain ``random.Random`` -- same sequences, one C call per draw.
"""

from __future__ import annotations

import os
import random
from typing import Any, List, Optional, Tuple

try:  # the repo treats numpy as optional at the simnet layer
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None  # type: ignore[assignment]

#: doubling block schedule: derived streams that draw a handful of values
#: stay cheap, the simulator's main stream amortises towards large blocks.
_BLOCK_MIN = 256
_BLOCK_MAX = 8192

_MT_N = 624  # MT19937 state words
_INV_2_53 = 1.0 / 9007199254740992.0  # 2**-53, the CPython random() scale

RNG_MODES = ("batched", "stdlib")


def resolve_rng_mode(mode: Optional[str] = None) -> str:
    """Resolve the RNG mode from an explicit value or ``REPRO_SIMNET_RNG``."""
    resolved = mode or os.environ.get("REPRO_SIMNET_RNG") or "batched"
    if resolved not in RNG_MODES:
        raise ValueError(
            f"unknown rng mode {resolved!r} (expected one of {RNG_MODES})"
        )
    if resolved == "batched" and _np is None:
        return "stdlib"
    return resolved


def make_random(
    seed: Any,
    mode: Optional[str] = None,
    allocator: Optional["RngBlockAllocator"] = None,
) -> random.Random:
    """Seeded generator in the requested mode; sequences match across modes.

    ``allocator`` (batched mode only) shares one block budget between many
    streams; it shapes prefetch sizes, never the draw sequence.
    """
    if resolve_rng_mode(mode) == "batched":
        return BatchedRandom(seed, allocator=allocator)
    return random.Random(seed)


class RngBlockAllocator:
    """Shared block-size policy for many :class:`BatchedRandom` streams.

    When K sessions interleave in one process, each carrying its own
    batched stream (plus fork streams for subsystems), letting every
    stream grow to ``_BLOCK_MAX`` words would cost K x 8192 x 8 bytes of
    resident buffer plus oversized numpy draws for streams that are
    nearly done.  Registered streams instead split ``budget_words``
    evenly: each one's prefetch block is capped at ``budget // streams``
    (floored at ``_BLOCK_MIN``, ceiled at ``_BLOCK_MAX``).

    Block size only controls how many raw MT words are prefetched per
    refill -- the word *stream* is the generator's own and identical for
    any block schedule -- so sharing an allocator can never change a
    draw.  The equivalence suite pins this.
    """

    def __init__(self, budget_words: int = 1 << 18):
        if budget_words < _BLOCK_MIN:
            raise ValueError(
                f"budget_words must be >= {_BLOCK_MIN} (got {budget_words})"
            )
        self.budget_words = int(budget_words)
        self.streams = 0
        self.words_served = 0

    def register(self) -> None:
        """Count one more stream against the shared budget."""
        self.streams += 1

    def block_cap(self) -> int:
        """Largest prefetch block a registered stream should draw now."""
        cap = self.budget_words // max(1, self.streams)
        return max(_BLOCK_MIN, min(_BLOCK_MAX, cap))

    def note(self, count: int) -> None:
        """Record ``count`` words served (observability only)."""
        self.words_served += count


def _transplant(internal: Tuple[int, ...]):
    """Build a numpy MT19937 bit generator from CPython's 625-int state."""
    bg = _np.random.MT19937()
    bg.state = {
        "bit_generator": "MT19937",
        "state": {"key": internal[:_MT_N], "pos": internal[_MT_N]},
    }
    return bg


class BatchedRandom(random.Random):
    """Drop-in ``random.Random`` drawing raw MT words in vectorized blocks."""

    def __init__(
        self, seed: Any = None, allocator: Optional[RngBlockAllocator] = None
    ):
        # Buffer attributes must exist before Random.__init__ triggers the
        # first self.seed() call.
        self._words: List[int] = []
        self._fev: List[float] = []
        self._fodd: List[float] = []
        self._pos = 0
        self._bg = None
        self._base: Optional[Tuple[int, ...]] = None
        self._drawn = 0
        self._block = _BLOCK_MIN
        self._allocator = allocator
        if allocator is not None:
            allocator.register()
        super().__init__(seed)

    # -- state management --------------------------------------------------

    def seed(self, a: Any = None, version: int = 2) -> None:
        super().seed(a, version)
        self._resync()

    def setstate(self, state: Tuple[Any, ...]) -> None:
        super().setstate(state)
        self._resync()

    def getstate(self) -> Tuple[Any, ...]:
        if self._bg is None:
            return super().getstate()
        consumed = self._drawn - (len(self._words) - self._pos)
        if consumed == 0:
            return (3, self._base, self.gauss_next)
        bg = _transplant(self._base)
        bg.random_raw(consumed)
        state = bg.state["state"]
        internal = tuple(int(w) for w in state["key"]) + (int(state["pos"]),)
        return (3, internal, self.gauss_next)

    def _resync(self) -> None:
        """Rebuild the block source from the CPython-visible MT state."""
        self._words = []
        self._fev = []
        self._fodd = []
        self._pos = 0
        self._drawn = 0
        self._block = _BLOCK_MIN
        if _np is None:  # pragma: no cover - factory returns stdlib instead
            self._bg = None
            return
        _version, internal, _gauss = super().getstate()
        self._base = tuple(internal)
        self._bg = _transplant(self._base)

    # -- block plumbing ----------------------------------------------------

    def _refill(self, need: int) -> List[int]:
        """Extend the buffer (keeping any unconsumed tail) by a fresh block."""
        if self._bg is None:  # pragma: no cover - defensive; see _resync
            raise RuntimeError("batched rng without numpy backing")
        tail = self._words[self._pos :]
        allocator = self._allocator
        cap = _BLOCK_MAX if allocator is None else allocator.block_cap()
        count = max(min(self._block, cap), need)
        self._block = min(cap, self._block * 2)
        if allocator is not None:
            allocator.note(count)
        raw = self._bg.random_raw(count)
        self._drawn += count
        words = tail + raw.tolist()
        self._words = words
        self._pos = 0
        # Pre-fold word pairs into CPython-exact random() floats for both
        # pair alignments (getrandbits consumes single words, so random()
        # can start on either parity).  The integer fold (a*2**26 + b with
        # a < 2**27, b < 2**26) stays below 2**53, so the uint64->float64
        # conversion and the scale by the exact power 2**-53 are both
        # exact -- bit-identical to CPython's float-arithmetic fold.
        arr = _np.array(words, dtype=_np.uint64)
        n = len(words)
        hi = arr >> 5
        lo = arr >> 6
        self._fev = ((hi[0 : n - 1 : 2] * 67108864 + lo[1:n:2]) * _INV_2_53).tolist()
        self._fodd = (
            (hi[1 : n - 1 : 2] * 67108864 + lo[2:n:2]) * _INV_2_53
        ).tolist()
        return words

    # -- the two primitives every stdlib distribution reduces to -----------

    def random(self) -> float:
        """Exactly CPython's ``random_random``: fold two 32-bit words."""
        pos = self._pos
        try:
            if pos & 1:
                value = self._fodd[pos >> 1]
            else:
                value = self._fev[pos >> 1]
        except IndexError:
            self._refill(2)
            self._pos = 2
            return self._fev[0]
        self._pos = pos + 2
        return value

    def getrandbits(self, k: int) -> int:
        """Exactly CPython's ``getrandbits``: little-endian 32-bit chunks."""
        if k < 0:
            raise ValueError("number of bits must be non-negative")
        if k == 0:
            return 0
        words = self._words
        pos = self._pos
        if k <= 32:
            if pos >= len(words):
                words = self._refill(1)
                pos = 0
            self._pos = pos + 1
            return words[pos] >> (32 - k)
        nwords = (k - 1) // 32 + 1
        if pos + nwords > len(words):
            words = self._refill(nwords)
            pos = 0
        result = 0
        shift = 0
        remaining = k
        for i in range(nwords):
            chunk = words[pos + i]
            if remaining < 32:
                chunk >>= 32 - remaining
            result |= chunk << shift
            shift += 32
            remaining -= 32
        self._pos = pos + nwords
        return result

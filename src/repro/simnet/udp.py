"""UDP traffic sources and sinks (the testbed's ``iperf`` and D-ITG flows).

:class:`UdpSender` produces constant-bitrate or on/off traffic with
configurable packet sizes; :class:`UdpSink` counts what arrives.  These are
used both for the congestion faults of Table 2 (``iperf`` UDP between the
wired client, the router and the server) and as building blocks for the
D-ITG-style background generators in :mod:`repro.traffic`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simnet.engine import SessionContext
from repro.simnet.node import Node
from repro.simnet.packet import Packet, UDP


class UdpSender:
    """Paced UDP source.

    Parameters
    ----------
    rate_bps:
        Target payload bitrate while ``on``.
    payload:
        Payload bytes per datagram.
    on_time / off_time:
        Mean durations of exponential on/off periods; ``off_time=0`` gives a
        plain CBR stream.  Randomised through the simulator RNG.
    jitter_factor:
        Multiplicative jitter on inter-packet gaps (0 = perfectly paced).
    """

    def __init__(
        self,
        sim: SessionContext,
        node: Node,
        dst: str,
        dport: int,
        rate_bps: float,
        payload: int = 1200,
        sport: Optional[int] = None,
        on_time: float = 0.0,
        off_time: float = 0.0,
        jitter_factor: float = 0.1,
        tag: str = "udp",
    ):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.sim = sim
        self.node = node
        self.dst = dst
        self.dport = dport
        self.sport = sport if sport is not None else node.ephemeral_port()
        self.rate_bps = rate_bps
        self.payload = payload
        self.on_time = on_time
        self.off_time = off_time
        self.jitter_factor = jitter_factor
        self.tag = tag
        self.pkts_sent = 0
        self.bytes_sent = 0
        self._running = False
        self._gap = payload * 8.0 / rate_bps

    def start(self, at: float = 0.0) -> None:
        if self._running:
            return
        self._running = True
        self.sim.post(at, self._emit)

    def stop(self) -> None:
        # _emit checks _running, so any queued emission becomes a no-op.
        self._running = False

    def set_rate(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.rate_bps = rate_bps
        self._gap = self.payload * 8.0 / rate_bps

    def _emit(self) -> None:
        if not self._running:
            return
        sim = self.sim
        pkt = Packet(
            src=self.node.name,
            dst=self.dst,
            sport=self.sport,
            dport=self.dport,
            proto=UDP,
            payload_len=self.payload,
            created_at=sim.now,
            app_tag=self.tag,
        )
        size = pkt.size
        self.node.send(pkt)
        self.pkts_sent += 1
        self.bytes_sent += size
        gap = self._gap
        if self.jitter_factor > 0:
            # Inline of sim.bounded_normal(gap, gap * jf, lo=gap * 0.1).
            draw = sim.rng.gauss(gap, gap * self.jitter_factor)
            floor = gap * 0.1
            gap = draw if draw > floor else floor
        if self.off_time > 0 and self.on_time > 0:
            # End of an on-period with probability gap / on_time (inline of
            # sim.chance -- the >= 1 short-circuit must not consume a draw).
            p = gap / self.on_time
            if p >= 1.0 or sim.rng.random() < p:
                gap += sim.expovariate(1.0 / self.off_time)
        sim.post(gap, self._emit)


class UdpSink:
    """Terminates UDP traffic on a node and counts it."""

    def __init__(
        self,
        node: Node,
        port: int,
        on_packet: Optional[Callable[[Packet], None]] = None,
    ):
        self.node = node
        self.port = port
        self.on_packet = on_packet
        self.pkts_received = 0
        self.bytes_received = 0
        node.bind(UDP, port, self._receive)

    def _receive(self, pkt: Packet) -> None:
        self.pkts_received += 1
        self.bytes_received += pkt.size
        if self.on_packet:
            self.on_packet(pkt)

    def close(self) -> None:
        self.node.unbind(UDP, self.port)

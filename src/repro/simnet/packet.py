"""Packet and flow primitives.

Packets carry just enough header state for the passive probes to behave like
real ``tstat``: sequence/ack numbers, flags, the advertised receive window,
SACK blocks, timestamps, the MSS option on SYNs and a TTL.  Payload
*content* is never materialised — only byte counts — which keeps the
simulator fast while leaving every metric the paper uses observable on the
wire.

All derived fields (total size, flag booleans, the flow key) are computed
once at construction: a packet is immutable on the wire, and these fields
sit on the simulator's hottest path.
"""

from __future__ import annotations

import itertools
from sys import getrefcount
from typing import List, NamedTuple, Optional

TCP = 6
UDP = 17

IP_HEADER = 20
TCP_HEADER = 20
UDP_HEADER = 8

# TCP flag bits (subset).
FIN = 0x01
SYN = 0x02
RST = 0x04
ACK = 0x10

_packet_ids = itertools.count(1)

# -- allocation pool ---------------------------------------------------------
#
# Packets are by far the most allocated objects on the hot path (one per
# send, tens of thousands per session).  Terminal points in the data path
# (local delivery, queue/loss/frame drops, routing dead ends) hand finished
# packets to :func:`free_packet`; the event loop calls
# :func:`sweep_freed_packets` between events and recycles any packet that is
# provably unreferenced.  ``Packet.__new__`` then reuses pooled instances,
# so steady-state streaming allocates near-zero packet objects.
#
# Safety model: ``free_packet`` is advisory.  A freed packet only re-enters
# circulation if, at sweep time (outside any event callback, with the stack
# unwound), its refcount proves the graveyard held the sole reference.  Any
# holder -- an out-of-order queue, a scheduled event's args, a test -- keeps
# the refcount up and the object is simply left to the garbage collector.

_POOL_MAX = 512
# repro: allow[D105] value-safe shared pool: every field is reassigned in __init__ before reuse
_pool: List["Packet"] = []
# repro: allow[D105] value-safe shared pool: only provably unreferenced packets are recycled
_graveyard: List["Packet"] = []


def free_packet(pkt: "Packet") -> None:
    """Mark ``pkt`` as finished; it may be recycled once unreferenced."""
    if pkt.freed:
        return
    pkt.freed = True
    _graveyard.append(pkt)


def sweep_freed_packets() -> None:
    """Recycle freed packets whose refcount proves sole ownership."""
    grave = _graveyard
    if not grave:
        return
    pool = _pool
    while grave:
        pkt = grave.pop()
        # Two references: the local ``pkt`` and getrefcount's argument.
        if len(pool) < _POOL_MAX and getrefcount(pkt) == 2:
            pool.append(pkt)


def pool_stats() -> dict:
    """Introspection for benchmarks/telemetry (never on the hot path)."""
    return {"pooled": len(_pool), "graveyard": len(_graveyard)}


class FlowKey(NamedTuple):
    """Canonical 5-tuple identifying one flow direction."""

    src: str
    dst: str
    sport: int
    dport: int
    proto: int

    def reversed(self) -> "FlowKey":
        return FlowKey(self.dst, self.src, self.dport, self.sport, self.proto)

    def canonical(self) -> "FlowKey":
        """Direction-independent key (smaller endpoint first)."""
        if (self.src, self.sport) <= (self.dst, self.dport):
            return self
        return self.reversed()


class Packet:
    """A simulated IP packet with optional TCP/UDP header fields."""

    __slots__ = (
        "pkt_id",
        "src",
        "dst",
        "sport",
        "dport",
        "proto",
        "payload_len",
        "seq",
        "ack",
        "flags",
        "wnd",
        "sack",
        "ts_val",
        "ts_ecr",
        "mss_opt",
        "wscale_opt",
        "ttl",
        "created_at",
        "retx",
        "app_tag",
        "header_len",
        "size",
        "is_syn",
        "is_ack",
        "is_fin",
        "is_rst",
        "is_pure_ack",
        "flow_key",
        "freed",
    )

    def __new__(cls, *args, **kwargs):
        if cls is Packet and _pool:
            return _pool.pop()
        return object.__new__(cls)

    def __init__(
        self,
        src: str,
        dst: str,
        sport: int,
        dport: int,
        proto: int = TCP,
        payload_len: int = 0,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        wnd: int = 65535,
        sack: tuple = (),
        ts_val: float = 0.0,
        ts_ecr: float = 0.0,
        mss_opt: Optional[int] = None,
        wscale_opt: Optional[int] = None,
        ttl: int = 64,
        created_at: float = 0.0,
        retx: bool = False,
        app_tag: str = "",
    ):
        self.pkt_id = next(_packet_ids)
        self.freed = False
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.proto = proto
        self.payload_len = payload_len
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.wnd = wnd
        self.sack = sack
        self.ts_val = ts_val
        self.ts_ecr = ts_ecr
        self.mss_opt = mss_opt
        self.wscale_opt = wscale_opt
        self.ttl = ttl
        self.created_at = created_at
        self.retx = retx
        self.app_tag = app_tag

        # -- derived, precomputed (hot path) --
        if proto == TCP:
            options = 4 if mss_opt is not None else 0
            if sack:
                options += 2 + 8 * len(sack)
            self.header_len = IP_HEADER + TCP_HEADER + options
        elif proto == UDP:
            self.header_len = IP_HEADER + UDP_HEADER
        else:
            self.header_len = IP_HEADER
        self.size = self.header_len + payload_len
        self.is_syn = bool(flags & SYN)
        self.is_ack = bool(flags & ACK)
        self.is_fin = bool(flags & FIN)
        self.is_rst = bool(flags & RST)
        self.is_pure_ack = (
            proto == TCP
            and payload_len == 0
            and self.is_ack
            and not (flags & (SYN | FIN | RST))
        )
        self.flow_key = FlowKey(src, dst, sport, dport, proto)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        proto = {TCP: "TCP", UDP: "UDP"}.get(self.proto, str(self.proto))
        flags = "".join(
            name
            for bit, name in ((SYN, "S"), (ACK, "A"), (FIN, "F"), (RST, "R"))
            if self.flags & bit
        )
        return (
            f"Packet#{self.pkt_id}({proto} {self.src}:{self.sport}->"
            f"{self.dst}:{self.dport} seq={self.seq} ack={self.ack} "
            f"len={self.payload_len} [{flags}])"
        )

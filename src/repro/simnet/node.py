"""Nodes, network interfaces and passive taps.

Hosts terminate traffic; the :class:`Router` forwards it through a shared
internal *bridge* channel, which models the finite switching capacity of the
paper's Netgear WNDR3800.  LAN congestion traffic therefore contends with
the video stream inside the router even when it enters on a different port,
matching the ``iperf -> router`` fault of Table 2.

Probes never reach into protocol state: they attach :class:`Tap` objects to
interfaces and observe packets exactly as ``tstat`` observes a mirrored
port.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.simnet.engine import SessionContext
from repro.simnet.link import Channel
from repro.simnet.packet import Packet, free_packet

PacketHandler = Callable[[Packet], None]
TapFn = Callable[[Packet, str, float], None]


class Tap:
    """Passive observer of packets crossing an interface.

    ``fn(packet, direction, time)`` is invoked with direction ``"tx"`` or
    ``"rx"`` relative to the tapped interface.
    """

    def __init__(self, fn: TapFn, name: str = ""):
        self.fn = fn
        self.name = name

    def __call__(self, pkt: Packet, direction: str, now: float) -> None:
        self.fn(pkt, direction, now)


class Interface:
    """A NIC: one attachment point of a node to a channel or medium."""

    def __init__(self, name: str, node: "Node"):
        self.name = name
        self.node = node
        self.sender = None  # object with .send(pkt) -> bool
        self.taps: list[Tap] = []
        # Flat observer functions mirroring ``taps`` -- the per-packet loop
        # calls the underlying fn directly, skipping Tap.__call__.
        self._tap_fns: list[TapFn] = []
        # Cumulative counters sampled by the link-layer probe.
        self.tx_pkts = 0
        self.tx_bytes = 0
        self.rx_pkts = 0
        self.rx_bytes = 0
        self.tx_drops = 0

    def attach_sender(self, sender) -> None:
        """Attach the outbound path (a Channel or a wireless port)."""
        self.sender = sender

    def add_tap(self, tap: Tap) -> None:
        self.taps.append(tap)
        self._tap_fns.append(tap.fn)

    def remove_tap(self, tap: Tap) -> None:
        """Detach a tap; both the handle and its flat fn mirror."""
        if tap in self.taps:
            self.taps.remove(tap)
            self._tap_fns.remove(tap.fn)

    def transmit(self, pkt: Packet) -> bool:
        """Send a packet out of this interface."""
        if self.sender is None:
            raise RuntimeError(f"interface {self.node.name}.{self.name} has no sender")
        taps = self._tap_fns
        if taps:
            now = self.node.sim.now
            for fn in taps:
                fn(pkt, "tx", now)
        self.tx_pkts += 1
        self.tx_bytes += pkt.size
        accepted = self.sender.send(pkt)
        if not accepted:
            self.tx_drops += 1
        return accepted

    def deliver(self, pkt: Packet) -> None:
        """Entry point for packets arriving from the attached channel."""
        taps = self._tap_fns
        if taps:
            now = self.node.sim.now
            for fn in taps:
                fn(pkt, "rx", now)
        self.rx_pkts += 1
        self.rx_bytes += pkt.size
        self.node.receive(pkt, self)


SocketKey = Tuple[int, int, Optional[str], Optional[int]]


class Node:
    """A network element addressed by its unique ``name``."""

    def __init__(self, sim: SessionContext, name: str):
        self.sim = sim
        self.name = name
        self.interfaces: Dict[str, Interface] = {}
        self.routes: Dict[str, Interface] = {}
        self.default_route: Optional[Interface] = None
        self._sockets: Dict[SocketKey, PacketHandler] = {}
        self.pkts_forwarded = 0
        self.pkts_no_route = 0

    # -- wiring --------------------------------------------------------------

    def add_interface(self, name: str) -> Interface:
        if name in self.interfaces:
            raise ValueError(f"duplicate interface {name!r} on {self.name}")
        iface = Interface(name, self)
        self.interfaces[name] = iface
        return iface

    def add_route(self, dst: str, iface: Interface) -> None:
        self.routes[dst] = iface

    def set_default_route(self, iface: Interface) -> None:
        self.default_route = iface

    def route_for(self, dst: str) -> Optional[Interface]:
        return self.routes.get(dst, self.default_route)

    # -- sockets ---------------------------------------------------------------

    def bind(
        self,
        proto: int,
        port: int,
        handler: PacketHandler,
        peer: Optional[str] = None,
        peer_port: Optional[int] = None,
    ) -> None:
        """Register a handler for inbound segments.

        A fully-qualified binding ``(proto, port, peer, peer_port)`` wins
        over the wildcard listener ``(proto, port, None, None)``.
        """
        key = (proto, port, peer, peer_port)
        if key in self._sockets:
            raise ValueError(f"port already bound: {key} on {self.name}")
        self._sockets[key] = handler

    def unbind(
        self,
        proto: int,
        port: int,
        peer: Optional[str] = None,
        peer_port: Optional[int] = None,
    ) -> None:
        self._sockets.pop((proto, port, peer, peer_port), None)

    def ephemeral_port(self) -> int:
        """Pick an unused port in the ephemeral range."""
        for _ in range(10000):
            port = self.sim.rng.randint(32768, 60999)
            if not any(k[1] == port for k in self._sockets):
                return port
        raise RuntimeError("ephemeral port space exhausted")

    # -- data path ----------------------------------------------------------

    def receive(self, pkt: Packet, iface: Interface) -> None:
        if pkt.dst == self.name:
            self._local_deliver(pkt)
        else:
            self.forward(pkt, iface)

    def _local_deliver(self, pkt: Packet) -> None:
        sockets = self._sockets
        handler = sockets.get((pkt.proto, pkt.dport, pkt.src, pkt.sport))
        if handler is None:
            handler = sockets.get((pkt.proto, pkt.dport, None, None))
        if handler is not None:
            handler(pkt)
        # Unmatched packets are silently discarded, as a host with no
        # listener would (we do not model RST generation for probes).
        free_packet(pkt)

    def forward(self, pkt: Packet, in_iface: Interface) -> None:
        pkt.ttl -= 1
        if pkt.ttl <= 0:
            free_packet(pkt)
            return
        out = self.route_for(pkt.dst)
        if out is None or out is in_iface:
            self.pkts_no_route += 1
            free_packet(pkt)
            return
        self.pkts_forwarded += 1
        out.transmit(pkt)

    # -- convenience -----------------------------------------------------------

    def send(self, pkt: Packet) -> bool:
        """Transmit a locally-generated packet via the routing table."""
        out = self.route_for(pkt.dst)
        if out is None:
            self.pkts_no_route += 1
            free_packet(pkt)
            return False
        return out.transmit(pkt)


class Host(Node):
    """An end system (server, phone, wired client)."""


class Router(Node):
    """Forwarding node with a finite internal bridge.

    All transit packets are serialised through ``bridge`` (a high-rate
    channel looping back into the egress lookup) before leaving, so heavy
    LAN traffic inflates queueing delay and drops for the video flow --
    the observable signature of the paper's *LAN congestion* fault.
    """

    def __init__(
        self,
        sim: SessionContext,
        name: str,
        bridge_rate_bps: float = 200e6,
        bridge_queue_bytes: int = 512 * 1024,
    ):
        super().__init__(sim, name)
        self.bridge = Channel(
            sim,
            f"{name}.bridge",
            rate_bps=bridge_rate_bps,
            delay=0.0,
            jitter=0.0,
            loss=0.0,
            queue_limit_bytes=bridge_queue_bytes,
        )
        self.bridge.connect(self._bridge_out)
        #: optional packet transform applied to transit traffic -- models
        #: a middlebox (MSS clamping, option stripping) on the path.
        self.middlebox = None

    def receive(self, pkt: Packet, iface: Interface) -> None:
        # Locally-terminated traffic still crosses the switching fabric
        # (an iperf blast *to* the router loads its data path, per the
        # LAN-congestion fault of Table 2).
        if pkt.dst == self.name:
            self.bridge.send(pkt)
        else:
            self.forward(pkt, iface)

    def forward(self, pkt: Packet, in_iface: Interface) -> None:
        pkt.ttl -= 1
        if pkt.ttl <= 0:
            free_packet(pkt)
            return
        self.bridge.send(pkt)

    def set_middlebox(self, transform) -> None:
        """Install (or clear, with ``None``) a transit-packet transform."""
        self.middlebox = transform

    def _bridge_out(self, pkt: Packet) -> None:
        if pkt.dst == self.name:
            self._local_deliver(pkt)
            return
        if self.middlebox is not None:
            pkt = self.middlebox(pkt) or pkt
        out = self.route_for(pkt.dst)
        if out is None:
            self.pkts_no_route += 1
            free_packet(pkt)
            return
        self.pkts_forwarded += 1
        out.transmit(pkt)


def wire(
    sim: SessionContext,
    a: Node,
    a_iface: str,
    b: Node,
    b_iface: str,
    forward: Channel,
    backward: Channel,
) -> None:
    """Connect two nodes with a pair of directed channels."""
    ia = a.interfaces.get(a_iface) or a.add_interface(a_iface)
    ib = b.interfaces.get(b_iface) or b.add_interface(b_iface)
    ia.attach_sender(forward)
    forward.connect(ib.deliver)
    ib.attach_sender(backward)
    backward.connect(ia.deliver)

"""Wired channels: serialization, queueing, propagation, loss and shaping.

A :class:`Channel` is one direction of a link.  It models

* a drop-tail FIFO queue bounded in bytes,
* serialization at the (runtime-adjustable) line rate,
* fixed propagation delay plus optional normally-distributed jitter, and
* i.i.d. random loss,

which is exactly the pipeline ``tc``/``netem`` applies in the paper's
testbed (Table 3).  :class:`NetemChannel` is a thin preset wrapper that
takes the Table 3 parameters directly.  Channels expose counters the
link-layer probe turns into features (utilisation, drops, queue delay).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.simnet.engine import SessionContext
from repro.simnet.packet import Packet, free_packet

Deliver = Callable[[Packet], None]


class Channel:
    """One direction of a point-to-point wired link."""

    def __init__(
        self,
        sim: SessionContext,
        name: str,
        rate_bps: float,
        delay: float = 0.0,
        jitter: float = 0.0,
        loss: float = 0.0,
        loss_burst: float = 1.0,
        queue_limit_bytes: int = 256 * 1024,
    ):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if loss_burst < 1.0:
            raise ValueError("loss_burst is a mean burst length, >= 1")
        self.sim = sim
        self.name = name
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.jitter = float(jitter)
        self.loss = float(loss)
        self.loss_burst = float(loss_burst)
        self._loss_state_bad = False
        self.queue_limit_bytes = int(queue_limit_bytes)
        self.receiver: Optional[Deliver] = None

        self._queue: deque[Packet] = deque()
        self._queued_bytes = 0
        self._transmitting = False
        self._last_arrival = 0.0

        # Counters consumed by the link/physical-layer probe.
        self.pkts_sent = 0
        self.bytes_sent = 0
        self.pkts_dropped_queue = 0
        self.pkts_dropped_loss = 0
        self.busy_time = 0.0
        self.queue_delay_sum = 0.0
        self._enqueue_times: deque[float] = deque()

    # -- configuration -----------------------------------------------------

    def connect(self, receiver: Deliver) -> None:
        """Set the delivery callback at the far end of the channel."""
        self.receiver = receiver

    def set_rate(self, rate_bps: float) -> None:
        """Re-shape the channel at runtime (``tc`` rate change)."""
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.rate_bps = float(rate_bps)

    def set_impairments(
        self,
        delay: Optional[float] = None,
        jitter: Optional[float] = None,
        loss: Optional[float] = None,
    ) -> None:
        """Adjust netem-style delay/jitter/loss at runtime."""
        if delay is not None:
            self.delay = float(delay)
        if jitter is not None:
            self.jitter = float(jitter)
        if loss is not None:
            self.loss = float(loss)

    # -- data path ----------------------------------------------------------

    def send(self, pkt: Packet) -> bool:
        """Enqueue ``pkt`` for transmission.

        Returns ``False`` when the packet was tail-dropped because the queue
        is full.  Random (netem) loss is applied after serialization so that
        lost packets still consume link capacity, as on a real wire.
        """
        if self.receiver is None:
            raise RuntimeError(f"channel {self.name} is not connected")
        size = pkt.size
        if self._queued_bytes + size > self.queue_limit_bytes:
            self.pkts_dropped_queue += 1
            free_packet(pkt)
            return False
        self._queue.append(pkt)
        self._enqueue_times.append(self.sim.now)
        self._queued_bytes += size
        if not self._transmitting:
            # Idle transmitter: the packet we just queued starts at once
            # (inline of the dequeue in _tx_done, minus the queue delay --
            # it is zero on this path by construction).
            self._queue.popleft()
            self._enqueue_times.popleft()
            sim = self.sim
            self._queued_bytes -= size
            self._transmitting = True
            tx_time = size * 8.0 / self.rate_bps
            self.busy_time += tx_time
            sim.post(tx_time, self._tx_done, pkt)
        return True

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def utilization(self, horizon: float) -> float:
        """Fraction of ``horizon`` seconds the transmitter was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    # -- internals -----------------------------------------------------------

    def _draw_loss(self) -> bool:
        """Gilbert-Elliott loss draw.

        With ``loss_burst == 1`` this degenerates to i.i.d. loss at rate
        ``loss``; larger values keep the average loss rate but group drops
        into bursts of that mean length, as observed on access links.
        """
        if self.loss <= 0.0:
            self._loss_state_bad = False
            return False
        if self.loss_burst <= 1.0:
            # Inline of sim.chance(loss): loss > 0 was checked above, and
            # the >= 1 short-circuit must not consume a draw.
            loss = self.loss
            return loss >= 1.0 or self.sim.rng.random() < loss
        leave_bad = 1.0 / self.loss_burst
        enter_bad = leave_bad * self.loss / (1.0 - self.loss)
        if self._loss_state_bad:
            if self.sim.chance(leave_bad):
                self._loss_state_bad = False
        else:
            if self.sim.chance(enter_bad):
                self._loss_state_bad = True
        return self._loss_state_bad

    def _tx_done(self, pkt: Packet) -> None:
        self.pkts_sent += 1
        self.bytes_sent += pkt.size
        sim = self.sim
        if self._draw_loss():
            self.pkts_dropped_loss += 1
            free_packet(pkt)
        else:
            latency = self.delay
            if self.jitter > 0.0:
                # Inline of sim.bounded_normal(latency, jitter, lo=0.0).
                draw = sim.rng.gauss(latency, self.jitter)
                latency = draw if draw > 0.0 else 0.0
            # Jitter must not reorder: a wire is FIFO even when delay varies
            # (netem can reorder, physical access links do not).
            now = sim.now
            arrival = now + latency
            last = self._last_arrival
            if arrival < last:
                arrival = last
            self._last_arrival = arrival
            sim.post(arrival - now, self.receiver, pkt)
        queue = self._queue
        if queue:
            next_pkt = queue.popleft()
            enqueued_at = self._enqueue_times.popleft()
            size = next_pkt.size
            self._queued_bytes -= size
            self.queue_delay_sum += sim.now - enqueued_at
            tx_time = size * 8.0 / self.rate_bps
            self.busy_time += tx_time
            sim.post(tx_time, self._tx_done, next_pkt)
        else:
            self._transmitting = False


class NetemChannel(Channel):
    """Channel preconfigured with the paper's Table 3 netem settings.

    >>> NetemChannel.dsl(sim, "wan.down").delay
    0.05
    """

    #: (rate_bps, delay, jitter, loss) presets derived from Table 3.
    PRESETS = {
        "dsl": (7.8e6, 0.050, 0.020, 0.0075),
        "mobile": (5.22e6, 0.100, 0.030, 0.014),
    }

    def __init__(self, sim: SessionContext, name: str, preset: str, **overrides):
        if preset not in self.PRESETS:
            raise ValueError(f"unknown netem preset {preset!r}")
        rate, delay, jitter, loss = self.PRESETS[preset]
        params = {
            "rate_bps": rate,
            "delay": delay,
            "jitter": jitter,
            "loss": loss,
            # ISP traces show clustered drops; bursts of ~3 keep the mean
            # loss of Table 3 while matching access-link behaviour.
            "loss_burst": 3.0,
        }
        params.update(overrides)
        super().__init__(sim, name, **params)
        self.preset = preset

    @classmethod
    def dsl(cls, sim: SessionContext, name: str, **overrides) -> "NetemChannel":
        return cls(sim, name, "dsl", **overrides)

    @classmethod
    def mobile(cls, sim: SessionContext, name: str, **overrides) -> "NetemChannel":
        return cls(sim, name, "mobile", **overrides)


class DuplexLink:
    """A pair of channels forming a full-duplex link between two nodes."""

    def __init__(self, forward: Channel, backward: Channel):
        self.forward = forward
        self.backward = backward

    def set_rate(self, rate_bps: float) -> None:
        self.forward.set_rate(rate_bps)
        self.backward.set_rate(rate_bps)

    def set_impairments(self, **kwargs) -> None:
        self.forward.set_impairments(**kwargs)
        self.backward.set_impairments(**kwargs)

"""Pluggable congestion control: Reno and CUBIC.

The paper's testbed ran in 2015, when Linux servers (and Android) defaulted
to CUBIC; reproducing healthy-session throughput over the Table 3 links
requires CUBIC's loss response rather than classic Reno halving.  Both are
provided; the endpoint delegates three hooks:

* ``on_ack(ep, newly_acked)``  -- congestion-avoidance growth,
* ``on_loss(ep)``              -- fast-recovery entry (returns new ssthresh),
* ``on_timeout(ep)``           -- RTO collapse.

All window arithmetic is in bytes; CUBIC's cubic function operates in MSS
units as in the RFC 8312 formulation.
"""

from __future__ import annotations

CUBIC_C = 0.4
CUBIC_BETA = 0.7


class RenoControl:
    """Classic Reno AIMD: +1 MSS per RTT, halve on loss."""

    name = "reno"

    def on_ack(self, ep, newly_acked: int) -> None:
        ep.cwnd += max(1, ep.mss * ep.mss // ep.cwnd)

    def on_loss(self, ep) -> int:
        return max(ep.pipe_size() // 2, 2 * ep.mss)

    def on_timeout(self, ep) -> int:
        return max(ep.flight_size // 2, 2 * ep.mss)


class CubicControl:
    """CUBIC (RFC 8312) with the TCP-friendly region.

    State is per-connection; create one instance per endpoint.
    """

    name = "cubic"

    def __init__(self):
        self.w_max = 0.0  # in MSS
        self.k = 0.0
        self.epoch_start = None
        self.ack_count = 0
        self.w_tcp = 0.0

    def _enter_epoch(self, ep) -> None:
        self.epoch_start = ep.sim.now
        cwnd_mss = ep.cwnd / ep.mss
        if cwnd_mss < self.w_max:
            self.k = ((self.w_max - cwnd_mss) / CUBIC_C) ** (1.0 / 3.0)
        else:
            self.k = 0.0
            self.w_max = cwnd_mss
        self.w_tcp = cwnd_mss
        self.ack_count = 0

    def on_ack(self, ep, newly_acked: int) -> None:
        if self.epoch_start is None:
            self._enter_epoch(ep)
        t = ep.sim.now - self.epoch_start
        target = CUBIC_C * (t - self.k) ** 3 + self.w_max  # MSS
        # TCP-friendly region keeps CUBIC at least as aggressive as Reno
        # in small-BDP regimes.
        rtt = ep.srtt or 0.1
        self.w_tcp += 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA) * (
            newly_acked / max(1, ep.cwnd)
        )
        target = max(target, self.w_tcp)
        cwnd_mss = ep.cwnd / ep.mss
        if target > cwnd_mss:
            # Approach the target over one RTT.
            increment = (target - cwnd_mss) / max(cwnd_mss, 1.0)
            ep.cwnd += int(max(1, increment * ep.mss * (newly_acked / ep.mss)))
        else:
            ep.cwnd += max(1, ep.mss * ep.mss // (100 * ep.cwnd))  # probe slowly

    def on_loss(self, ep) -> int:
        cwnd_mss = ep.cwnd / ep.mss
        # Fast convergence: remember a slightly lower peak when the peak
        # keeps shrinking.
        if cwnd_mss < self.w_max:
            self.w_max = cwnd_mss * (1.0 + CUBIC_BETA) / 2.0
        else:
            self.w_max = cwnd_mss
        self.epoch_start = None
        return max(int(ep.cwnd * CUBIC_BETA), 2 * ep.mss)

    def on_timeout(self, ep) -> int:
        self.epoch_start = None
        self.w_max = ep.cwnd / ep.mss
        return max(int(ep.cwnd * CUBIC_BETA), 2 * ep.mss)


def make_control(name: str):
    """Factory used by :class:`repro.simnet.tcp.TcpEndpoint`."""
    if name == "reno":
        return RenoControl()
    if name == "cubic":
        return CubicControl()
    raise ValueError(f"unknown congestion control {name!r}")

"""SACK-enabled Reno-style TCP over the simulated network.

The transport behaviour is what the paper's probes actually measure
(``tstat`` reconstructs RTT, retransmissions, out-of-order arrivals and
window dynamics from the wire), so this module implements a real protocol
machine rather than an analytic throughput model:

* three-way handshake with SYN retransmission and backoff,
* slow start / congestion avoidance,
* SACK loss recovery (scoreboard + pipe algorithm, RFC 6675 style) with a
  Reno fast-retransmit fallback,
* Jacobson RTO estimation with Karn's algorithm and exponential backoff,
* delayed ACKs with immediate duplicate ACKs on out-of-order data,
* receiver flow control with runtime-adjustable receive capacity
  (memory pressure on the phone shrinks the advertised window),
* FIN teardown.

Payload content is never materialised; applications exchange byte counts.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.simnet.congestion import make_control
from repro.simnet.engine import SessionContext
from repro.simnet.node import Node
from repro.simnet.packet import ACK, FIN, Packet, SYN, TCP

INITIAL_RTO = 1.0
MIN_RTO = 0.2
MAX_RTO = 60.0
MAX_SYN_RETRIES = 5
DELACK_TIMEOUT = 0.040
INITIAL_CWND_SEGMENTS = 10  # RFC 6928 initial window
DUPACK_THRESHOLD = 3
MAX_SACK_BLOCKS = 3


class _Segment:
    """Sender-side bookkeeping for one transmitted segment."""

    __slots__ = ("seq", "length", "tx_time", "retx_count", "is_fin", "sacked")

    def __init__(self, seq: int, length: int, tx_time: float, is_fin: bool = False):
        self.seq = seq
        self.length = length
        self.tx_time = tx_time
        self.retx_count = 0
        self.is_fin = is_fin
        self.sacked = False

    @property
    def end(self) -> int:
        return self.seq + self.length + (1 if self.is_fin else 0)


class TcpEndpoint:
    """One side of a TCP connection.

    Application hooks (all optional):

    ``on_established()``
        fired when the handshake completes.
    ``on_data(nbytes, now)``
        fired as in-order payload becomes readable.
    ``on_close()``
        fired when the peer's FIN has been received and all data delivered.
    ``on_fail(reason)``
        fired if the handshake never completes.
    """

    def __init__(
        self,
        sim: SessionContext,
        node: Node,
        local_port: int,
        peer: str,
        peer_port: int,
        mss: int = 1460,
        recv_capacity: int = 262144,
        wscale: int = 3,
        cc: str = "cubic",
    ):
        self.sim = sim
        self.node = node
        self.local_port = local_port
        self.peer = peer
        self.peer_port = peer_port
        self.mss = mss
        self.peer_mss = mss
        self.wscale = wscale
        self.cc = make_control(cc)

        self.state = "CLOSED"
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[int, float], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_fail: Optional[Callable[[str], None]] = None

        # --- sender state ---
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = INITIAL_CWND_SEGMENTS * mss
        self.ssthresh = 1 << 30
        self.peer_rwnd = 65535
        self.dupacks = 0
        self.in_recovery = False
        self.recover = 0
        self._send_buffer = 0  # bytes the app wants delivered
        self._fin_pending = False
        self._fin_sent = False
        self._segments: Dict[int, _Segment] = {}
        self._seg_order: deque[int] = deque()
        self._app_tag = ""
        # Incremental SACK scoreboard totals: _pipe_bytes is the byte sum
        # of un-sacked outstanding segments (the RFC 6675 pipe estimate),
        # _sacked_total the byte sum of sacked ones.  Kept in lockstep with
        # every _segments mutation so the per-packet window math is O(1).
        self._pipe_bytes = 0
        self._sacked_total = 0
        # Running max of ever-sacked segment ends since the last scoreboard
        # reset.  Valid whenever _sacked_total > 0: retired sacked segments
        # end at or below the cumulative ack, strictly below any segment
        # still outstanding, so the running max equals the live max.
        self._highest_sacked = 0

        # --- receiver state ---
        self.rcv_nxt = 0
        self.recv_capacity = recv_capacity
        self._ooo: Dict[int, int] = {}  # seq -> payload length
        self._peer_fin_seq: Optional[int] = None
        self._delack_pending = 0
        self._delack_event = None
        self._ts_recent = 0.0

        # --- RTT estimation ---
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        self._rto_event = None
        self._syn_retries = 0
        self._syn_time = 0.0

        # --- counters (ground truth; probes never read these) ---
        self.stat_retransmits = 0
        self.stat_timeouts = 0
        self.stat_fast_retransmits = 0
        self.stat_rtt_samples = 0
        self.bytes_delivered = 0
        self.bytes_acked = 0

        self.closed = False

    # ------------------------------------------------------------------ API

    def connect(self) -> None:
        """Client side: begin the three-way handshake."""
        if self.state != "CLOSED":
            raise RuntimeError("connect() on a non-closed endpoint")
        self.node.bind(TCP, self.local_port, self._on_packet, self.peer, self.peer_port)
        self.state = "SYN_SENT"
        self._send_syn()

    def accept_from_syn(self, syn: Packet) -> None:
        """Server side: respond to a received SYN."""
        self.state = "SYN_RCVD"
        self.peer_mss = syn.mss_opt or self.mss
        self.mss = min(self.mss, self.peer_mss)
        self.peer_rwnd = syn.wnd
        self.rcv_nxt = syn.seq + 1
        self.node.bind(TCP, self.local_port, self._on_packet, self.peer, self.peer_port)
        self._transmit(flags=SYN | ACK, mss_opt=self.mss, wscale_opt=self.wscale)
        self._arm_rto()

    def send(self, nbytes: int, tag: str = "") -> None:
        """Queue ``nbytes`` of application payload for transmission."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self._fin_pending or self._fin_sent:
            raise RuntimeError("send() after close()")
        if tag:
            self._app_tag = tag
        self._send_buffer += nbytes
        if self.state == "ESTABLISHED":
            self._try_send()

    def close(self) -> None:
        """Half-close: FIN is emitted once all queued payload is sent."""
        if self._fin_pending or self._fin_sent:
            return
        self._fin_pending = True
        if self.state == "ESTABLISHED":
            self._try_send()

    def abort(self) -> None:
        """Tear down immediately without FIN (used at session timeout)."""
        self._teardown()

    @property
    def flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    def set_recv_capacity(self, nbytes: int) -> None:
        """Shrink/grow the receive buffer (memory-pressure hook)."""
        self.recv_capacity = max(2 * self.mss, int(nbytes))

    # -------------------------------------------------------------- handshake

    def _send_syn(self) -> None:
        self._syn_time = self.sim.now
        self._transmit(flags=SYN, mss_opt=self.mss, wscale_opt=self.wscale)
        timeout = min(MAX_RTO, INITIAL_RTO * (2 ** self._syn_retries))
        self._rto_event = self.sim.schedule(timeout, self._syn_timeout)

    def _syn_timeout(self) -> None:
        self._syn_retries += 1
        if self._syn_retries > MAX_SYN_RETRIES:
            self._teardown()
            if self.on_fail:
                self.on_fail("handshake-timeout")
            return
        self._send_syn()

    # ------------------------------------------------------------- packet I/O

    def _transmit(
        self,
        payload: int = 0,
        seq: Optional[int] = None,
        flags: int = ACK,
        retx: bool = False,
        mss_opt: Optional[int] = None,
        wscale_opt: Optional[int] = None,
    ) -> None:
        pkt = Packet(
            src=self.node.name,
            dst=self.peer,
            sport=self.local_port,
            dport=self.peer_port,
            proto=TCP,
            payload_len=payload,
            seq=self.snd_nxt if seq is None else seq,
            ack=self.rcv_nxt,
            flags=flags,
            wnd=max(0, self.recv_capacity),
            sack=self._sack_blocks(),
            ts_val=self.sim.now,
            ts_ecr=self._ts_recent,
            mss_opt=mss_opt,
            wscale_opt=wscale_opt,
            created_at=self.sim.now,
            retx=retx,
            app_tag=self._app_tag,
        )
        self.node.send(pkt)

    def _sack_blocks(self) -> Tuple[Tuple[int, int], ...]:
        """Merge out-of-order data into at most MAX_SACK_BLOCKS blocks."""
        if not self._ooo:
            return ()
        spans = sorted(self._ooo.items())
        blocks: List[Tuple[int, int]] = []
        start, length = spans[0]
        end = start + length
        for seq, seg_len in spans[1:]:
            if seq <= end:
                end = max(end, seq + seg_len)
            else:
                blocks.append((start, end))
                start, end = seq, seq + seg_len
        blocks.append((start, end))
        return tuple(blocks[-MAX_SACK_BLOCKS:])

    def _on_packet(self, pkt: Packet) -> None:
        if self.closed:
            return
        if pkt.is_syn and pkt.is_ack:
            self._handle_synack(pkt)
            return
        if pkt.is_syn:
            # Duplicate SYN from peer (our SYN+ACK was lost): resend it.
            if self.state in ("SYN_RCVD", "ESTABLISHED"):
                self._transmit(flags=SYN | ACK, mss_opt=self.mss, wscale_opt=self.wscale)
            return
        if self.state == "SYN_RCVD" and pkt.is_ack:
            self._establish()
        if pkt.is_ack:
            self._handle_ack(pkt)
        if pkt.payload_len > 0 or pkt.is_fin:
            self._handle_data(pkt)

    def _handle_synack(self, pkt: Packet) -> None:
        if self.state != "SYN_SENT":
            return
        self._cancel_rto()
        self.peer_mss = pkt.mss_opt or self.mss
        self.mss = min(self.mss, self.peer_mss)
        self.cwnd = INITIAL_CWND_SEGMENTS * self.mss
        self.peer_rwnd = pkt.wnd
        self.rcv_nxt = pkt.seq + 1
        self.snd_una = self.snd_nxt = 1  # SYN consumed one sequence number
        self._take_rtt_sample(self.sim.now - self._syn_time)
        self._transmit(flags=ACK)
        self._establish()

    def _establish(self) -> None:
        if self.state == "ESTABLISHED":
            return
        prev = self.state
        self.state = "ESTABLISHED"
        if prev == "SYN_RCVD":
            self._cancel_rto()
            self.snd_una = self.snd_nxt = 1
        if self.on_established:
            self.on_established()
        self._try_send()

    # ---------------------------------------------------------------- sending

    def pipe_size(self) -> int:
        """Public alias of the SACK pipe estimate (used by CC modules)."""
        return self._pipe()

    def _pipe(self) -> int:
        """Estimate of bytes currently in flight (SACK pipe)."""
        return self._pipe_bytes

    def _usable_window(self) -> int:
        window = self.peer_rwnd
        if window < self.mss:
            window = self.mss
        if self.cwnd < window:
            window = self.cwnd
        usable = window - self._pipe_bytes
        return usable if usable > 0 else 0

    def _try_send(self) -> None:
        if self.state != "ESTABLISHED":
            return
        sent_any = False
        if self.in_recovery:
            sent_any |= self._sack_retransmit()
        while self._send_buffer > 0:
            usable = self._usable_window()
            if usable < min(self.mss, self._send_buffer):
                break
            chunk = min(self.mss, self._send_buffer, usable)
            seg = _Segment(self.snd_nxt, chunk, self.sim.now)
            self._segments[seg.seq] = seg
            self._seg_order.append(seg.seq)
            self._pipe_bytes += chunk
            self._transmit(payload=chunk, seq=seg.seq)
            self.snd_nxt += chunk
            self._send_buffer -= chunk
            sent_any = True
        if (
            self._fin_pending
            and not self._fin_sent
            and self._send_buffer == 0
            and self._usable_window() > 0
        ):
            seg = _Segment(self.snd_nxt, 0, self.sim.now, is_fin=True)
            self._segments[seg.seq] = seg
            self._seg_order.append(seg.seq)
            self._transmit(payload=0, seq=seg.seq, flags=FIN | ACK)
            self.snd_nxt += 1
            self._fin_sent = True
            sent_any = True
        if sent_any and self._rto_event is None:
            self._arm_rto()

    def _sack_retransmit(self) -> bool:
        """Retransmit scoreboard holes while the pipe allows (RFC 6675)."""
        sent = False
        highest_sacked = self._highest_sacked if self._sacked_total else 0
        if highest_sacked == 0:
            return False
        for seq in list(self._seg_order):
            seg = self._segments.get(seq)
            if seg is None or seg.sacked:
                continue
            if seg.retx_count > 0 and not self._retx_looks_lost(seg):
                continue
            if seg.end + DUPACK_THRESHOLD * self.mss > highest_sacked:
                break  # not yet judged lost
            if self._pipe_bytes + seg.length > self.cwnd:
                break
            self._retransmit_segment(seg)
            sent = True
        return sent

    def _retx_looks_lost(self, seg: _Segment) -> bool:
        """Heuristic lost-retransmission detection (saves an RTO)."""
        wait = 1.5 * (self.srtt or MIN_RTO)
        return self.sim.now - seg.tx_time > wait

    def _retransmit_segment(self, seg: _Segment) -> None:
        seg.retx_count += 1
        seg.tx_time = self.sim.now
        self.stat_retransmits += 1
        flags = (FIN | ACK) if seg.is_fin else ACK
        self._transmit(payload=seg.length, seq=seg.seq, flags=flags, retx=True)

    # ------------------------------------------------------------------- ACKs

    def _handle_ack(self, pkt: Packet) -> None:
        self.peer_rwnd = pkt.wnd
        ack = pkt.ack
        sack_advanced = self._apply_sack(pkt.sack)
        if ack > self.snd_una:
            newly_acked = ack - self.snd_una
            self.bytes_acked += newly_acked
            if pkt.ts_ecr > 0.0:
                self._take_rtt_sample(self.sim.now - pkt.ts_ecr)
            self._retire_segments(ack)
            self.snd_una = ack
            self.dupacks = 0
            if self.in_recovery:
                if ack >= self.recover:
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                else:
                    # Partial ack: keep recovering; retransmit the next hole.
                    first = self._first_unacked_segment()
                    if first is not None and not first.sacked and (
                        first.retx_count == 0 or self._retx_looks_lost(first)
                    ):
                        self._retransmit_segment(first)
            else:
                if self.cwnd < self.ssthresh:
                    self.cwnd += min(newly_acked, self.mss)
                else:
                    self.cc.on_ack(self, newly_acked)
            if self.snd_una == self.snd_nxt:
                self._cancel_rto()
                if self._fin_sent:
                    self._teardown_if_done()
            else:
                self._arm_rto(restart=True)
            self._try_send()
        elif ack == self.snd_una and self.flight_size > 0 and pkt.payload_len == 0:
            self.dupacks += 1
            lost = (
                self.dupacks >= DUPACK_THRESHOLD
                or self._sacked_bytes() >= DUPACK_THRESHOLD * self.mss
            )
            if lost and not self.in_recovery:
                self._enter_recovery()
            elif self.in_recovery and sack_advanced:
                self._try_send()

    def _apply_sack(self, blocks: Tuple[Tuple[int, int], ...]) -> bool:
        advanced = False
        for start, end in blocks:
            for seq in self._seg_order:
                seg = self._segments.get(seq)
                if seg is None or seg.sacked:
                    continue
                if seg.seq >= start and seg.end <= end:
                    seg.sacked = True
                    self._pipe_bytes -= seg.length
                    self._sacked_total += seg.length
                    if seg.end > self._highest_sacked:
                        self._highest_sacked = seg.end
                    advanced = True
                elif seg.seq >= end:
                    break
        return advanced

    def _sacked_bytes(self) -> int:
        return self._sacked_total

    def _first_unacked_segment(self) -> Optional[_Segment]:
        while self._seg_order:
            seg = self._segments.get(self._seg_order[0])
            if seg is not None:
                return seg
            self._seg_order.popleft()
        return None

    def _retire_segments(self, ack: int) -> None:
        while self._seg_order:
            seq = self._seg_order[0]
            seg = self._segments.get(seq)
            if seg is None:
                self._seg_order.popleft()
                continue
            if seg.end > ack:
                break
            self._seg_order.popleft()
            del self._segments[seq]
            if seg.sacked:
                self._sacked_total -= seg.length
            else:
                self._pipe_bytes -= seg.length

    def _enter_recovery(self) -> None:
        self.stat_fast_retransmits += 1
        self.ssthresh = self.cc.on_loss(self)
        self.cwnd = self.ssthresh
        self.recover = self.snd_nxt
        self.in_recovery = True
        first = self._first_unacked_segment()
        if first is not None and not first.sacked:
            self._retransmit_segment(first)
        self._try_send()

    # -------------------------------------------------------------------- RTO

    def _take_rtt_sample(self, rtt: float) -> None:
        self.stat_rtt_samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = min(MAX_RTO, max(MIN_RTO, self.srtt + 4.0 * self.rttvar))

    def _arm_rto(self, restart: bool = False) -> None:
        if self._rto_event is not None:
            if not restart:
                return
            self._rto_event.cancel()
        self._rto_event = self.sim.schedule(self.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.snd_una == self.snd_nxt or self.closed:
            return
        self.stat_timeouts += 1
        self.ssthresh = self.cc.on_timeout(self)
        self.cwnd = self.mss
        self.in_recovery = False
        self.dupacks = 0
        # RTO implies the scoreboard may be stale (reneging-safe reset).
        for seg in self._segments.values():
            seg.sacked = False
            seg.retx_count = 0
        self._pipe_bytes += self._sacked_total
        self._sacked_total = 0
        self._highest_sacked = 0
        self.rto = min(MAX_RTO, self.rto * 2.0)
        first = self._first_unacked_segment()
        if first is not None:
            self._retransmit_segment(first)
        self._arm_rto()

    # -------------------------------------------------------------- receiving

    def _handle_data(self, pkt: Packet) -> None:
        seq = pkt.seq
        length = pkt.payload_len
        if pkt.is_fin:
            self._peer_fin_seq = seq + length
        if length > 0:
            if seq + length <= self.rcv_nxt:
                # Complete duplicate: immediately re-ack.
                self._send_ack(now=True)
                return
            if seq > self.rcv_nxt:
                self._ooo[seq] = max(self._ooo.get(seq, 0), length)
                self._send_ack(now=True)  # duplicate ACK signals the hole
                return
            # In-order (possibly partially duplicate) delivery.
            self._ts_recent = pkt.ts_val
            delivered = seq + length - self.rcv_nxt
            self.rcv_nxt = seq + length
            delivered += self._drain_ooo()
            self.bytes_delivered += delivered
            if self.on_data:
                self.on_data(delivered, self.sim.now)
            self._send_ack(now=False)
        if self._peer_fin_seq is not None and self.rcv_nxt >= self._peer_fin_seq:
            self.rcv_nxt = self._peer_fin_seq + 1
            self._send_ack(now=True)
            if self.on_close:
                self.on_close()
            self._teardown_if_done()
            return

    def _drain_ooo(self) -> int:
        drained = 0
        while self._ooo:
            seg = self._ooo.pop(self.rcv_nxt, None)
            if seg is None:
                # Handle overlap: any buffered segment starting below rcv_nxt.
                overlapping = [s for s in self._ooo if s < self.rcv_nxt]
                progressed = False
                for s in overlapping:
                    length = self._ooo.pop(s)
                    if s + length > self.rcv_nxt:
                        drained += s + length - self.rcv_nxt
                        self.rcv_nxt = s + length
                        progressed = True
                if not progressed:
                    break
            else:
                drained += seg
                self.rcv_nxt += seg
        return drained

    def _send_ack(self, now: bool) -> None:
        if now:
            self._flush_ack()
            return
        self._delack_pending += 1
        if self._delack_pending >= 2:
            self._flush_ack()
        elif self._delack_event is None:
            self._delack_event = self.sim.schedule(DELACK_TIMEOUT, self._flush_ack)

    def _flush_ack(self) -> None:
        if self.closed:
            return
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
        self._delack_pending = 0
        self._transmit(flags=ACK)

    # ---------------------------------------------------------------- teardown

    def _teardown_if_done(self) -> None:
        sender_done = self._fin_sent and self.snd_una == self.snd_nxt
        receiver_done = (
            self._peer_fin_seq is not None and self.rcv_nxt > self._peer_fin_seq
        )
        if sender_done and receiver_done:
            self._teardown()

    def _teardown(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.state = "CLOSED"
        self._cancel_rto()
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
        self.node.unbind(TCP, self.local_port, self.peer, self.peer_port)


class TcpServer:
    """Listening socket: spawns a :class:`TcpEndpoint` per inbound SYN."""

    def __init__(
        self,
        sim: SessionContext,
        node: Node,
        port: int,
        on_connection: Callable[[TcpEndpoint], None],
        mss: int = 1460,
        recv_capacity: int = 262144,
        cc: str = "cubic",
    ):
        self.sim = sim
        self.node = node
        self.port = port
        self.on_connection = on_connection
        self.mss = mss
        self.recv_capacity = recv_capacity
        self.cc_name = cc
        self.connections: list[TcpEndpoint] = []
        node.bind(TCP, port, self._on_syn)

    def _on_syn(self, pkt: Packet) -> None:
        if not pkt.is_syn or pkt.is_ack:
            return
        endpoint = TcpEndpoint(
            self.sim,
            self.node,
            self.port,
            pkt.src,
            pkt.sport,
            mss=self.mss,
            recv_capacity=self.recv_capacity,
            cc=self.cc_name,
        )
        self.connections.append(endpoint)
        self.on_connection(endpoint)
        endpoint.accept_from_syn(pkt)

    def close(self) -> None:
        self.node.unbind(TCP, self.port)


def open_connection(
    sim: SessionContext,
    client: Node,
    server: str,
    server_port: int,
    mss: int = 1460,
    recv_capacity: int = 262144,
    cc: str = "cubic",
) -> TcpEndpoint:
    """Create a client endpoint bound to an ephemeral port (not yet connected)."""
    return TcpEndpoint(
        sim,
        client,
        client.ephemeral_port(),
        server,
        server_port,
        mss=mss,
        recv_capacity=recv_capacity,
        cc=cc,
    )

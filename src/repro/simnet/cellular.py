"""Cellular (3G/HSPA-era) access model.

The wild deployment of Section 6.2 streams mostly over 3G, and the paper
suggests that detection could be improved "by introducing more VPs (e.g.,
on 3G RNCs)".  This module provides the access substrate for that
extension:

* a :class:`CellularCell` with a shared downlink capacity, background cell
  load, and per-UE channel quality derived from RSCP (the cellular RSSI);
* per-UE radio bearers with RNC-side queues, CQI-dependent instantaneous
  rates and HARQ-style retransmissions at low quality;
* mobility-driven signal wander and **handovers**: when the serving
  signal degrades, the UE is handed to a neighbouring cell after a short
  outage, and its signal is redrawn.

The interface mirrors :class:`repro.simnet.wireless.WifiMedium` so a
testbed can attach phone/RNC interfaces the same way.  An RNC-side probe
(:class:`repro.probes.rnc.RncProbe`) exposes the per-UE state that a
mobile operator could measure.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Optional

from repro.simnet.engine import SessionContext
from repro.simnet.node import Interface
from repro.simnet.packet import Packet

#: (min RSCP dBm, CQI class, share of cell capacity a sole user gets)
CQI_TABLE = [
    (-115.0, 1, 0.08),
    (-108.0, 3, 0.2),
    (-102.0, 6, 0.4),
    (-96.0, 9, 0.65),
    (-88.0, 12, 0.85),
    (-80.0, 15, 1.0),
]

HANDOVER_RSCP = -110.0
HANDOVER_OUTAGE_S = (0.3, 1.2)
HARQ_MAX_RETX = 3
FRAME_OVERHEAD_S = 2e-3  # TTI-ish per-transmission overhead


def cqi_for_rscp(rscp_dbm: float):
    """Map received signal code power to (CQI class, capacity share)."""
    best = CQI_TABLE[0]
    for entry in CQI_TABLE:
        if rscp_dbm >= entry[0]:
            best = entry
    return best[1], best[2]


def block_error_prob(rscp_dbm: float) -> float:
    """First-transmission BLER; HARQ recovers most of it."""
    if rscp_dbm >= -95.0:
        return 0.02
    return min(0.7, 0.02 + 0.04 * (-95.0 - rscp_dbm))


class CellularUe:
    """One user equipment attached to the cell."""

    def __init__(
        self,
        cell: "CellularCell",
        name: str,
        iface: Interface,
        base_rscp: float = -85.0,
        shadow_sigma: float = 3.0,
        queue_limit_bytes: int = 384 * 1024,
    ):
        self.cell = cell
        self.name = name
        self.iface = iface
        self.base_rscp = base_rscp
        self.shadow_sigma = shadow_sigma
        self.queue_limit_bytes = queue_limit_bytes
        self.queue: deque[Packet] = deque()
        self.queued_bytes = 0
        self.sending = False
        self.in_outage = False

        self._shadow = 0.0
        self._shadow_updated = 0.0

        # RNC-observable counters.
        self.pdus_tx = 0
        self.harq_retx = 0
        self.pdu_drops = 0
        self.queue_drops = 0
        self.handovers = 0
        self.rate_sum = 0.0
        self.rate_samples = 0
        self.airtime = 0.0

    # -- radio state ---------------------------------------------------------

    def rscp(self, now: float) -> float:
        """Serving-cell signal with OU shadowing (the cellular RSSI)."""
        dt = now - self._shadow_updated
        if dt > 0:
            theta = 0.3
            decay = math.exp(-theta * dt)
            std = self.shadow_sigma * math.sqrt(max(0.0, 1.0 - decay * decay))
            self._shadow = self._shadow * decay + self.cell.sim.normal(0.0, std)
            self._shadow_updated = now
        return self.base_rscp + self._shadow

    def current_rate(self, now: float) -> float:
        """Instantaneous downlink rate granted by the scheduler."""
        _cqi, share = cqi_for_rscp(self.rscp(now))
        free = max(0.05, 1.0 - self.cell.background_load)
        return max(32e3, self.cell.capacity_bps * share * free)

    @property
    def mean_rate(self) -> float:
        if self.rate_samples == 0:
            return 0.0
        return self.rate_sum / self.rate_samples


class _UePort:
    """Outbound path of the phone: uplink through the cell."""

    def __init__(self, cell: "CellularCell", ue: CellularUe):
        self.cell = cell
        self.ue = ue

    def send(self, pkt: Packet) -> bool:
        return self.cell.send_uplink(self.ue, pkt)


class _RncPort:
    """Outbound path of the RNC towards its UEs (downlink)."""

    def __init__(self, cell: "CellularCell"):
        self.cell = cell

    def send(self, pkt: Packet) -> bool:
        ue = self.cell.ues.get(pkt.dst)
        if ue is None:
            return False
        return self.cell.send_downlink(ue, pkt)


class CellularCell:
    """A 3G cell: shared capacity, per-UE bearers, handovers."""

    def __init__(
        self,
        sim: SessionContext,
        capacity_bps: float = 7.2e6,
        uplink_bps: float = 1.5e6,
        background_load: float = 0.3,
        uplink_latency: float = 0.035,
        downlink_latency: float = 0.035,
    ):
        self.sim = sim
        self.capacity_bps = capacity_bps
        self.uplink_bps = uplink_bps
        self.background_load = min(0.9, max(0.0, background_load))
        self.uplink_latency = uplink_latency
        self.downlink_latency = downlink_latency
        self.ues: Dict[str, CellularUe] = {}
        self.rnc_iface: Optional[Interface] = None
        self._uplink_busy_until = 0.0
        #: signal range of neighbouring cells: a handover redraws the UE's
        #: base RSCP from here.  Poor-coverage areas narrow this range down.
        self.handover_rscp_range = (-100.0, -75.0)

    # -- topology ----------------------------------------------------------

    def attach_rnc(self, iface: Interface) -> None:
        """The RNC side: delivers uplink traffic into the core network."""
        self.rnc_iface = iface
        iface.attach_sender(_RncPort(self))

    def add_ue(
        self,
        name: str,
        iface: Interface,
        base_rscp: float = -85.0,
        shadow_sigma: float = 3.0,
    ) -> CellularUe:
        if name in self.ues:
            raise ValueError(f"duplicate UE {name!r}")
        ue = CellularUe(self, name, iface, base_rscp=base_rscp,
                        shadow_sigma=shadow_sigma)
        self.ues[name] = ue
        iface.attach_sender(_UePort(self, ue))
        return ue

    def set_background_load(self, load: float) -> None:
        self.background_load = min(0.9, max(0.0, load))

    # -- downlink -----------------------------------------------------------

    def send_downlink(self, ue: CellularUe, pkt: Packet) -> bool:
        if ue.queued_bytes + pkt.size > ue.queue_limit_bytes:
            ue.queue_drops += 1
            return False
        ue.queue.append(pkt)
        ue.queued_bytes += pkt.size
        if not ue.sending and not ue.in_outage:
            self._serve_next(ue)
        return True

    def _serve_next(self, ue: CellularUe) -> None:
        if not ue.queue or ue.in_outage:
            ue.sending = False
            return
        ue.sending = True
        pkt = ue.queue.popleft()
        ue.queued_bytes -= pkt.size
        self._transmit(ue, pkt, attempt=0)

    def _transmit(self, ue: CellularUe, pkt: Packet, attempt: int) -> None:
        now = self.sim.now
        rscp = ue.rscp(now)
        if rscp < HANDOVER_RSCP and not ue.in_outage:
            self._handover(ue, pkt)
            return
        rate = ue.current_rate(now)
        ue.rate_sum += rate
        ue.rate_samples += 1
        airtime = FRAME_OVERHEAD_S + pkt.size * 8.0 / rate
        ue.airtime += airtime
        failed = self.sim.chance(block_error_prob(rscp))
        self.sim.schedule(airtime, self._tx_done, ue, pkt, attempt, failed)

    def _tx_done(self, ue: CellularUe, pkt: Packet, attempt: int, failed: bool) -> None:
        if failed:
            ue.harq_retx += 1
            if attempt + 1 > HARQ_MAX_RETX:
                ue.pdu_drops += 1
                self._serve_next(ue)
            else:
                self._transmit(ue, pkt, attempt + 1)
            return
        ue.pdus_tx += 1
        self.sim.schedule(self.downlink_latency, ue.iface.deliver, pkt)
        self._serve_next(ue)

    # -- uplink --------------------------------------------------------------

    def send_uplink(self, ue: CellularUe, pkt: Packet) -> bool:
        """Shared uplink: FIFO serialization at the uplink rate."""
        if self.rnc_iface is None:
            raise RuntimeError("cell has no RNC attached")
        if ue.in_outage:
            return False
        now = self.sim.now
        start = max(now, self._uplink_busy_until)
        tx_time = pkt.size * 8.0 / self.uplink_bps
        self._uplink_busy_until = start + tx_time
        delay = (start - now) + tx_time + self.uplink_latency
        self.sim.schedule(delay, self.rnc_iface.deliver, pkt)
        return True

    # -- mobility ------------------------------------------------------------

    def _handover(self, ue: CellularUe, pending: Optional[Packet]) -> None:
        """Hand the UE to a neighbour cell: outage, then signal redraw."""
        ue.in_outage = True
        ue.handovers += 1
        if pending is not None:
            ue.queue.appendleft(pending)
            ue.queued_bytes += pending.size
        outage = self.sim.uniform(*HANDOVER_OUTAGE_S)
        self.sim.schedule(outage, self._handover_done, ue)

    def _handover_done(self, ue: CellularUe) -> None:
        ue.in_outage = False
        # The new serving cell is as good as the local coverage allows.
        ue.base_rscp = self.sim.uniform(*self.handover_rscp_range)
        ue._shadow = 0.0
        ue.sending = False
        if ue.queue:
            self._serve_next(ue)

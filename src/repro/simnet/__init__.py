"""Discrete-event network simulator used as the testbed substrate.

The paper's testbed (Fig. 2) consists of a video server, a router/AP and
Android phones, with ``tc``/``netem`` emulating DSL and cellular WAN links.
This package provides the equivalent substrate in simulation:

* :mod:`repro.simnet.engine` -- the discrete-event loop and seeded RNGs.
* :mod:`repro.simnet.packet` -- packet and flow primitives.
* :mod:`repro.simnet.link` -- wired channels with rate/delay/loss/queueing
  (the netem equivalent) and runtime-adjustable shaping.
* :mod:`repro.simnet.node` -- hosts, the router (with a shared bridge), NICs
  and passive taps for probes.
* :mod:`repro.simnet.tcp` -- a Reno-style TCP implementation (handshake,
  slow start, congestion avoidance, fast retransmit/recovery, RTO).
* :mod:`repro.simnet.udp` -- iperf-style UDP traffic sources and sinks.
* :mod:`repro.simnet.wireless` -- the 802.11 medium: path loss, RSSI,
  rate adaptation, airtime sharing, interference and link-layer retries.
"""

from repro.simnet.engine import (
    Simulator,
    SessionContext,
    EventLoop,
    Event,
    CalendarScheduler,
    ReferenceScheduler,
    SCHEDULERS,
    make_scheduler,
)
from repro.simnet.packet import (
    Packet,
    FlowKey,
    TCP,
    UDP,
    free_packet,
    sweep_freed_packets,
    pool_stats,
)
from repro.simnet.rng import (
    BatchedRandom,
    RngBlockAllocator,
    make_random,
    resolve_rng_mode,
)
from repro.simnet.link import Channel, NetemChannel, DuplexLink
from repro.simnet.node import Node, Host, Router, Interface, Tap
from repro.simnet.tcp import TcpEndpoint, TcpServer, open_connection
from repro.simnet.udp import UdpSender, UdpSink
from repro.simnet.wireless import WifiMedium, WifiStation, RATE_TABLE
from repro.simnet.cellular import CellularCell, CellularUe
from repro.simnet.trace import PacketTrace, TraceRecorder

__all__ = [
    "Simulator",
    "SessionContext",
    "EventLoop",
    "Event",
    "CalendarScheduler",
    "ReferenceScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "BatchedRandom",
    "RngBlockAllocator",
    "make_random",
    "resolve_rng_mode",
    "Packet",
    "FlowKey",
    "TCP",
    "UDP",
    "free_packet",
    "sweep_freed_packets",
    "pool_stats",
    "Channel",
    "NetemChannel",
    "DuplexLink",
    "Node",
    "Host",
    "Router",
    "Interface",
    "Tap",
    "TcpEndpoint",
    "TcpServer",
    "open_connection",
    "UdpSender",
    "UdpSink",
    "WifiMedium",
    "WifiStation",
    "RATE_TABLE",
    "CellularCell",
    "CellularUe",
    "PacketTrace",
    "TraceRecorder",
]

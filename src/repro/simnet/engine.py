"""Discrete-event simulation engine.

The engine is split along the session boundary:

* :class:`EventLoop` owns everything *shared*: the pending-event queue
  (scheduler), the global sequence counter, the recycled-:class:`Event`
  free list and the processed-event counter.  One loop can interleave
  many independent sessions.
* :class:`SessionContext` owns everything *per-session*: the virtual
  clock and the seeded random streams.  Every stochastic component in
  the testbed (loss draws, netem jitter, background traffic
  inter-arrivals, RSSI shadowing, ...) pulls from its context's seeded
  generators so that a campaign is fully reproducible from its seed, as
  required by the evaluation pipeline.
* :class:`Simulator` is the solo convenience: a ``SessionContext`` that
  builds and owns a private ``EventLoop`` — the original single-session
  API, unchanged for existing callers.

Every queue entry is tagged with its owning context; dispatch advances
the *owner's* clock, so events from different sessions coexist in one
queue while each session observes exactly the clock it would observe
running alone.  Per-session event order is preserved because the global
sequence counter is monotone in creation order: restricted to one
session, ``(time, seq)`` order equals the order a private loop would
produce.  :meth:`EventLoop.drain` runs many session plan generators to
completion on one shared queue under that contract.

Two interchangeable schedulers implement the pending queue:

* :class:`CalendarScheduler` (the default) -- a calendar queue: a ring of
  time buckets, each an independent binary heap keyed on ``(time, seq)``,
  plus an overflow heap for events beyond the ring's horizon.  Most pushes
  and pops touch a heap of only the events sharing one bucket, and the
  heap entries are plain tuples so ordering comparisons run in C.
* :class:`ReferenceScheduler` -- the original single binary heap, kept as
  the semantic reference for differential testing.

Both order events by ``(time, seq)``: among equal timestamps, schedule
(FIFO) order wins, and the two schedulers are observably identical --
the equivalence suite pins campaign records as bit-identical across them.

Scheduling has two tiers.  :meth:`SessionContext.schedule` returns a
cancellable :class:`Event` handle; :meth:`SessionContext.post` is the
fire-and-forget fast path used by the data plane (packet serialization,
delivery, forwarding), which queues a bare ``(time, seq, bucket, fn,
args, ctx)`` tuple with no handle object at all.  The dispatch loop
lives in the scheduler so the hot path runs over locals; both tiers
share one sequence counter, so FIFO ordering across tiers is exact.

Cancelled events are purged lazily, but each scheduler counts its dead
entries and compacts the queue when more than half the entries are
cancelled, so a workload that schedules and cancels many timers (TCP RTO
rearming, probe sampling) keeps the queue bounded by the live event count.
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
import sys
from sys import getrefcount
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.simnet.packet import _graveyard as _packet_graveyard
from repro.simnet.packet import sweep_freed_packets
from repro.simnet.rng import RngBlockAllocator, make_random, resolve_rng_mode

#: events recycled through the per-loop free list (steady state keeps
#: allocation near zero; the cap only bounds a burst of simultaneous events)
_EVENT_POOL_MAX = 256

#: calendar geometry: 512 buckets of 0.5 ms cover a 256 ms horizon, sized
#: for the testbed's event mix (sub-ms wifi slots and serialization times,
#: tens-of-ms propagation and delayed-ACK timers); RTOs and 1 s probe
#: timers live in the overflow heap and migrate in one revolution early.
_BUCKET_WIDTH_S = 5e-4
_N_BUCKETS = 512

#: bucket-number stand-in for "no limit" (compares above any real bucket)
_MAX_K = sys.maxsize

# A queue entry is (time, seq, bucket, fn_or_event, args_or_None, ctx): a
# plain Event for the cancellable tier (args is None), or the callback and
# its argument tuple directly for the post() tier, plus the owning
# SessionContext whose clock the dispatch loop advances.  ``seq`` is
# unique, so heap comparisons never look past it and ordering is exactly
# (time, seq).
_SchedEntry = Tuple[float, int, int, Any, Optional[tuple], "SessionContext"]


class Event:
    """A scheduled callback; cancellable handle returned by ``schedule``."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_queue")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._queue = None  # owning scheduler while queued (for accounting)

    def cancel(self) -> None:
        """Prevent the callback from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        self.args = ()
        queue = self._queue
        if queue is not None:
            queue.note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {state})"


def _entry_live(entry: _SchedEntry) -> bool:
    return entry[4] is not None or not entry[3].cancelled


class ReferenceScheduler:
    """The original single binary heap, kept for differential testing."""

    name = "reference"

    def __init__(self) -> None:
        self._heap: List[_SchedEntry] = []
        self._cancelled = 0

    def insert(
        self,
        time: float,
        seq: int,
        fn: Any,
        args: Optional[tuple],
        ctx: "SessionContext",
    ) -> None:
        heapq.heappush(self._heap, (time, seq, 0, fn, args, ctx))

    def make_post(self, ctx: "SessionContext", seq: Any) -> Callable[..., None]:
        """Build the fire-and-forget fast path bound to this queue.

        The returned closure is installed as ``ctx.post``: it fuses the
        sequence draw and the heap push into one call frame.  Capturing
        the heap list is safe because :meth:`compact` rebuilds in place.
        """
        heap = self._heap
        heappush = heapq.heappush
        seq_next = seq.__next__

        def post(delay: float, fn: Callable, *args: Any) -> None:
            if delay < 0:
                raise ValueError(f"cannot schedule in the past (delay={delay})")
            heappush(heap, (ctx.now + delay, seq_next(), 0, fn, args, ctx))

        return post

    def _run(self, loop: "EventLoop", limit: float) -> int:
        """Dispatch events with ``time <= limit``; returns the count run."""
        heap = self._heap
        heappop = heapq.heappop
        refcount = getrefcount
        pool_max = _EVENT_POOL_MAX
        free = loop._free_events
        grave = _packet_graveyard
        sweep = sweep_freed_packets
        n = 0
        while loop._running and heap:
            head = heap[0]
            if head[0] > limit:
                break
            heappop(heap)
            fn = head[3]
            args = head[4]
            if args is None:
                event = fn
                event._queue = None
                if event.cancelled:
                    self._cancelled -= 1
                    head = None
                    if len(free) < pool_max and refcount(event) == 2:
                        free.append(event)
                    continue
                head[5].now = head[0]
                fn = event.fn
                args = event.args
                event.fn = None
                event.args = ()
                head = None
                fn(*args)
                n += 1
                args = None
                if len(free) < pool_max and refcount(event) == 2:
                    free.append(event)
            else:
                head[5].now = head[0]
                head = None
                fn(*args)
                n += 1
                args = None
            if grave:
                sweep()
        return n

    def note_cancel(self) -> None:
        self._cancelled += 1
        if self._cancelled > 32 and self._cancelled * 2 > len(self._heap):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant."""
        # In-place so dispatch loops holding a reference stay valid.
        self._heap[:] = [e for e in self._heap if _entry_live(e)]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def pending(self) -> int:
        return len(self._heap) - self._cancelled

    def __len__(self) -> int:
        return len(self._heap)


class CalendarScheduler:
    """Calendar queue: bucketed near-future ring + far-future overflow heap.

    The third entry field holds the event's absolute bucket number
    ``k = int(time / width)`` (monotone in ``time``, so bucket order can
    never contradict time order).  The ring covers buckets
    ``[cursor, cursor + n_buckets)``; later events wait in ``_far`` and
    migrate into the ring one revolution ahead of the cursor.  When the
    ring empties the cursor jumps directly to the far head's bucket, so
    sparse workloads never scan empty buckets.

    Multi-session note: sessions behind the global clock (their barrier
    has not advanced yet) may insert at times whose bucket the cursor
    already passed; the ``k < cursor`` clamp files those in the current
    bucket, where the per-bucket heap still orders them by ``(time,
    seq)`` ahead of later-timed entries.
    """

    name = "calendar"

    def __init__(
        self, bucket_width: float = _BUCKET_WIDTH_S, n_buckets: int = _N_BUCKETS
    ) -> None:
        if bucket_width <= 0 or n_buckets < 2:
            raise ValueError("calendar needs a positive width and >= 2 buckets")
        self._width = float(bucket_width)
        self._nb = int(n_buckets)
        self._buckets: List[List[_SchedEntry]] = [[] for _ in range(self._nb)]
        self._far: List[_SchedEntry] = []
        self._cursor = 0  # absolute bucket number currently being drained
        self._ring_n = 0  # entries (live + cancelled) in the ring
        self._far_n = 0
        self._cancelled = 0

    def insert(
        self,
        time: float,
        seq: int,
        fn: Any,
        args: Optional[tuple],
        ctx: "SessionContext",
    ) -> None:
        k = int(time / self._width)
        cursor = self._cursor
        if k < cursor:
            # Reachable through float rounding at a bucket boundary, or a
            # behind-clock session inserting under the shared cursor; the
            # current bucket's heap still orders it correctly by time.
            k = cursor
        if k - cursor < self._nb:
            heapq.heappush(
                self._buckets[k % self._nb], (time, seq, k, fn, args, ctx)
            )
            self._ring_n += 1
        else:
            heapq.heappush(self._far, (time, seq, k, fn, args, ctx))
            self._far_n += 1

    def make_post(self, ctx: "SessionContext", seq: Any) -> Callable[..., None]:
        """Build the fire-and-forget fast path bound to this queue.

        The returned closure is installed as ``ctx.post``: it fuses the
        sequence draw and the bucket insert into one call frame.  The
        bucket ring and far heap are captured directly, which is safe
        because :meth:`compact` rebuilds both in place.
        """
        buckets = self._buckets
        nb = self._nb
        width = self._width
        far = self._far
        heappush = heapq.heappush
        seq_next = seq.__next__

        def post(delay: float, fn: Callable, *args: Any) -> None:
            if delay < 0:
                raise ValueError(f"cannot schedule in the past (delay={delay})")
            time = ctx.now + delay
            k = int(time / width)
            cursor = self._cursor
            if k < cursor:
                k = cursor
            if k - cursor < nb:
                heappush(buckets[k % nb], (time, seq_next(), k, fn, args, ctx))
                self._ring_n += 1
            else:
                heappush(far, (time, seq_next(), k, fn, args, ctx))
                self._far_n += 1

        return post

    def _run(self, loop: "EventLoop", limit: float) -> int:
        """Dispatch events with ``time <= limit``; returns the count run."""
        buckets = self._buckets
        nb = self._nb
        heappop = heapq.heappop
        refcount = getrefcount
        pool_max = _EVENT_POOL_MAX
        free = loop._free_events
        grave = _packet_graveyard
        sweep = sweep_freed_packets
        limit_k = _MAX_K if limit == math.inf else int(limit / self._width)
        n = 0
        cursor = self._cursor
        while loop._running:
            if self._ring_n:
                bucket = buckets[cursor % nb]
                if bucket:
                    head = bucket[0]
                    # Entries whose bucket number belongs to a later
                    # revolution share the heap but sort after this one's.
                    if head[2] == cursor:
                        if head[0] > limit:
                            break
                        heappop(bucket)
                        self._ring_n -= 1
                        fn = head[3]
                        args = head[4]
                        if args is None:
                            event = fn
                            event._queue = None
                            if event.cancelled:
                                self._cancelled -= 1
                                head = None
                                if len(free) < pool_max and refcount(event) == 2:
                                    free.append(event)
                                continue
                            head[5].now = head[0]
                            fn = event.fn
                            args = event.args
                            event.fn = None
                            event.args = ()
                            head = None
                            fn(*args)
                            n += 1
                            args = None
                            if len(free) < pool_max and refcount(event) == 2:
                                free.append(event)
                        else:
                            head[5].now = head[0]
                            head = None
                            fn(*args)
                            n += 1
                            args = None
                        if grave:
                            sweep()
                        continue
                # Bucket exhausted for this revolution.  Any event with
                # time <= limit has bucket number <= limit_k, so the
                # cursor never needs to pass limit_k.
                if limit_k <= cursor:
                    break
                cursor += 1
                self._cursor = cursor
                if not cursor % nb:
                    self._drain_far()
                continue
            # Ring empty: discard dead far heads, then jump the cursor
            # straight to the far head's bucket (sparse fast-forward).
            far = self._far
            while far:
                h = far[0]
                if h[4] is None and h[3].cancelled:
                    heappop(far)
                    self._far_n -= 1
                    self._cancelled -= 1
                    continue
                break
            if not far or far[0][0] > limit:
                break
            cursor = self._cursor = far[0][2]
            self._drain_far()
        return n

    def _drain_far(self) -> None:
        """Move far events that now fall inside the ring window."""
        far = self._far
        end = self._cursor + self._nb
        nb = self._nb
        buckets = self._buckets
        while far and far[0][2] < end:
            entry = heapq.heappop(far)
            self._far_n -= 1
            if entry[4] is None and entry[3].cancelled:
                self._cancelled -= 1
                continue
            heapq.heappush(buckets[entry[2] % nb], entry)
            self._ring_n += 1

    def note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled > 32
            and self._cancelled * 2 > self._ring_n + self._far_n
        ):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries from every bucket and the far heap."""
        # All rebuilds are in place (same list objects) so dispatch loops
        # holding references across a callback-triggered compact stay valid.
        nb = self._nb
        buckets = self._buckets
        end = self._cursor + nb
        ring: List[_SchedEntry] = []
        for bucket in buckets:
            ring.extend(e for e in bucket if _entry_live(e))
            del bucket[:]
        far_keep: List[_SchedEntry] = []
        for e in self._far:
            if not _entry_live(e):
                continue
            if e[2] < end:
                ring.append(e)
            else:
                far_keep.append(e)
        for e in ring:
            buckets[e[2] % nb].append(e)
        for bucket in buckets:
            if bucket:
                heapq.heapify(bucket)
        self._far[:] = far_keep
        heapq.heapify(self._far)
        self._ring_n = len(ring)
        self._far_n = len(far_keep)
        self._cancelled = 0

    def pending(self) -> int:
        return self._ring_n + self._far_n - self._cancelled

    def __len__(self) -> int:
        return self._ring_n + self._far_n


SCHEDULERS = {
    "calendar": CalendarScheduler,
    "reference": ReferenceScheduler,
}


def make_scheduler(name: Optional[str] = None):
    """Build a scheduler by name (default: ``REPRO_SIMNET_SCHEDULER`` env)."""
    resolved = name or os.environ.get("REPRO_SIMNET_SCHEDULER") or "calendar"
    try:
        return SCHEDULERS[resolved]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {resolved!r} (expected one of "
            f"{sorted(SCHEDULERS)})"
        ) from None


#: a session plan: a generator yielding absolute sim-time barriers ("run
#: my events up to here, then resume me"); its return value is the
#: session's result.  Produced by the testbed layer, consumed by
#: :meth:`EventLoop.drain`.
SessionPlan = Iterator[float]


class EventLoop:
    """The shared half of the engine: one queue serving many sessions.

    Owns the scheduler, the global ``(time, seq)`` sequence counter, the
    recycled-:class:`Event` free list and the processed-event counter.
    Sessions attach as :class:`SessionContext` instances; their events
    coexist in the queue, tagged with the owning context.
    """

    def __init__(self, scheduler: Optional[str] = None) -> None:
        self.scheduler = make_scheduler(scheduler)
        self.scheduler_name = self.scheduler.name
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0
        self._free_events: List[Event] = []

    def run(self, until: Optional[float] = None) -> None:
        """Process queued events (all sessions) in ``(time, seq)`` order.

        Stops when the queue is exhausted or the next event is later
        than ``until``.  The loop has no clock of its own: dispatch
        advances each event's owning session clock, and clamping a
        session clock up to a barrier is the session's (or the drain
        driver's) business.
        """
        self._running = True
        limit = math.inf if until is None else until
        self.events_processed += self.scheduler._run(self, limit)
        self._running = False

    def stop(self) -> None:
        """Stop the loop after the currently executing event returns."""
        self._running = False

    def pending(self) -> int:
        """Number of non-cancelled events still queued (all sessions)."""
        return self.scheduler.pending()

    def drain(self, plans: Sequence[Tuple["SessionContext", SessionPlan]]) -> List[Any]:
        """Run session plans to completion, interleaved on this queue.

        Each plan generator yields absolute barrier times; between
        resumes the loop processes *every* session's events up to the
        minimum outstanding barrier.  A session's own events run in
        exactly the order (and at exactly the clock readings) a private
        loop would produce: per-session ``(time, seq)`` order matches
        the solo order, and a session's clock is only ever advanced by
        its own events or clamped to its own barrier.  Barriers are
        non-decreasing per session, so the global limit is monotone.

        Returns one result (the plan's ``return`` value) per plan, in
        input order.  Plans are resumed in input order among those
        sharing a barrier, mirroring a serial loop over sessions.
        """
        results: List[Any] = [None] * len(plans)
        active: List[list] = []
        for i, (ctx, plan) in enumerate(plans):
            try:
                active.append([next(plan), i, ctx, plan])
            except StopIteration as stop:
                results[i] = stop.value
        while active:
            limit = min(entry[0] for entry in active)
            self.run(until=limit)
            still: List[list] = []
            for entry in active:
                barrier, i, ctx, plan = entry
                if barrier > limit:
                    still.append(entry)
                    continue
                if ctx.now < barrier:
                    ctx.now = barrier
                try:
                    entry[0] = next(plan)
                    still.append(entry)
                except StopIteration as stop:
                    results[i] = stop.value
            active = still
        return results


class SessionContext:
    """The per-session half of the engine: clock + seeded randomness.

    Components receive a ``SessionContext`` (historically named ``sim``)
    and use its clock (``now``), its scheduling tiers (``schedule`` /
    ``post``) and its random helpers.  All world state a component
    creates (nodes, links, endpoints, probes, faults) hangs off the
    context that built it; nothing session-scoped lives at module level
    (lint rule D105 enforces this for :mod:`repro.simnet`).

    Parameters
    ----------
    loop:
        The (possibly shared) :class:`EventLoop` this session's events
        are queued on.
    seed:
        Seed for both the ``random.Random``-compatible instance
        (hot-path draws such as per-packet loss) and auxiliary
        generators derived from it via :meth:`fork_rng`.
    rng_mode:
        ``"batched"`` (default; numpy-backed block draws) or
        ``"stdlib"``; overridable with ``REPRO_SIMNET_RNG``.  Both
        produce identical draw sequences.
    allocator:
        Optional shared :class:`~repro.simnet.rng.RngBlockAllocator`
        that carves this session's batched-RNG blocks out of a common
        word budget (used when many sessions share one loop).
    """

    def __init__(
        self,
        loop: EventLoop,
        seed: int = 0,
        rng_mode: Optional[str] = None,
        allocator: Optional[RngBlockAllocator] = None,
    ) -> None:
        self.loop = loop
        self.scheduler = loop.scheduler
        self.scheduler_name = loop.scheduler_name
        self._insert = loop.scheduler.insert
        self._seq = loop._seq
        self._free_events = loop._free_events
        #: fire-and-forget ``schedule``: ``post(delay, fn, *args)`` queues a
        #: bare tuple with no cancellation handle.  The hot-path tier: same
        #: clock, same FIFO sequence space, same ordering guarantees, built
        #: by the scheduler as a single fused call frame.
        self.post: Callable[..., None] = loop.scheduler.make_post(self, self._seq)
        #: current simulation time in seconds (read-only for components)
        self.now = 0.0
        self.seed = seed
        self.rng_mode = resolve_rng_mode(rng_mode)
        self.rng = make_random(seed, self.rng_mode, allocator=allocator)

    @property
    def events_processed(self) -> int:
        """Events processed by the owning loop (all sessions sharing it)."""
        return self.loop.events_processed

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns a cancellable :class:`Event` handle.  Data-plane call
        sites that never cancel should prefer :meth:`post`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        free = self._free_events
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq = next(self._seq)
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            seq = next(self._seq)
            event = Event(time, seq, fn, args)
        event._queue = self.scheduler
        self._insert(time, seq, event, None, self)
        return event

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``.

        ``time`` must not lie in the past: silently clamping would fire
        the callback at a different instant than requested, which is the
        kind of divergence the determinism suite exists to catch.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (time={time}, now={self.now})"
            )
        return self.schedule(time - self.now, fn, *args)

    def run(self, until: Optional[float] = None) -> None:
        """Process events in timestamp order.

        Stops when the queue is exhausted or the next event is later than
        ``until``.  When ``until`` is given the clock is advanced to it even
        if no event fires exactly there, so back-to-back ``run`` calls see a
        monotone clock.

        On a shared loop this processes *all* attached sessions' events;
        interleaved batches should drive the loop through
        :meth:`EventLoop.drain` instead.
        """
        self.loop.run(until)
        if until is not None and self.now < until:
            self.now = until

    def stop(self) -> None:
        """Stop the loop after the currently executing event returns."""
        self.loop.stop()

    def pending(self) -> int:
        """Number of non-cancelled events still queued on the loop."""
        return self.loop.pending()

    # -- random helpers ----------------------------------------------------
    # Centralised so components never touch module-level randomness.

    def uniform(self, lo: float, hi: float) -> float:
        return self.rng.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        return self.rng.expovariate(rate)

    def normal(self, mean: float, std: float) -> float:
        return self.rng.gauss(mean, std)

    def bounded_normal(
        self, mean: float, std: float, lo: float = 0.0, hi: float = math.inf
    ) -> float:
        """Normal draw clamped into ``[lo, hi]`` (netem-style jitter)."""
        draw = self.rng.gauss(mean, std)
        if draw < lo:
            return lo
        if draw > hi:
            return hi
        return draw

    def chance(self, probability: float) -> bool:
        """Bernoulli draw; ``probability`` outside [0, 1] is clamped."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.rng.random() < probability

    def choice(self, seq):
        return self.rng.choice(seq)

    def fork_rng(self, label: str):
        """Derive an independent, reproducible RNG for a subsystem."""
        return make_random(f"{self.seed}/{label}", self.rng_mode)


class Simulator(SessionContext):
    """A single-session event loop: one private queue, one clock.

    The original engine API, kept for every solo caller and test: a
    ``Simulator`` is simply a :class:`SessionContext` that builds and
    owns its own :class:`EventLoop`.  Multi-session callers build one
    ``EventLoop`` and several ``SessionContext`` instances instead.

    Parameters
    ----------
    seed:
        Seed for the session's random streams.
    scheduler:
        ``"calendar"`` (default) or ``"reference"``; overridable with the
        ``REPRO_SIMNET_SCHEDULER`` environment variable.  Both produce
        identical event order.
    rng_mode:
        ``"batched"`` (default) or ``"stdlib"``; overridable with
        ``REPRO_SIMNET_RNG``.  Both produce identical draw sequences.
    """

    def __init__(
        self,
        seed: int = 0,
        scheduler: Optional[str] = None,
        rng_mode: Optional[str] = None,
    ):
        super().__init__(EventLoop(scheduler), seed=seed, rng_mode=rng_mode)

"""Discrete-event simulation engine.

A single :class:`Simulator` owns the virtual clock, the event heap and all
randomness.  Every stochastic component in the testbed (loss draws, netem
jitter, background traffic inter-arrivals, RSSI shadowing, ...) pulls from
the simulator's seeded generators so that a campaign is fully reproducible
from its seed, as required by the evaluation pipeline.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback; cancellable handle returned by ``schedule``."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing; safe to call more than once."""
        self.cancelled = True
        self.fn = None
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {state})"


class Simulator:
    """Event loop with a virtual clock and seeded random sources.

    Parameters
    ----------
    seed:
        Seed for both the ``random.Random`` instance (hot-path draws such as
        per-packet loss) and auxiliary generators derived from it.
    """

    def __init__(self, seed: int = 0):
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.seed = seed
        self.rng = random.Random(seed)
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(self._now + delay, next(self._seq), fn, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        return self.schedule(max(0.0, time - self._now), fn, *args)

    def run(self, until: Optional[float] = None) -> None:
        """Process events in timestamp order.

        Stops when the heap is exhausted or the next event is later than
        ``until``.  When ``until`` is given the clock is advanced to it even
        if no event fires exactly there, so back-to-back ``run`` calls see a
        monotone clock.
        """
        self._running = True
        heap = self._heap
        while heap and self._running:
            event = heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            event.fn(*event.args)
        if until is not None and self._now < until:
            self._now = until
        self._running = False

    def stop(self) -> None:
        """Stop the loop after the currently executing event returns."""
        self._running = False

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    # -- random helpers ----------------------------------------------------
    # Centralised so components never touch module-level randomness.

    def uniform(self, lo: float, hi: float) -> float:
        return self.rng.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        return self.rng.expovariate(rate)

    def normal(self, mean: float, std: float) -> float:
        return self.rng.gauss(mean, std)

    def bounded_normal(
        self, mean: float, std: float, lo: float = 0.0, hi: float = math.inf
    ) -> float:
        """Normal draw clamped into ``[lo, hi]`` (netem-style jitter)."""
        return min(hi, max(lo, self.rng.gauss(mean, std)))

    def chance(self, probability: float) -> bool:
        """Bernoulli draw; ``probability`` outside [0, 1] is clamped."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.rng.random() < probability

    def choice(self, seq):
        return self.rng.choice(seq)

    def fork_rng(self, label: str) -> random.Random:
        """Derive an independent, reproducible RNG for a subsystem."""
        return random.Random(f"{self.seed}/{label}")

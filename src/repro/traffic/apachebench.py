"""ApacheBench-style server load.

The paper uses ApacheBench "to create a realistic load on the server".  We
model the resulting CPU pressure directly: an Ornstein-Uhlenbeck process
around a base level modulates :attr:`VideoServer.load`, which in turn slows
first-byte latency and chunk writes (see :mod:`repro.video.server`) and is
what the server-side hardware probe observes.
"""

from __future__ import annotations

import math

from repro.simnet.engine import SessionContext
from repro.video.server import VideoServer

UPDATE_INTERVAL_S = 1.0


class ApacheBenchLoad:
    """Mean-reverting background load on the video server."""

    def __init__(
        self,
        sim: SessionContext,
        server: VideoServer,
        base_load: float = 0.2,
        volatility: float = 0.08,
        reversion: float = 0.3,
    ):
        self.sim = sim
        self.server = server
        self.base_load = min(0.95, max(0.0, base_load))
        self.volatility = volatility
        self.reversion = reversion
        self._level = self.base_load
        self._event = None
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._step()

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def set_base_load(self, base_load: float) -> None:
        self.base_load = min(0.95, max(0.0, base_load))

    def _step(self) -> None:
        if not self._running:
            return
        dt = UPDATE_INTERVAL_S
        decay = math.exp(-self.reversion * dt)
        noise_std = self.volatility * math.sqrt(max(0.0, 1.0 - decay * decay))
        self._level = (
            self.base_load
            + (self._level - self.base_load) * decay
            + self.sim.normal(0.0, noise_std)
        )
        self._level = min(0.98, max(0.0, self._level))
        self.server.set_load(self._level)
        self._event = self.sim.schedule(dt, self._step)

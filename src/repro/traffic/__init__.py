"""Background traffic: the D-ITG and ApacheBench stand-ins.

Section 4.2 of the paper: "To recreate realistic network conditions, we
introduce synthetic competing traffic workloads of different patterns ...
using the D-ITG generator, which supports traffic generation based on
different applications such as Telnet, FTP, gaming, VoIP and more.  We also
use ApacheBench to create a realistic load on the server."

:class:`BackgroundTraffic` schedules randomized application flows (VoIP,
gaming, web, FTP, telnet) across the testbed for the campaign duration;
:class:`ApacheBenchLoad` modulates the video server's CPU load with a
mean-reverting process.
"""

from repro.traffic.apachebench import ApacheBenchLoad
from repro.traffic.ditg import BackgroundTraffic, TrafficMix

__all__ = ["ApacheBenchLoad", "BackgroundTraffic", "TrafficMix"]

"""D-ITG-style application traffic generators.

Each application pattern matches the classic D-ITG presets:

* **VoIP**: G.711-ish CBR, 80-byte payloads at 50 pps (64 kbit/s).
* **Gaming**: small packets at 25-35 pps with jitter, both directions.
* **Telnet**: tiny packets, low rate, exponential gaps.
* **Web**: short TCP transfers (tens to hundreds of kB) with think times.
* **FTP**: occasional bulk TCP transfers of several MB.

Flows run between the wired client and the server (crossing the WAN), and
between the phone and the server (background apps on the device), creating
the "background variations" noise the classifier must tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.simnet.engine import SessionContext
from repro.simnet.node import Node
from repro.simnet.tcp import TcpServer, open_connection
from repro.simnet.udp import UdpSender, UdpSink

VOIP_PORT = 16384
GAME_PORT = 27015
TELNET_PORT = 23
WEB_PORT = 8080
FTP_PORT = 20


@dataclass
class TrafficMix:
    """Knobs for the background intensity.

    ``intensity`` scales every arrival rate; 1.0 is the controlled-testbed
    default, the in-the-wild campaigns use higher values and more variance.
    """

    intensity: float = 1.0
    voip: bool = True
    gaming: bool = True
    telnet: bool = True
    web: bool = True
    ftp: bool = True
    phone_apps: bool = True
    #: mean seconds between web fetches / ftp transfers (pre-scaling)
    web_think_s: float = 10.0
    ftp_gap_s: float = 45.0
    ftp_size_bytes: tuple = (512 * 1024, 4 * 1024 * 1024)
    web_size_bytes: tuple = (20 * 1024, 400 * 1024)


class BackgroundTraffic:
    """Owns all background flows of one testbed instance."""

    def __init__(
        self,
        sim: SessionContext,
        server: Node,
        wired_client: Node,
        phone: Node,
        mix: Optional[TrafficMix] = None,
        seed_label: str = "bg",
    ):
        self.sim = sim
        self.server = server
        self.wired_client = wired_client
        self.phone = phone
        self.mix = mix or TrafficMix()
        self.rng = sim.fork_rng(seed_label)
        self._udp_senders: List[UdpSender] = []
        self._sinks: List[UdpSink] = []
        self._tcp_servers: List[TcpServer] = []
        self._tcp_clients: list = []
        self._running = False
        self.tcp_transfers_started = 0

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        mix = self.mix
        if mix.voip:
            self._start_voip()
        if mix.gaming:
            self._start_gaming()
        if mix.telnet:
            self._start_telnet()
        if mix.web or mix.ftp:
            self._start_tcp_listener()
        if mix.web:
            self._schedule_web()
        if mix.ftp:
            self._schedule_ftp()
        if mix.phone_apps:
            self._start_phone_apps()

    def stop(self) -> None:
        self._running = False
        for sender in self._udp_senders:
            sender.stop()
        for sink in self._sinks:
            sink.close()
        for srv in self._tcp_servers:
            for ep in srv.connections:
                if not ep.closed:
                    ep.abort()
            srv.close()
        for client in self._tcp_clients:
            if not client.closed:
                client.abort()

    # ------------------------------------------------------------ UDP flows

    def _cbr(self, src: Node, dst: Node, port: int, rate: float, payload: int,
             jitter: float, tag: str, on_time: float = 0.0, off_time: float = 0.0):
        self._sinks.append(UdpSink(dst, port))
        sender = UdpSender(
            self.sim, src, dst.name, port,
            rate_bps=rate * self.mix.intensity,
            payload=payload,
            jitter_factor=jitter,
            on_time=on_time,
            off_time=off_time,
            tag=tag,
        )
        sender.start(at=self.rng.uniform(0.0, 1.0))
        self._udp_senders.append(sender)

    def _start_voip(self) -> None:
        # One bidirectional G.711 call between wired client and server.
        self._cbr(self.wired_client, self.server, VOIP_PORT, 64e3, 80, 0.05, "voip")
        self._cbr(self.server, self.wired_client, VOIP_PORT + 1, 64e3, 80, 0.05, "voip")

    def _start_gaming(self) -> None:
        rate = 30 * 60 * 8  # ~30pps x 60B
        self._cbr(self.wired_client, self.server, GAME_PORT, rate, 60, 0.3, "game",
                  on_time=20.0, off_time=8.0)
        self._cbr(self.server, self.wired_client, GAME_PORT + 1, rate * 2, 120, 0.3,
                  "game", on_time=20.0, off_time=8.0)

    def _start_telnet(self) -> None:
        rate = 5 * 64 * 8  # ~5pps x 64B
        self._cbr(self.wired_client, self.server, TELNET_PORT, rate, 64, 0.8,
                  "telnet", on_time=10.0, off_time=15.0)

    def _start_phone_apps(self) -> None:
        # Background app sync on the phone: sparse small UDP exchanges.
        self._cbr(self.phone, self.server, GAME_PORT + 2, 24e3, 200, 0.5,
                  "phone-sync", on_time=5.0, off_time=30.0)
        self._cbr(self.server, self.phone, GAME_PORT + 3, 48e3, 400, 0.5,
                  "phone-push", on_time=5.0, off_time=40.0)

    # ------------------------------------------------------------ TCP flows

    def _start_tcp_listener(self) -> None:
        def on_connection(endpoint):
            def on_request(nbytes: int, now: float) -> None:
                size = endpoint._bg_response_size
                if size > 0:
                    endpoint.send(size)
                    endpoint._bg_response_size = 0
                    endpoint.close()
            endpoint._bg_response_size = getattr(
                on_connection, "_next_size", 64 * 1024
            )
            endpoint.on_data = on_request

        self._web_listener = TcpServer(self.sim, self.server, WEB_PORT, on_connection)
        self._on_connection = on_connection
        self._tcp_servers.append(self._web_listener)

    def _fetch(self, size: int) -> None:
        """One client-initiated TCP transfer of ``size`` response bytes."""
        if not self._running:
            return
        self.tcp_transfers_started += 1
        self._on_connection._next_size = size
        client = open_connection(self.sim, self.wired_client, self.server.name, WEB_PORT)
        client.on_established = lambda: client.send(300)
        client.on_fail = lambda reason: None
        client.connect()
        self._tcp_clients.append(client)

    def _schedule_web(self) -> None:
        if not self._running:
            return
        lo, hi = self.mix.web_size_bytes
        self._fetch(self.rng.randint(lo, hi))
        gap = self.rng.expovariate(self.mix.intensity / self.mix.web_think_s)
        self.sim.schedule(max(0.5, gap), self._schedule_web)

    def _schedule_ftp(self) -> None:
        if not self._running:
            return
        lo, hi = self.mix.ftp_size_bytes
        self._fetch(self.rng.randint(lo, hi))
        gap = self.rng.expovariate(self.mix.intensity / self.mix.ftp_gap_s)
        self.sim.schedule(max(2.0, gap), self._schedule_ftp)

"""The asyncio HTTP serving layer: diagnosis as a service, stdlib only.

One process, one event loop, no framework: :class:`DiagnosisServer`
speaks enough HTTP/1.1 (keep-alive, Content-Length bodies) to serve the
``repro.api`` wire schema at production rates, with every request
funnelled through the :class:`~repro.serve.batcher.MicroBatcher` onto
the vectorized ``diagnose_batch`` path of whatever model the
:class:`~repro.serve.registry.ModelRegistry` has active.

Endpoints
---------

``POST /v1/diagnose``
    Body: ``repro-diagnose-request-v1``.  Response:
    ``repro-diagnose-response-v1`` whose ``diagnoses`` are canonically
    byte-identical to offline ``diagnose_batch`` on the same records.
``GET /healthz``
    Liveness: 200 as long as the process can answer at all (also while
    draining — the process is alive, just finishing up).
``GET /readyz``
    Readiness: 200 only with an active model and not draining; 503
    otherwise, so a load balancer stops routing before shutdown.
``GET /v1/models``
    Loaded versions, the active one, and batcher statistics.
``POST /v1/models/activate``
    Body ``{"version": "v7"}``: hot-swap the active model between
    batches (a flush never straddles a swap — both run on the loop).

Shutdown is *graceful drain*: SIGTERM (or SIGINT) stops the listener,
turns ``/readyz`` red, flushes the batcher, lets in-flight requests
finish inside a grace period, then closes idle keep-alive connections
and exits 0.  Per-request latency/status land in the ``repro.obs``
registry via ``record_span`` (the sanctioned non-lexical span API — a
request's lifetime spans awaits, so a ``with`` span cannot express it).
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, cast

from repro.api import (
    ApiError,
    DiagnoseRequest,
    DiagnoseResponse,
    canonical_json,
)
from repro.core.diagnosis import DiagnosisReport
from repro.obs.telemetry import get_telemetry
from repro.schemas import SERVE_ERROR_V1
from repro.serve.batcher import MicroBatcher
from repro.serve.registry import ModelRegistry, RegistryError

ERROR_SCHEMA = SERVE_ERROR_V1

#: refuse request bodies larger than this (a fleet record is ~2 KB)
MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Terminate one request with a status + message (connection lives on)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class ServeConfig:
    """Knobs for one serving process."""

    host: str = "127.0.0.1"
    port: int = 8080  # 0 picks an ephemeral port (see DiagnosisServer.port)
    max_batch: int = 64
    max_wait_ms: float = 2.0
    drain_grace_s: float = 5.0


class DiagnosisServer:
    """A long-lived diagnosis service bound to one model registry."""

    def __init__(
        self, registry: ModelRegistry, config: Optional[ServeConfig] = None
    ) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self.batcher: MicroBatcher = MicroBatcher(
            self._score_batch,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: "Set[asyncio.Task[None]]" = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._draining = False
        self._stop: Optional[asyncio.Event] = None

    # ------------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind and start accepting connections (does not block)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )

    async def drain(self) -> None:
        """Graceful shutdown: finish everything in flight, then stop.

        Ordering matters: readiness goes red first (load balancers stop
        routing), the listener closes (no new connections), the batcher
        flushes (queued windows score now), in-flight requests get
        ``drain_grace_s`` to complete, and only then are surviving
        keep-alive connections closed.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.batcher.flush("drain")
        deadline = time.perf_counter() + self.config.drain_grace_s
        while self._inflight and time.perf_counter() < deadline:
            await asyncio.sleep(0.005)
        for writer in list(self._writers):
            writer.close()  # idle keep-alive connections see EOF and exit
        pending = [task for task in self._handlers if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=1.0)
        get_telemetry().event("serve.drained", inflight=self._inflight)

    def request_stop(self) -> None:
        """Ask :meth:`run` to drain and return (signal-handler safe)."""
        if self._stop is not None:
            self._stop.set()

    async def run(self) -> None:
        """Serve until SIGTERM/SIGINT (or :meth:`request_stop`), then drain."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        hooked: List[signal.Signals] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_stop)
                hooked.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-POSIX loop: rely on request_stop()
        try:
            await self._stop.wait()
            await self.drain()
        finally:
            for sig in hooked:
                loop.remove_signal_handler(sig)

    # ------------------------------------------------------------- the model

    def _score_batch(
        self, records: Sequence[object]
    ) -> List[Tuple[object, str]]:
        """The batcher's runner: score on the active model, tag the version.

        A flush runs synchronously on the loop, and so does activation,
        so every record in one flush scores on the same version — the
        tag tells each response exactly which model produced it, even
        across a hot swap.
        """
        analyzer = self.registry.get()
        version = self.registry.active_version or "default"
        reports = analyzer.diagnose_batch(records)
        return [(report, version) for report in reports]

    # ---------------------------------------------------------------- routes

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        if path == "/healthz":
            self._require(method, "GET")
            return 200, {"status": "ok", "draining": self._draining}
        if path == "/readyz":
            self._require(method, "GET")
            ready = not self._draining and self.registry.active_version is not None
            status = 200 if ready else 503
            return status, {
                "status": "ready" if ready else "unavailable",
                "draining": self._draining,
                "model": self.registry.active_version,
            }
        if path == "/v1/models":
            self._require(method, "GET")
            return 200, {
                "active": self.registry.active_version,
                "versions": [
                    self.registry.info(v).to_dict() for v in self.registry.versions()
                ],
                "batcher": dict(self.batcher.stats),
            }
        if path == "/v1/models/activate":
            self._require(method, "POST")
            payload = self._parse_json(body)
            version = payload.get("version") if isinstance(payload, dict) else None
            if not isinstance(version, str):
                raise _HttpError(400, "body must be {\"version\": \"<name>\"}")
            try:
                previous = self.registry.activate(version)
            except RegistryError as exc:
                raise _HttpError(404, str(exc)) from exc
            get_telemetry().event(
                "serve.model_swap", version=version, previous=previous
            )
            return 200, {"active": version, "previous": previous}
        if path == "/v1/diagnose":
            self._require(method, "POST")
            return await self._diagnose(body)
        raise _HttpError(404, f"no such endpoint: {path}")

    async def _diagnose(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        if self.registry.active_version is None:
            raise _HttpError(503, "no model registered")
        try:
            request = DiagnoseRequest.from_dict(self._parse_json(body))
        except ApiError as exc:
            raise _HttpError(400, str(exc)) from exc
        if not request.records:
            info = self.registry.info()
            return 200, DiagnoseResponse(diagnoses=[], model=info).to_dict()
        try:
            scored = cast(
                "List[Tuple[DiagnosisReport, str]]",
                await self.batcher.submit(request.records),
            )
        except ApiError as exc:  # a malformed record surfacing at score time
            raise _HttpError(400, str(exc)) from exc
        except RegistryError as exc:
            raise _HttpError(503, str(exc)) from exc
        except Exception as exc:
            raise _HttpError(500, f"diagnosis failed: {exc}") from exc
        reports = [report for report, _version in scored]
        version = scored[0][1]
        response = DiagnoseResponse.from_reports(reports, self.registry.info(version))
        tel = get_telemetry()
        tel.count("serve.records", len(reports))
        return 200, response.to_dict()

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    @staticmethod
    def _parse_json(body: bytes) -> object:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from exc

    # ------------------------------------------------------------- transport

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self._writers.add(writer)
        try:
            while True:
                parsed = await self._read_request(reader, writer)
                if parsed is None:
                    break
                method, path, body = parsed
                self._inflight += 1
                t0 = time.perf_counter()
                try:
                    try:
                        status, payload = await self._route(method, path, body)
                    except _HttpError as exc:
                        status = exc.status
                        payload = {"schema": ERROR_SCHEMA, "error": exc.message}
                    except Exception as exc:  # never kill the connection loop
                        status = 500
                        payload = {"schema": ERROR_SCHEMA, "error": repr(exc)}
                    self._write_response(writer, status, payload)
                    await writer.drain()
                finally:
                    self._inflight -= 1
                    self._observe(method, path, status, time.perf_counter() - t0)
                if self._draining:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[Tuple[str, str, bytes]]:
        """One HTTP/1.1 request off the wire, or None at end of connection."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not request_line or not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            self._write_response(
                writer, 400,
                {"schema": ERROR_SCHEMA, "error": "malformed request line"},
            )
            await writer.drain()
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            self._write_response(
                writer, 413,
                {"schema": ERROR_SCHEMA,
                 "error": f"body exceeds {MAX_BODY_BYTES} bytes"},
            )
            await writer.drain()
            return None
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, body

    def _write_response(
        self, writer: asyncio.StreamWriter, status: int, payload: Dict[str, object]
    ) -> None:
        body = canonical_json(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        connection = "close" if self._draining else "keep-alive"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    @staticmethod
    def _observe(method: str, path: str, status: int, dur_s: float) -> None:
        tel = get_telemetry()
        tel.record_span(
            "serve.request", dur_s,
            attrs={"method": method, "path": path, "status": status},
        )
        tel.count("serve.requests")
        tel.count(f"serve.status.{status}")
        tel.observe("serve.latency_s", dur_s)

"""Diagnosis-as-a-service: the long-lived async serving layer.

The paper's deployment endgame is a carrier-side service: live devices
upload session records, the operator gets root-cause diagnoses back in
milliseconds, fleet-wide.  This package is that service, on the stdlib
only:

* :class:`~repro.serve.batcher.MicroBatcher` — coalesces concurrent
  requests onto one vectorized ``diagnose_batch`` call per window
  (``max_batch`` / ``max_wait_ms`` knobs), with per-request error
  isolation and bit-identical results;
* :class:`~repro.serve.registry.ModelRegistry` — versioned analyzer
  exports with atomic hot swap;
* :class:`~repro.serve.http.DiagnosisServer` — the asyncio HTTP front
  end (``POST /v1/diagnose``, ``/healthz``, ``/readyz``, model
  management) with graceful SIGTERM drain and per-request telemetry.

Start one from the CLI (``python -m repro serve --train lab.pkl``) or
embed it::

    import asyncio
    from repro.serve import DiagnosisServer, ModelRegistry, ServeConfig

    registry = ModelRegistry()
    registry.load_dir("models/")          # *.json analyzer exports
    server = DiagnosisServer(registry, ServeConfig(port=8080))
    asyncio.run(server.run())             # serves until SIGTERM, then drains
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.http import DiagnosisServer, ServeConfig
from repro.serve.registry import ModelRegistry, RegistryError

__all__ = [
    "DiagnosisServer",
    "MicroBatcher",
    "ModelRegistry",
    "RegistryError",
    "ServeConfig",
]

"""Versioned analyzer registry with hot swap.

A serving process outlives any one model: retrained analyzers arrive as
``repro-analyzer-v1/v2`` JSON exports (``RootCauseAnalyzer.save``) and
must replace the live one without dropping requests.  The registry keeps
every loaded version keyed by name, marks exactly one *active*, and
swaps atomically — activation is one attribute assignment, so requests
batched before the swap score on the old model and requests after it on
the new, never a mixture inside one batch.

Version names come from the caller or, for :meth:`load_path` /
:meth:`load_dir`, from the export's file stem (``models/v7.json`` ->
``"v7"``).  :meth:`load_dir` loads every ``*.json`` export in the
directory and activates the lexicographically greatest version, so a
conventional ``v1.json`` .. ``v12.json`` layout needs zero-padded or
sortable names to promote the newest — the CLI documents this.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.api import ModelInfo
from repro.core.diagnosis import RootCauseAnalyzer


class RegistryError(KeyError):
    """An unknown model version, or no active model yet."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep messages clean
        return str(self.args[0]) if self.args else ""


class ModelRegistry:
    """All servable analyzer versions, one of them active."""

    def __init__(self) -> None:
        self._models: Dict[str, RootCauseAnalyzer] = {}
        self._active: Optional[str] = None

    # -------------------------------------------------------------- loading

    def register(
        self,
        version: str,
        analyzer: RootCauseAnalyzer,
        activate: bool = False,
    ) -> None:
        """Add a fitted analyzer under ``version``.

        The first registered version becomes active automatically;
        later ones only on ``activate=True`` or :meth:`activate`.
        """
        if not analyzer.fitted:
            raise ValueError("only fitted analyzers can be registered")
        self._models[version] = analyzer
        if activate or self._active is None:
            self._active = version

    def load_path(
        self,
        path: Union[str, Path],
        version: Optional[str] = None,
        activate: bool = False,
    ) -> str:
        """Load one analyzer export; returns the version it registered as."""
        path = Path(path)
        name = version or path.stem
        self.register(name, RootCauseAnalyzer.load(path), activate=activate)
        return name

    def load_dir(self, directory: Union[str, Path]) -> List[str]:
        """Load every ``*.json`` export in ``directory``; newest activates.

        Returns the loaded version names sorted; the lexicographically
        greatest becomes active.
        """
        directory = Path(directory)
        exports = sorted(directory.glob("*.json"))
        if not exports:
            raise RegistryError(f"no analyzer exports (*.json) in {directory}")
        names = [self.load_path(path) for path in exports]
        self._active = max(names)
        return sorted(names)

    # ------------------------------------------------------------ selection

    @property
    def active_version(self) -> Optional[str]:
        """The version new requests score on (None before any register)."""
        return self._active

    def versions(self) -> List[str]:
        return sorted(self._models)

    def activate(self, version: str) -> str:
        """Hot-swap the active model; returns the previously active version."""
        if version not in self._models:
            raise RegistryError(
                f"unknown model version {version!r} "
                f"(have: {', '.join(self.versions()) or 'none'})"
            )
        previous = self._active
        self._active = version
        return previous or version

    def get(self, version: Optional[str] = None) -> RootCauseAnalyzer:
        """The analyzer for ``version`` (default: the active one)."""
        name = version if version is not None else self._active
        if name is None:
            raise RegistryError("no model registered yet")
        try:
            return self._models[name]
        except KeyError:
            raise RegistryError(
                f"unknown model version {name!r} "
                f"(have: {', '.join(self.versions()) or 'none'})"
            ) from None

    def info(self, version: Optional[str] = None) -> ModelInfo:
        """:class:`~repro.api.ModelInfo` for one version (default: active)."""
        name = version if version is not None else self._active
        analyzer = self.get(name)
        assert name is not None  # get() raised otherwise
        return ModelInfo.from_analyzer(analyzer, version=name)

"""Request micro-batching onto the vectorized diagnosis path.

The serving economics of this model family come from one fact: scoring N
sessions through ``diagnose_batch`` costs barely more than scoring one,
because feature construction and tree prediction are numpy-vectorized.
The :class:`MicroBatcher` converts that into tail latency — concurrent
requests arriving within a ``max_wait_ms`` window are coalesced into one
batch of at most ``max_batch`` records, run through a single callable,
and the results are sliced back to each request in arrival order.

Properties the concurrency suite pins:

* **ordering** — each request's reports come back in its own record
  order, regardless of how requests interleave on the loop;
* **max-wait flush** — the first queued request arms one timer; when it
  fires the whole queue drains (injectable ``schedule`` for fake-clock
  tests);
* **size cap** — the runner never sees more than ``max_batch`` records
  in one call; a full window flushes immediately without waiting;
* **error isolation** — when a batch raises, each member request is
  retried alone, so one malformed record fails only the request that
  carried it;
* **bit-identity** — batching is pure routing: reports are exactly what
  ``runner(records)`` returns for the same records in any grouping
  (``diagnose_batch`` is row-local, which the equivalence tests pin).

Diagnosis is CPU-bound and the GIL is real, so batches run inline on the
event loop: a flush blocks the loop for the few hundred microseconds the
vectorized call takes, which *is* the service's pacing mechanism — while
one batch computes, the next window's requests queue behind it.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, List, Optional, Protocol, Sequence, TypeVar

T = TypeVar("T")

#: scores one batch of records; must return one result per record, in order
BatchRunner = Callable[[Sequence[object]], Sequence[T]]


class TimerHandle(Protocol):
    """What a ``schedule`` callback must hand back: something cancellable."""

    def cancel(self) -> None:
        """Cancel the pending timer (idempotent)."""


#: arms a flush timer: ``schedule(delay_s, fire)`` -> cancellable handle
ScheduleFn = Callable[[float, Callable[[], None]], TimerHandle]


class _PendingRequest:
    """One submitted request waiting for its slice of a batch."""

    __slots__ = ("records", "future")

    def __init__(
        self, records: List[object], future: "asyncio.Future[List[object]]"
    ) -> None:
        self.records = records
        self.future = future


class MicroBatcher:
    """Coalesce concurrent requests onto one vectorized runner call.

    Single event loop, no locks: all mutation happens on the loop via
    :meth:`submit` and the flush timer callback.  ``runner`` is any
    callable scoring a record sequence (in production,
    ``analyzer.diagnose_batch`` via the model registry).
    """

    def __init__(
        self,
        runner: BatchRunner[object],
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        schedule: Optional[ScheduleFn] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.runner = runner
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1000.0
        self._schedule = schedule
        self._pending: List[_PendingRequest] = []
        self._pending_records = 0
        self._timer: Optional[TimerHandle] = None
        #: lifetime stats, surfaced by the server's model endpoints
        self.stats: Dict[str, int] = {
            "requests": 0,
            "records": 0,
            "batches": 0,
            "flush_full": 0,
            "flush_timer": 0,
            "flush_drain": 0,
            "request_errors": 0,
        }

    # ---------------------------------------------------------------- submit

    def submit(self, records: Sequence[object]) -> Awaitable[List[object]]:
        """Queue one request; resolves to one result per record, in order.

        Must be called from a running event loop.  The request joins the
        current window: it flushes immediately once ``max_batch`` records
        are queued, else when the window's ``max_wait_ms`` timer fires.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[List[object]]" = loop.create_future()
        self.stats["requests"] += 1
        self.stats["records"] += len(records)
        self._pending.append(_PendingRequest(list(records), future))
        self._pending_records += len(records)
        if self._pending_records >= self.max_batch:
            self.flush("full")
        elif self._timer is None:
            self._arm(loop)
        return future

    def _arm(self, loop: asyncio.AbstractEventLoop) -> None:
        fire = lambda: self.flush("timer")  # noqa: E731
        if self._schedule is not None:
            self._timer = self._schedule(self.max_wait_s, fire)
        else:
            self._timer = loop.call_later(self.max_wait_s, fire)

    # ----------------------------------------------------------------- flush

    @property
    def pending_records(self) -> int:
        """Records queued in the current window (0 after any flush)."""
        return self._pending_records

    def flush(self, reason: str = "drain") -> None:
        """Drain the whole queue now, running the batches inline.

        Called by the timer (``reason="timer"``), by :meth:`submit` when
        the window fills (``"full"``), and by the server's drain path
        (``"drain"``).  All queued futures are resolved before return.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        self._pending_records = 0
        if not pending:
            return
        self.stats[f"flush_{reason}"] = self.stats.get(f"flush_{reason}", 0) + 1
        self._execute(pending)

    def _execute(self, pending: List[_PendingRequest]) -> None:
        """Score the drained window in runner calls of <= max_batch records."""
        group: List[_PendingRequest] = []
        group_records = 0
        for request in pending:
            if group and group_records + len(request.records) > self.max_batch:
                self._run_group(group)
                group, group_records = [], 0
            group.append(request)
            group_records += len(request.records)
            # An oversized single request still caps the runner call: it
            # is scored alone, chunked below max_batch inside _run_group.
            if group_records >= self.max_batch:
                self._run_group(group)
                group, group_records = [], 0
        if group:
            self._run_group(group)

    def _run_group(self, group: List[_PendingRequest]) -> None:
        records: List[object] = []
        for request in group:
            records.extend(request.records)
        try:
            results = self._run_chunked(records)
        except Exception:
            self._run_isolated(group)
            return
        offset = 0
        for request in group:
            end = offset + len(request.records)
            if not request.future.done():
                request.future.set_result(list(results[offset:end]))
            offset = end

    def _run_chunked(self, records: List[object]) -> List[object]:
        """Run ``records`` through the runner, never more than max_batch at once."""
        self.stats["batches"] += 1
        if len(records) <= self.max_batch:
            return list(self.runner(records))
        results: List[object] = []
        for start in range(0, len(records), self.max_batch):
            if start:
                self.stats["batches"] += 1
            results.extend(self.runner(records[start:start + self.max_batch]))
        return results

    def _run_isolated(self, group: List[_PendingRequest]) -> None:
        """Fallback after a failed batch: score each request alone.

        Only the request(s) whose records actually fail see an error;
        innocent co-batched requests still get their results.
        """
        for request in group:
            try:
                results = self._run_chunked(request.records)
            except Exception as exc:
                self.stats["request_errors"] += 1
                if not request.future.done():
                    request.future.set_exception(exc)
            else:
                if not request.future.done():
                    request.future.set_result(list(results))

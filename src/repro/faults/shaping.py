"""Traffic shaping faults (``tc``/``netem`` rows of Table 2).

WAN shaping tightens the emulated DSL/mobile link below its Table 3
baseline (bandwidth cap, extra delay, extra loss).  LAN shaping caps the
router's forwarding path at data rates "offered by common 802.11 standards"
-- only the low end of that 1..70 Mbit/s range can affect a video, so the
severity bands sit around the video bitrates.
"""

from __future__ import annotations

from repro.faults.base import Fault, FaultRegistry


@FaultRegistry.register
class WanShaping(Fault):
    """Cap and impair the WAN link (DSL / mobile profile)."""

    name = "wan_shaping"
    #: the capped WAN link throttles TCP as seen from all three VPs
    VANTAGE_SCOPE = ("mobile", "router", "server")

    MILD_RATE = (1.9e6, 2.9e6)
    SEVERE_RATE = (0.55e6, 1.6e6)
    MILD_DELAY_FACTOR = (1.3, 2.2)
    SEVERE_DELAY_FACTOR = (2.0, 4.0)
    MILD_LOSS_FACTOR = (1.2, 2.0)
    SEVERE_LOSS_FACTOR = (2.0, 4.0)

    def apply(self, testbed) -> None:
        down, up = testbed.wan_down, testbed.wan_up
        self._saved = (
            down.rate_bps, down.delay, down.loss, up.rate_bps, up.delay, up.loss,
        )
        rate = self.band(self.MILD_RATE, self.SEVERE_RATE)
        delay_f = self.band(self.MILD_DELAY_FACTOR, self.SEVERE_DELAY_FACTOR)
        loss_f = self.band(self.MILD_LOSS_FACTOR, self.SEVERE_LOSS_FACTOR)
        self.intensity = {"rate_bps": rate, "delay_factor": delay_f, "loss_factor": loss_f}
        down.set_rate(rate)
        down.set_impairments(delay=down.delay * delay_f, loss=min(0.3, down.loss * loss_f))
        # DSL uplink shrinks proportionally with the downlink cap.
        uplink_ratio = self._saved[3] / max(1.0, self._saved[0])
        up.set_rate(max(128e3, rate * uplink_ratio))
        up.set_impairments(delay=up.delay * delay_f, loss=min(0.3, up.loss * loss_f))
        self.active = True

    def clear(self, testbed) -> None:
        if not self.active:
            return
        down, up = testbed.wan_down, testbed.wan_up
        d_rate, d_delay, d_loss, u_rate, u_delay, u_loss = self._saved
        down.set_rate(d_rate)
        down.set_impairments(delay=d_delay, loss=d_loss)
        up.set_rate(u_rate)
        up.set_impairments(delay=u_delay, loss=u_loss)
        self.active = False


@FaultRegistry.register
class LanShaping(Fault):
    """Cap the WLAN at a lower 802.11 standard's PHY rate.

    The paper shapes the LAN "based on the data rates offered by common
    802.11 standards such as a, b, g and n" (1..70 Mbit/s).  Only the low
    rungs can affect a video stream, so the severity bands draw from the
    802.11b-era rates.  The cap is visible to the phone as a drop in its
    NIC's advertised rate while RSSI stays normal -- the signature that
    separates LAN shaping from poor reception at the mobile VP.
    """

    name = "lan_shaping"
    #: PHY-rate drop with normal RSSI: a mobile/router-side signature
    VANTAGE_SCOPE = ("mobile", "router")

    #: 802.11 PHY rates drawn per severity (bit/s)
    MILD_RATES = (2e6, 5.5e6)
    SEVERE_RATES = (1e6,)

    def apply(self, testbed) -> None:
        rates = self.MILD_RATES if self.severity == "mild" else self.SEVERE_RATES
        rate = self.rng.choice(rates)
        self.intensity = {"phy_rate_bps": rate}
        self._saved = testbed.medium.rate_cap
        testbed.medium.set_rate_cap(rate)
        self.active = True

    def clear(self, testbed) -> None:
        if not self.active:
            return
        testbed.medium.set_rate_cap(self._saved)
        self.active = False

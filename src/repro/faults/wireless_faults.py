"""Wireless-medium faults: poor signal reception and WiFi interference.

* **Low RSSI** -- the paper places the phone far from the AP and attenuates
  the AP's transmit signal; here, extra path loss is added so the phone's
  effective RSSI lands in the chosen band.  The SNR drop lowers the
  selected PHY rate and raises the frame error rate.
* **WiFi interference** -- the paper loads an adjacent WLAN on the same
  channel; here, an airtime duty cycle occupies the medium and raises the
  collision probability.  RSSI is unaffected, which is precisely why only
  RSSI-equipped vantage points separate the two faults (Section 5.3).
"""

from __future__ import annotations

from repro.faults.base import Fault, FaultRegistry


@FaultRegistry.register
class LowRssi(Fault):
    """Attenuate the phone's signal into a target RSSI band."""

    name = "low_rssi"
    #: RSSI is only measured by the radio-equipped mobile/router VPs
    VANTAGE_SCOPE = ("mobile", "router")

    MILD_RSSI = (-88.5, -85.0)
    SEVERE_RSSI = (-95.0, -91.0)

    def apply(self, testbed) -> None:
        station = testbed.phone_station
        target = self.band(self.MILD_RSSI, self.SEVERE_RSSI)
        attenuation = max(0.0, station.base_rssi - target)
        self.intensity = {"target_rssi": target, "attenuation_db": attenuation}
        self._saved = station.attenuation
        station.attenuation = attenuation
        self.active = True

    def clear(self, testbed) -> None:
        if not self.active:
            return
        testbed.phone_station.attenuation = self._saved
        self.active = False


@FaultRegistry.register
class WifiInterference(Fault):
    """Occupy the channel from an adjacent WLAN."""

    name = "wifi_interference"
    #: airtime contention is a wireless-medium signature (Section 5.3)
    VANTAGE_SCOPE = ("mobile", "router")

    MILD_DUTY = (0.55, 0.85)
    SEVERE_DUTY = (0.90, 0.97)

    def apply(self, testbed) -> None:
        duty = self.band(self.MILD_DUTY, self.SEVERE_DUTY)
        self.intensity = {"duty": duty}
        self._saved = testbed.medium.interference_duty
        testbed.medium.set_interference(duty)
        self.active = True

    def clear(self, testbed) -> None:
        if not self.active:
            return
        testbed.medium.set_interference(self._saved)
        self.active = False

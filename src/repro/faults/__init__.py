"""Fault injection: the simulated problems of Table 2.

Each fault perturbs exactly the resource its real-world counterpart
perturbs:

=====================  ==========================  =========================
Paper fault            Paper tool                  This package
=====================  ==========================  =========================
LAN shaping            ``tc``/``netem`` on LAN     caps the router bridge
WAN shaping            ``tc``/``netem`` on WAN     re-shapes the WAN channels
LAN congestion         ``iperf`` client->router    UDP through the bridge
WAN congestion         ``iperf`` across the WAN    UDP across the WAN link
Mobile load            ``stress`` on the phone     CPU/memory pressure model
Poor signal reception  distance / attenuation      extra path loss (dB)
WiFi interference      adjacent WLAN traffic       channel airtime duty
=====================  ==========================  =========================

Faults are created by :func:`make_fault` with a severity of ``"mild"`` or
``"severe"``; the *intensity within the severity band* is randomised per
instance, so the QoE impact varies and the MOS labeller decides what the
session actually was -- mirroring the paper's "varied intensity" scenarios.
"""

from repro.faults.base import Fault, FaultRegistry, make_fault, FAULT_NAMES
from repro.faults.congestion import LanCongestion, WanCongestion
from repro.faults.load import MobileLoad
from repro.faults.shaping import LanShaping, WanShaping
from repro.faults.wireless_faults import LowRssi, WifiInterference

__all__ = [
    "Fault",
    "FaultRegistry",
    "make_fault",
    "FAULT_NAMES",
    "LanCongestion",
    "WanCongestion",
    "MobileLoad",
    "LanShaping",
    "WanShaping",
    "LowRssi",
    "WifiInterference",
]

"""Mobile device load fault (the ``stress`` row of Table 2).

``stress`` generates CPU, memory, I/O and disk workloads on the phone; the
paper's scenario is that "high load on the device hardware does not allow
the proper decoding and playback of the video".  The fault raises the
device model's stress levels; the decoder and the TCP receive buffer react
through :class:`repro.testbed.devices.MobileDevice`.
"""

from __future__ import annotations

from repro.faults.base import Fault, FaultRegistry


@FaultRegistry.register
class MobileLoad(Fault):
    """CPU + memory pressure on the phone."""

    name = "mobile_load"
    #: only the phone's hardware probe sees CPU/memory pressure
    VANTAGE_SCOPE = ("mobile",)

    MILD_CPU = (0.3, 0.5)
    SEVERE_CPU = (0.7, 0.92)
    MILD_MEM = (0.1, 0.28)
    SEVERE_MEM = (0.35, 0.6)

    def apply(self, testbed) -> None:
        device = testbed.phone_device
        cpu = self.band(self.MILD_CPU, self.SEVERE_CPU)
        mem = self.band(self.MILD_MEM, self.SEVERE_MEM)
        self.intensity = {"stress_cpu": cpu, "stress_mem": mem}
        device.stress_cpu = cpu
        device.stress_mem = mem
        self.active = True

    def clear(self, testbed) -> None:
        if not self.active:
            return
        testbed.phone_device.stress_cpu = 0.0
        testbed.phone_device.stress_mem = 0.0
        self.active = False

"""Congestion faults: iperf-style UDP blasting (Table 2).

* **LAN congestion** -- UDP from the wired LAN client towards the router,
  contending with the video inside the router's forwarding path.
* **WAN congestion** -- UDP between the server and the wired client, so
  the traffic crosses (and queues on) the emulated WAN link the video
  shares.  Both directions are loaded, dominated by the downlink as in a
  real speed-test-style blast.
"""

from __future__ import annotations

from repro.faults.base import Fault, FaultRegistry
from repro.simnet.udp import UdpSender, UdpSink

IPERF_PORT = 5001


@FaultRegistry.register
class LanCongestion(Fault):
    """UDP wired-client -> router through the shared bridge."""

    name = "lan_congestion"
    #: contention happens on the home bridge, invisible to the server's NIC
    VANTAGE_SCOPE = ("mobile", "router")

    MILD_FRACTION = (0.55, 0.85)
    SEVERE_FRACTION = (0.85, 1.4)

    def apply(self, testbed) -> None:
        fraction = self.band(self.MILD_FRACTION, self.SEVERE_FRACTION)
        rate = fraction * testbed.router.bridge.rate_bps
        self.intensity = {"rate_bps": rate, "fraction": fraction}
        self._sink = UdpSink(testbed.router, IPERF_PORT)
        self._sender = UdpSender(
            testbed.sim,
            testbed.wired_client,
            testbed.router.name,
            IPERF_PORT,
            rate_bps=rate,
            payload=1200,
            jitter_factor=0.15,
            tag="iperf-lan",
        )
        self._sender.start()
        self.active = True

    def clear(self, testbed) -> None:
        if not self.active:
            return
        self._sender.stop()
        self._sink.close()
        self.active = False


@FaultRegistry.register
class WanCongestion(Fault):
    """UDP between server and wired client across the WAN link."""

    name = "wan_congestion"
    #: queueing on the shared WAN link shows up in TCP stats at every VP
    VANTAGE_SCOPE = ("mobile", "router", "server")

    MILD_FRACTION = (0.5, 0.8)
    SEVERE_FRACTION = (0.85, 1.4)
    UPLINK_SHARE = 0.15  # most of an iperf blast is downstream payload

    def apply(self, testbed) -> None:
        fraction = self.band(self.MILD_FRACTION, self.SEVERE_FRACTION)
        down_rate = fraction * testbed.wan_down.rate_bps
        up_rate = max(64e3, self.UPLINK_SHARE * fraction * testbed.wan_up.rate_bps)
        self.intensity = {"down_bps": down_rate, "up_bps": up_rate, "fraction": fraction}
        self._down_sink = UdpSink(testbed.wired_client, IPERF_PORT)
        self._down_sender = UdpSender(
            testbed.sim,
            testbed.server,
            testbed.wired_client.name,
            IPERF_PORT,
            rate_bps=down_rate,
            payload=1200,
            jitter_factor=0.15,
            tag="iperf-wan",
        )
        self._up_sink = UdpSink(testbed.server, IPERF_PORT)
        self._up_sender = UdpSender(
            testbed.sim,
            testbed.wired_client,
            testbed.server.name,
            IPERF_PORT,
            rate_bps=up_rate,
            payload=1200,
            jitter_factor=0.15,
            tag="iperf-wan",
        )
        self._down_sender.start()
        self._up_sender.start()
        self.active = True

    def clear(self, testbed) -> None:
        if not self.active:
            return
        self._down_sender.stop()
        self._up_sender.stop()
        self._down_sink.close()
        self._up_sink.close()
        self.active = False

"""Fault base class and registry."""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple, Type

#: canonical fault names as used in labels (Figure 4 of the paper)
FAULT_NAMES = (
    "wan_congestion",
    "wan_shaping",
    "lan_congestion",
    "lan_shaping",
    "mobile_load",
    "low_rssi",
    "wifi_interference",
)

#: fault -> path segment, for the location labels of Section 5.2.  The
#: wireless-medium faults occur in the user's local network.
FAULT_LOCATIONS = {
    "wan_congestion": "wan",
    "wan_shaping": "wan",
    "lan_congestion": "lan",
    "lan_shaping": "lan",
    "mobile_load": "mobile",
    "low_rssi": "lan",
    "wifi_interference": "lan",
}


class Fault:
    """One injected problem with a randomised intensity.

    Subclasses define ``MILD`` / ``SEVERE`` intensity bands and implement
    :meth:`apply` / :meth:`clear` against a
    :class:`repro.testbed.testbed.Testbed`.  Each concrete fault also
    declares ``VANTAGE_SCOPE``: the vantage points whose probes observe
    the fault's distinguishing signature (Section 5.3 — e.g. only the
    RSSI-equipped mobile/router VPs separate the wireless faults).
    """

    name: str = "abstract"

    #: vantage points that observe this fault's signature; concrete
    #: subclasses must override (enforced by ``repro lint`` rule F303).
    VANTAGE_SCOPE: Tuple[str, ...] = ()

    def __init__(self, severity: str, rng: random.Random):
        if severity not in ("mild", "severe"):
            raise ValueError(f"severity must be mild or severe, got {severity!r}")
        self.severity = severity
        self.rng = rng
        self.active = False
        self.intensity: Dict[str, float] = {}

    @property
    def location(self) -> str:
        return FAULT_LOCATIONS[self.name]

    @property
    def vantage_scope(self) -> Tuple[str, ...]:
        """Vantage points whose probes see this fault's signature."""
        return self.VANTAGE_SCOPE

    def band(self, mild: tuple, severe: tuple) -> float:
        """Draw an intensity uniformly from the band for this severity."""
        lo, hi = mild if self.severity == "mild" else severe
        return self.rng.uniform(lo, hi)

    def apply(self, testbed) -> None:
        raise NotImplementedError

    def clear(self, testbed) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.severity}, {self.intensity})"


class FaultRegistry:
    """Name -> class mapping, filled in by the concrete modules."""

    _classes: Dict[str, Type[Fault]] = {}

    @classmethod
    def register(cls, fault_cls: Type[Fault]) -> Type[Fault]:
        cls._classes[fault_cls.name] = fault_cls
        return fault_cls

    @classmethod
    def get(cls, name: str) -> Type[Fault]:
        if name not in cls._classes:
            raise KeyError(f"unknown fault {name!r}; known: {sorted(cls._classes)}")
        return cls._classes[name]


def make_fault(name: str, severity: str, rng: Optional[random.Random] = None) -> Fault:
    """Instantiate a fault by its canonical name.

    Callers inside a campaign must pass the scenario rng; the fallback is
    seeded from the fault identity so even ad-hoc construction (tests,
    REPL) stays reproducible run to run.
    """
    if rng is None:
        rng = random.Random(f"fault/{name}/{severity}")
    return FaultRegistry.get(name)(severity, rng)

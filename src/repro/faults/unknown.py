"""Unknown-fault injectors (Section 7's stated limitation).

"One of the limitations of our system is the inability to detect faults
that it has not been trained for yet ... new problems such as middleboxes
and DNS or routing miss-configurations."

These two injectors are deliberately *not* in :data:`FAULT_NAMES` and are
never part of a training campaign; the extension experiment uses them to
quantify the limitation: the classifier should still *flag* such sessions
as problematic (the features are anomalous) but cannot *name* the cause.

* :class:`DnsMisconfiguration` -- a broken/slow resolver: the player's
  clock starts at "play" but the TCP connect is delayed by seconds of
  lookup retries (or fails outright when severe).
* :class:`MiddleboxInterference` -- a badly-behaved middlebox on the
  router path: clamps the MSS on SYNs and strips SACK blocks, inflating
  packet counts and crippling loss recovery.
"""

from __future__ import annotations

from repro.faults.base import Fault
from repro.simnet.packet import Packet


class DnsMisconfiguration(Fault):
    """Resolver timeouts before the video connection can open."""

    name = "dns_misconfiguration"
    #: the delayed connect is visible wherever the TCP handshake is seen
    VANTAGE_SCOPE = ("mobile", "router", "server")

    MILD_DELAY_S = (3.0, 6.0)
    SEVERE_DELAY_S = (10.0, 25.0)

    @property
    def location(self) -> str:  # not in FAULT_LOCATIONS: override
        return "wan"

    def apply(self, testbed) -> None:
        delay = self.band(self.MILD_DELAY_S, self.SEVERE_DELAY_S)
        self.intensity = {"lookup_delay_s": delay}
        self._saved = getattr(testbed, "dns_delay_s", 0.0)
        testbed.dns_delay_s = delay
        self.active = True

    def clear(self, testbed) -> None:
        if not self.active:
            return
        testbed.dns_delay_s = self._saved
        self.active = False


class MiddleboxInterference(Fault):
    """MSS clamping + SACK stripping at the router."""

    name = "middlebox_interference"
    #: MSS clamping and SACK stripping distort TCP stats at every monitor
    VANTAGE_SCOPE = ("mobile", "router", "server")

    MILD_MSS = (700, 1000)
    SEVERE_MSS = (400, 560)

    @property
    def location(self) -> str:
        return "lan"

    def apply(self, testbed) -> None:
        clamp = int(self.band(self.MILD_MSS, self.SEVERE_MSS))
        self.intensity = {"mss_clamp": clamp}

        def transform(pkt: Packet) -> Packet:
            if pkt.mss_opt is not None and pkt.mss_opt > clamp:
                pkt.mss_opt = clamp
            if pkt.sack:
                pkt.sack = ()
            return pkt

        testbed.router.set_middlebox(transform)
        self.active = True

    def clear(self, testbed) -> None:
        if not self.active:
            return
        testbed.router.set_middlebox(None)
        self.active = False

"""Zero-dependency observability: spans, counters, histograms, traces.

The paper's framework is an always-on measurement pipeline; running it
at production scale demands knowing where wall time and records go
inside the campaign engine, the streaming pipeline and model training.
This package is that layer:

* :class:`Telemetry` — the process-local registry.  Disabled by default:
  every instrument call is then a constant-cost no-op, so instrumented
  hot paths stay bit-identical and effectively free.
* :meth:`Telemetry.span` — nestable context-manager spans (wall time,
  per-span counts, attrs).  ``repro lint`` rule O501 enforces the
  ``with``-only discipline.
* :func:`tracing` — enable collection for a block and export it.
* :mod:`repro.obs.trace` — the ``repro-trace-v1`` JSONL interchange
  format (write/read/merge).
* :mod:`repro.obs.report` — per-stage summary tables (what ``repro
  trace`` prints).
* :mod:`repro.obs.flow` — pipeline boundary metering machinery.

Quick use::

    from repro.obs import tracing, write_trace, summarize, render_summary

    with tracing() as tel:
        run_campaign(config, workers=4)
    payload = tel.export()
    write_trace("campaign-trace.jsonl", payload)
    print(render_summary(summarize(payload)))
"""

from repro.obs.report import render_summary, span_tree, summarize
from repro.obs.telemetry import (
    NULL_SPAN,
    Histogram,
    NullSpan,
    Span,
    Telemetry,
    get_telemetry,
    set_telemetry,
    tracing,
)
from repro.obs.trace import TRACE_FORMAT, merge_traces, read_trace, write_trace

__all__ = [
    "Histogram",
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "TRACE_FORMAT",
    "Telemetry",
    "get_telemetry",
    "merge_traces",
    "read_trace",
    "render_summary",
    "set_telemetry",
    "span_tree",
    "summarize",
    "tracing",
    "write_trace",
]

"""The process-local telemetry registry: spans, counters, histograms.

Everything the observability layer collects flows through one
:class:`Telemetry` instance per process (``get_telemetry()``).  The
registry is **disabled by default**: every instrument call then takes the
constant-cost early-return path (``span()`` hands back one shared no-op
span, ``count()``/``observe()``/``event()`` return immediately), so
instrumented hot paths stay bit-identical and near-zero-cost with
tracing off.  Nothing here touches the simulation clock or any RNG —
telemetry can never perturb campaign records.

Spans
-----

A span measures one wall-clock interval (``time.perf_counter``) plus
per-span ``counts`` and static ``attrs``.  Spans nest through a plain
stack, so the parent of a span is whatever span was open when it
started::

    tel = get_telemetry()
    with tel.span("campaign.run", kind="controlled") as sp:
        with tel.span("campaign.instance", index=0):
            ...
        sp.count("instances")

Spans are context managers **only** — ``repro lint`` rule O501 rejects a
``span(...)`` call that is not the context expression of a ``with``
statement, because a span that is opened but never closed corrupts the
nesting stack.  Non-lexical lifetimes (e.g. per-stage aggregates
measured across a whole pipeline drain) go through
:meth:`Telemetry.record_span`, which files an already-measured span
without ever opening one.

Workers
-------

A forked campaign worker collects into its own registry and ships
:meth:`Telemetry.export` payloads back with each result; the parent
:meth:`Telemetry.absorb`\\ s them — span ids are re-based, the spans hang
off whatever span the parent currently has open, and counters and
histograms merge additively, so a ``workers=4`` trace aggregates exactly
like a serial one while keeping per-worker attribution in span attrs.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from types import TracebackType
from typing import Dict, Iterator, List, Optional, Type, Union

from repro.schemas import TRACE_V1

#: JSON-safe attribute values accepted on spans and events
AttrValue = Union[str, int, float, bool, None]

#: maximum retained events; beyond it new events are counted but dropped
MAX_EVENTS = 10_000


class Span:
    """One timed interval in the trace tree (use only via ``with``)."""

    __slots__ = ("telemetry", "id", "parent", "name", "t0", "dur_s",
                 "counts", "attrs")

    def __init__(
        self,
        telemetry: "Telemetry",
        span_id: int,
        parent: Optional[int],
        name: str,
        attrs: Dict[str, AttrValue],
    ) -> None:
        self.telemetry = telemetry
        self.id = span_id
        self.parent = parent
        self.name = name
        self.t0 = 0.0
        self.dur_s = 0.0
        self.counts: Dict[str, int] = {}
        self.attrs = attrs

    def count(self, name: str, n: int = 1) -> None:
        """Bump a span-local counter (e.g. records seen in this span)."""
        self.counts[name] = self.counts.get(name, 0) + n

    def set(self, name: str, value: AttrValue) -> None:
        """Attach/overwrite one attribute after the span has started."""
        self.attrs[name] = value

    def __enter__(self) -> "Span":
        self.telemetry._push(self)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.telemetry._pop(self)

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "t0": self.t0,
            "dur_s": self.dur_s,
            "counts": dict(self.counts),
            "attrs": dict(self.attrs),
        }


class NullSpan:
    """The shared no-op span handed out while telemetry is disabled."""

    __slots__ = ()

    def count(self, name: str, n: int = 1) -> None:
        pass

    def set(self, name: str, value: AttrValue) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        pass


#: the singleton no-op span: zero allocation on the disabled path
NULL_SPAN = NullSpan()

SpanLike = Union[Span, NullSpan]


class Histogram:
    """Streaming summary of observed values: count / sum / min / max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: Dict[str, float]) -> None:
        """Fold an exported histogram dict into this one (worker merge)."""
        count = int(other.get("count", 0))
        if count == 0:
            return
        self.count += count
        self.total += float(other.get("total", 0.0))
        self.min = min(self.min, float(other.get("min", self.min)))
        self.max = max(self.max, float(other.get("max", self.max)))

    def to_dict(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class Telemetry:
    """Process-local collection point for spans, counters and histograms.

    Single-threaded by design (the repo parallelises with processes, not
    threads): spans nest through one stack, and forked workers ship their
    own registries back to the parent via :meth:`export`/:meth:`absorb`.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._stack: List[Span] = []
        self._spans: List[Span] = []
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.events: List[Dict[str, object]] = []

    # ------------------------------------------------------------ lifecycle

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all collected data and restart the trace clock."""
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._stack = []
        self._spans = []
        self.counters = {}
        self.histograms = {}
        self.events = []

    # ------------------------------------------------------------ instruments

    def span(self, name: str, **attrs: AttrValue) -> SpanLike:
        """A new child span of whatever span is currently open.

        Must be used as a context manager (``with tel.span(...):``) —
        rule O501 enforces this statically.  Returns the shared
        :data:`NULL_SPAN` when disabled.
        """
        if not self.enabled:
            return NULL_SPAN
        span = Span(self, 0, None, name, dict(attrs))
        return span

    def count(self, name: str, n: int = 1) -> None:
        """Bump a registry-level counter."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one value into a named histogram."""
        if not self.enabled:
            return
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def event(self, name: str, **attrs: AttrValue) -> None:
        """Record a point-in-time event (e.g. a checkpoint save)."""
        if not self.enabled:
            return
        self.count("events.total")
        if len(self.events) >= MAX_EVENTS:
            self.count("events.dropped")
            return
        self.events.append(
            {"name": name, "t": self._now(), "attrs": dict(attrs)}
        )

    def record_span(
        self,
        name: str,
        dur_s: float,
        t0: Optional[float] = None,
        counts: Optional[Dict[str, int]] = None,
        attrs: Optional[Dict[str, AttrValue]] = None,
    ) -> None:
        """File an already-measured span (machinery API).

        For non-lexical lifetimes — e.g. a pipeline stage's aggregate
        wall time, measured across interleaved generator pulls — where a
        context-managed span cannot express the interval.  The span is
        parented to whatever span is currently open and never touches
        the nesting stack.
        """
        if not self.enabled:
            return
        span = Span(
            self,
            self._next_id,
            self._stack[-1].id if self._stack else None,
            name,
            dict(attrs or {}),
        )
        self._next_id += 1
        span.t0 = self._now() - dur_s if t0 is None else t0
        span.dur_s = dur_s
        if counts:
            span.counts = dict(counts)
        self._spans.append(span)

    # ------------------------------------------------------------ span stack

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _push(self, span: Span) -> None:
        span.id = self._next_id
        self._next_id += 1
        span.parent = self._stack[-1].id if self._stack else None
        span.t0 = self._now()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.dur_s = self._now() - span.t0
        # Tolerate a corrupted stack (a span leaked past its parent's
        # exit) instead of crashing the instrumented program.
        if span in self._stack:
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            self._stack.pop()
        self._spans.append(span)

    # ------------------------------------------------------------ aggregation

    def export(self, **meta: AttrValue) -> Dict[str, object]:
        """A JSON-safe snapshot of everything collected so far.

        Open spans are not included — only finished ones.  ``meta``
        key/values land in the payload's ``meta`` dict (e.g.
        ``worker=os.getpid()``).
        """
        spans = sorted(self._spans, key=lambda s: (s.t0, s.id))
        return {
            "format": TRACE_V1,
            "meta": {"pid": os.getpid(), **meta},
            "spans": [span.to_dict() for span in spans],
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.histograms.items())
            },
            "events": [dict(event) for event in self.events],
        }

    def absorb(
        self, payload: Dict[str, object], worker: Optional[AttrValue] = None
    ) -> None:
        """Merge a child registry's :meth:`export` payload into this one.

        Span ids are re-based past this registry's counter; top-level
        absorbed spans hang off the currently open span; every absorbed
        span is stamped with ``worker`` (default: the payload's pid).
        Counters add, histograms merge, events append.
        """
        if not self.enabled:
            return
        if payload.get("format") != TRACE_V1:
            raise ValueError(f"not a {TRACE_V1} payload")
        meta = payload.get("meta") or {}
        if worker is None:
            worker = meta.get("pid") if isinstance(meta, dict) else None
        base = self._next_id
        top_parent = self._stack[-1].id if self._stack else None
        max_id = 0
        for raw in payload.get("spans", []):  # type: ignore[union-attr]
            span = Span(
                self,
                base + int(raw["id"]),
                (base + int(raw["parent"])
                 if raw.get("parent") is not None else top_parent),
                str(raw["name"]),
                dict(raw.get("attrs") or {}),
            )
            if worker is not None and "worker" not in span.attrs:
                span.attrs["worker"] = worker
            span.t0 = float(raw.get("t0", 0.0))
            span.dur_s = float(raw.get("dur_s", 0.0))
            span.counts = {
                str(k): int(v) for k, v in (raw.get("counts") or {}).items()
            }
            self._spans.append(span)
            max_id = max(max_id, int(raw["id"]))
        self._next_id = base + max_id + 1
        for name, value in (payload.get("counters") or {}).items():  # type: ignore[union-attr]
            self.counters[name] = self.counters.get(name, 0) + int(value)
        for name, blob in (payload.get("histograms") or {}).items():  # type: ignore[union-attr]
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.merge(blob)
        for event in payload.get("events", []):  # type: ignore[union-attr]
            if len(self.events) >= MAX_EVENTS:
                break
            event = dict(event)
            if worker is not None:
                attrs = dict(event.get("attrs") or {})
                attrs.setdefault("worker", worker)
                event["attrs"] = attrs
            self.events.append(event)

    # ------------------------------------------------------------ inspection

    @property
    def spans(self) -> List[Span]:
        """Finished spans, in completion order (mutating is undefined)."""
        return self._spans


#: the process-local registry every instrumented call site uses
_TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-local registry (disabled unless someone enabled it)."""
    return _TELEMETRY


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Swap the process-local registry; returns the previous one.

    Machinery for campaign workers, which collect each instance into a
    scratch registry so only that instance's data ships back.
    """
    global _TELEMETRY
    previous = _TELEMETRY
    _TELEMETRY = telemetry
    return previous


@contextmanager
def tracing(enabled: bool = True) -> Iterator[Telemetry]:
    """Enable (and reset) the process registry for the duration of a block.

    The previous enabled/disabled state is restored on exit; the
    collected data is left in place so the caller can ``export()`` it::

        with tracing() as tel:
            run_campaign(config)
        trace = tel.export()
    """
    tel = get_telemetry()
    was_enabled = tel.enabled
    tel.reset()
    tel.enabled = enabled
    try:
        yield tel
    finally:
        tel.enabled = was_enabled

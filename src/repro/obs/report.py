"""Trace summaries: from a raw export payload to a per-stage table.

``summarize`` reduces a ``repro-trace-v1`` payload (live export or
:func:`repro.obs.trace.read_trace` output) to the operational questions
the trace exists to answer — where did wall time go, and where did
records go::

    stage      in    out   inclusive   self
    campaign    0     50      12.41s  12.41s
    jsonl-spool 50    50      12.47s   0.06s
    count       50    50      12.48s   0.01s

plus per-worker campaign attribution and aggregate ML timings.
``render_summary`` turns that into the aligned text table ``repro
trace`` prints; the summary dict itself is the ``--json`` output.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: span names the campaign layer emits
INSTANCE_SPAN = "campaign.instance"
#: prefix of the per-stage aggregate spans the pipeline layer emits
STAGE_SPAN_PREFIX = "pipeline.stage."


def _fmt_seconds(value: float) -> str:
    if value >= 100.0:
        return f"{value:.0f}s"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"


def summarize(payload: Dict[str, object]) -> Dict[str, object]:
    """Aggregate a trace payload into stage / worker / ML summaries."""
    spans: List[Dict[str, object]] = list(payload.get("spans") or [])  # type: ignore[arg-type]

    stages: List[Dict[str, object]] = []
    for span in spans:
        name = str(span.get("name", ""))
        if not name.startswith(STAGE_SPAN_PREFIX):
            continue
        counts = dict(span.get("counts") or {})  # type: ignore[arg-type]
        attrs = dict(span.get("attrs") or {})  # type: ignore[arg-type]
        stages.append(
            {
                "stage": name[len(STAGE_SPAN_PREFIX):],
                "position": int(attrs.get("position", len(stages))),
                "records_in": int(counts.get("records_in", 0)),
                "records_out": int(counts.get("records_out", 0)),
                "inclusive_s": float(span.get("dur_s", 0.0)),
                "self_s": float(attrs.get("self_s", span.get("dur_s", 0.0))),
            }
        )
    stages.sort(key=lambda row: row["position"])

    workers: Dict[str, Dict[str, float]] = {}
    instances = 0
    instance_total = 0.0
    instance_max = 0.0
    for span in spans:
        if str(span.get("name", "")) != INSTANCE_SPAN:
            continue
        attrs = dict(span.get("attrs") or {})  # type: ignore[arg-type]
        dur = float(span.get("dur_s", 0.0))
        instances += 1
        instance_total += dur
        instance_max = max(instance_max, dur)
        key = str(attrs.get("worker", "main"))
        bucket = workers.setdefault(key, {"instances": 0, "busy_s": 0.0})
        bucket["instances"] += 1
        bucket["busy_s"] += dur

    ml: Dict[str, Dict[str, float]] = {}
    for span in spans:
        name = str(span.get("name", ""))
        if not (name.startswith("ml.") or name.startswith("analyzer.")
                or name.startswith("diagnose.")):
            continue
        bucket = ml.setdefault(name, {"calls": 0, "total_s": 0.0})
        bucket["calls"] += 1
        bucket["total_s"] += float(span.get("dur_s", 0.0))

    wall_s = 0.0
    for span in spans:
        if span.get("parent") is None:
            wall_s = max(wall_s, float(span.get("dur_s", 0.0)))

    return {
        "wall_s": wall_s,
        "stages": stages,
        "campaign": {
            "instances": instances,
            "busy_s": instance_total,
            "mean_s": instance_total / instances if instances else 0.0,
            "max_s": instance_max,
            "workers": {
                key: dict(value) for key, value in sorted(workers.items())
            },
        },
        "ml": {name: dict(value) for name, value in sorted(ml.items())},
        "counters": dict(payload.get("counters") or {}),  # type: ignore[arg-type]
        "events": len(list(payload.get("events") or [])),  # type: ignore[arg-type]
    }


def render_summary(summary: Dict[str, object]) -> str:
    """The human-readable per-stage table ``repro trace`` prints."""
    lines: List[str] = []
    wall = float(summary.get("wall_s", 0.0))
    lines.append(f"trace: wall {_fmt_seconds(wall)}" if wall else "trace:")

    stages: List[Dict[str, object]] = list(summary.get("stages") or [])  # type: ignore[arg-type]
    if stages:
        lines.append("")
        header = (f"  {'stage':<14} {'in':>7} {'out':>7} "
                  f"{'inclusive':>10} {'self':>9}")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for row in stages:
            lines.append(
                f"  {str(row['stage']):<14} {int(row['records_in']):>7} "
                f"{int(row['records_out']):>7} "
                f"{_fmt_seconds(float(row['inclusive_s'])):>10} "
                f"{_fmt_seconds(float(row['self_s'])):>9}"
            )

    campaign: Dict[str, object] = dict(summary.get("campaign") or {})  # type: ignore[arg-type]
    instances = int(campaign.get("instances", 0))
    if instances:
        lines.append("")
        lines.append(
            f"  campaign: {instances} instances, "
            f"busy {_fmt_seconds(float(campaign.get('busy_s', 0.0)))}, "
            f"mean {_fmt_seconds(float(campaign.get('mean_s', 0.0)))}, "
            f"max {_fmt_seconds(float(campaign.get('max_s', 0.0)))}"
        )
        workers: Dict[str, Dict[str, float]] = dict(campaign.get("workers") or {})  # type: ignore[arg-type]
        if len(workers) > 1 or (workers and "main" not in workers):
            for key, bucket in workers.items():
                lines.append(
                    f"    worker {key}: {int(bucket['instances'])} instances, "
                    f"busy {_fmt_seconds(float(bucket['busy_s']))}"
                )

    ml: Dict[str, Dict[str, float]] = dict(summary.get("ml") or {})  # type: ignore[arg-type]
    if ml:
        lines.append("")
        for name, bucket in ml.items():
            lines.append(
                f"  {name}: {int(bucket['calls'])} calls, "
                f"total {_fmt_seconds(float(bucket['total_s']))}"
            )

    counters: Dict[str, int] = dict(summary.get("counters") or {})  # type: ignore[arg-type]
    if counters:
        lines.append("")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name} = {value}")
    return "\n".join(lines)


def span_tree(payload: Dict[str, object], max_depth: Optional[int] = None) -> str:
    """An indented span tree (debug view of a trace payload)."""
    spans: List[Dict[str, object]] = list(payload.get("spans") or [])  # type: ignore[arg-type]
    children: Dict[Optional[int], List[Dict[str, object]]] = {}
    for span in spans:
        parent = span.get("parent")
        children.setdefault(parent if parent is None else int(parent), []).append(span)  # type: ignore[arg-type]
    lines: List[str] = []

    def walk(parent: Optional[int], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        for span in children.get(parent, []):
            lines.append(
                f"{'  ' * depth}{span['name']} "
                f"[{_fmt_seconds(float(span.get('dur_s', 0.0)))}]"
            )
            walk(int(span["id"]), depth + 1)  # type: ignore[arg-type]

    walk(None, 0)
    return "\n".join(lines)

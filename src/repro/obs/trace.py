"""``repro-trace-v1``: the JSONL trace interchange format.

A trace file is a header line followed by one JSON object per line, each
tagged with a ``kind``::

    {"format": "repro-trace-v1", "meta": {...}}
    {"kind": "span", "id": 1, "parent": null, "name": "campaign.run", ...}
    {"kind": "counter", "name": "campaign.instances", "value": 50}
    {"kind": "histogram", "name": "pipeline.stage.count.pull_s", ...}
    {"kind": "event", "name": "checkpoint.save", "t": 1.25, "attrs": {...}}

The format is line-oriented so traces can be streamed, grepped, and
concatenated; :func:`read_trace` reconstructs exactly the payload dict
:meth:`repro.obs.telemetry.Telemetry.export` produced (the round-trip is
bit-exact — Python's JSON float encoding is reversible), and
:func:`merge_traces` folds multiple payloads (e.g. per-worker traces)
into one, adding counters and merging histograms the same way the live
registry does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.schemas import TRACE_V1

TRACE_FORMAT = TRACE_V1

#: line kinds a trace file may contain, in canonical write order
_KINDS = ("span", "counter", "histogram", "event")


def write_trace(path: Union[str, Path], payload: Dict[str, object]) -> int:
    """Write an exported telemetry payload as trace JSONL; returns lines.

    ``payload`` is the dict :meth:`Telemetry.export` returns.  Spans are
    written in payload order, counters and histograms sorted by name, so
    identical payloads produce byte-identical files.
    """
    if payload.get("format") != TRACE_FORMAT:
        raise ValueError(f"payload is not a {TRACE_FORMAT} export")
    lines: List[str] = [
        json.dumps(
            {"format": TRACE_FORMAT, "meta": payload.get("meta") or {}},
            sort_keys=True,
        )
    ]
    for span in payload.get("spans", []):  # type: ignore[union-attr]
        lines.append(json.dumps({"kind": "span", **span}, sort_keys=True))
    counters = payload.get("counters") or {}
    for name in sorted(counters):  # type: ignore[union-attr]
        lines.append(
            json.dumps(
                {"kind": "counter", "name": name, "value": counters[name]},
                sort_keys=True,
            )
        )
    histograms = payload.get("histograms") or {}
    for name in sorted(histograms):  # type: ignore[union-attr]
        lines.append(
            json.dumps(
                {"kind": "histogram", "name": name, **histograms[name]},
                sort_keys=True,
            )
        )
    for event in payload.get("events", []):  # type: ignore[union-attr]
        lines.append(json.dumps({"kind": "event", **event}, sort_keys=True))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)


def read_trace(path: Union[str, Path]) -> Dict[str, object]:
    """Read a trace file back into an export-shaped payload dict.

    Raises ``ValueError`` on a missing/foreign header or an unknown line
    kind — a trace that cannot round-trip must fail loudly, not decay
    into partial data.
    """
    text = Path(path).read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path}: not a {TRACE_FORMAT} trace")
    payload: Dict[str, object] = {
        "format": TRACE_FORMAT,
        "meta": header.get("meta") or {},
        "spans": [],
        "counters": {},
        "histograms": {},
        "events": [],
    }
    spans: List[Dict[str, object]] = payload["spans"]  # type: ignore[assignment]
    counters: Dict[str, int] = payload["counters"]  # type: ignore[assignment]
    histograms: Dict[str, Dict[str, float]] = payload["histograms"]  # type: ignore[assignment]
    events: List[Dict[str, object]] = payload["events"]  # type: ignore[assignment]
    for lineno, line in enumerate(lines[1:], start=2):
        row = json.loads(line)
        kind = row.pop("kind", None)
        if kind == "span":
            spans.append(row)
        elif kind == "counter":
            counters[str(row["name"])] = int(row["value"])
        elif kind == "histogram":
            name = str(row.pop("name"))
            histograms[name] = row
        elif kind == "event":
            events.append(row)
        else:
            raise ValueError(f"{path}:{lineno}: unknown trace line kind {kind!r}")
    return payload


def merge_traces(payloads: List[Dict[str, object]]) -> Dict[str, object]:
    """Fold several trace payloads into one (e.g. per-worker traces).

    Delegates to :meth:`Telemetry.absorb`, so span-id re-basing, worker
    stamping, counter addition and histogram merging behave exactly as
    they do when a live parent absorbs its workers.
    """
    from repro.obs.telemetry import Telemetry

    merged = Telemetry(enabled=True)
    for payload in payloads:
        merged.absorb(payload)
    return merged.export()

"""Pipeline flow metering: per-stage wall time and record counts.

A streaming pipeline interleaves every stage's work inside one generator
chain, so a stage's lifetime is not a lexical block — a context-managed
span cannot measure it.  Instead each stage boundary gets a
:class:`StageMeter` that accumulates the time spent pulling items out of
that stage (*inclusive* time: the stage's own work plus everything
upstream) and counts the records crossing the boundary.  When the flow
ends, :func:`metered_flow`'s finalizer files one aggregate span per
stage via :meth:`~repro.obs.telemetry.Telemetry.record_span`, computing
each stage's *self* time as its inclusive time minus its upstream
neighbour's — the per-stage attribution ``repro trace`` prints.

Records are never copied, reordered or retained: with tracing on the
stream is item-for-item identical to the unmetered chain.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.obs.telemetry import get_telemetry


class StageMeter:
    """Accumulates pull time and record count at one stage boundary."""

    __slots__ = ("name", "position", "records_out", "pull_s", "t_first")

    def __init__(self, name: str, position: int) -> None:
        self.name = name
        self.position = position
        self.records_out = 0
        self.pull_s = 0.0
        self.t_first: Optional[float] = None

    def wrap(self, stream: Iterator[object]) -> Iterator[object]:
        """Meter every ``next()`` on ``stream``, forwarding items as-is."""
        iterator = iter(stream)
        while True:
            t0 = time.perf_counter()
            if self.t_first is None:
                self.t_first = t0
            try:
                item = next(iterator)
            except StopIteration:
                self.pull_s += time.perf_counter() - t0
                return
            self.pull_s += time.perf_counter() - t0
            self.records_out += 1
            yield item


def metered_flow(
    stages: Sequence[object],
) -> Tuple[Iterator[object], Callable[[], None]]:
    """Chain ``stages`` with a meter at every boundary.

    Returns ``(stream, finalize)``.  Drain ``stream`` as usual, then call
    ``finalize()`` (with the enclosing pipeline span still open) to file
    the per-stage aggregate spans and counters.  ``finalize`` is
    idempotent-safe only in the sense that metering stops with the flow;
    call it exactly once.
    """
    tel = get_telemetry()
    epoch = time.perf_counter()
    stream: Iterator[object] = iter(())
    meters: List[StageMeter] = []
    for position, stage in enumerate(stages):
        stream = stage.process(stream)  # type: ignore[attr-defined]
        meter = StageMeter(str(getattr(stage, "name", type(stage).__name__)),
                           position)
        stream = meter.wrap(stream)
        meters.append(meter)

    def finalize() -> None:
        upstream: Optional[StageMeter] = None
        for meter in meters:
            records_in = upstream.records_out if upstream is not None else 0
            self_s = meter.pull_s - (upstream.pull_s if upstream is not None else 0.0)
            t0 = (meter.t_first - epoch) if meter.t_first is not None else 0.0
            tel.record_span(
                f"pipeline.stage.{meter.name}",
                dur_s=meter.pull_s,
                counts={
                    "records_in": records_in,
                    "records_out": meter.records_out,
                },
                attrs={
                    "position": meter.position,
                    "self_s": max(0.0, self_s),
                    "t_offset_s": t0,
                },
            )
            tel.count(f"pipeline.{meter.name}.records_out", meter.records_out)
            upstream = meter

    return stream, finalize

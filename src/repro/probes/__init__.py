"""Passive measurement probes for the three vantage points.

Mirrors Section 3.1 of the paper.  Each vantage point (mobile, router,
server) deploys a stack of probes:

* :mod:`repro.probes.tstat` -- transport layer: a passive per-flow TCP
  analyser reconstructing ~110 tstat-style metrics from the packets that
  cross a tapped interface (RTT, retransmissions, out-of-order, windows,
  MSS, inter-arrival statistics, ...).
* :mod:`repro.probes.hardware` -- OS/hardware layer: CPU utilisation and
  free memory sampled at 1 Hz and aggregated per video flow.
* :mod:`repro.probes.radio` -- link/physical layer for wireless NICs:
  RSSI samples, PHY rate, link-layer retries/drops, disconnections.
* :mod:`repro.probes.link` -- link layer for any NIC: bytes/packets and
  send/receive rates during the flow (turned into *utilisation* by feature
  construction), queue drops.
* :mod:`repro.probes.application` -- player QoE metrics (startup delay,
  stalls, buffer), used exclusively for MOS ground-truth labelling.

Probes are strictly passive: they observe packets via interface taps and
sample public hardware counters; they never read simulator-internal TCP
state.
"""

from repro.probes.application import ApplicationProbe
from repro.probes.hardware import HardwareProbe
from repro.probes.link import LinkProbe
from repro.probes.radio import RadioProbe
from repro.probes.rnc import RncProbe
from repro.probes.tstat import FlowStats, TstatProbe

__all__ = [
    "ApplicationProbe",
    "HardwareProbe",
    "LinkProbe",
    "RadioProbe",
    "RncProbe",
    "TstatProbe",
    "FlowStats",
]

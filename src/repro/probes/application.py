"""Application-layer probe: playback QoE metrics from the player.

Per Section 3.1 these metrics (startup delay, stalls, frame skips, buffer
status, bitrate) come from the mobile OS "irrespectively of the video
application".  Crucially, the paper uses them *only* to construct the MOS
ground truth -- they are never classifier features -- and this module
keeps that contract: the campaign stores them in the instance's label
block, not in the feature vector.
"""

from __future__ import annotations

from typing import Dict

from repro.video.session import VideoSession


class ApplicationProbe:
    """Reads the player-side QoE metrics of a finished session."""

    def collect(self, session: VideoSession) -> Dict[str, float]:
        m = session.player.metrics
        return {
            "started": float(m.started),
            "completed": float(m.completed),
            "abandoned": float(m.abandoned),
            "startup_delay": m.startup_delay_s,
            "stall_count": float(m.stall_count),
            "total_stall_time": m.total_stall_s,
            "stutter_events": float(m.stutter_events),
            "stutter_time": m.stutter_s,
            "frames_skipped": float(m.frames_skipped),
            "qoe_stall_count": float(m.qoe_stall_count),
            "qoe_stall_time": m.qoe_stall_s,
            "watch_time": m.watch_time_s,
            "content_played": m.content_played_s,
            "bytes_received": float(m.bytes_received),
            "buffer_min": m.buffer_min_s,
            "buffer_avg": m.buffer_avg_s,
            "video_bitrate": session.profile.bitrate_bps,
            "video_duration": session.profile.duration_s,
        }

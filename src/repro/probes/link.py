"""Link-layer NIC probe: traffic volumes, rates and drops per interface.

For each NIC the paper's probes "extract information about the utilization,
bandwidth, and dropped or retransmitted packets".  This probe snapshots the
interface counters at flow start/stop and derives byte/packet deltas and
average send/receive rates.  The *utilisation* feature (rate divided by the
maximum rate observed for the NIC over the whole dataset) is computed later
by feature construction, which is exactly how the paper normalises it.

Attached to a router it can additionally expose the internal bridge state
(queueing delay and drops), the software equivalent of a home router's
qdisc counters.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.simnet.engine import SessionContext
from repro.simnet.link import Channel
from repro.simnet.node import Interface


class LinkProbe:
    """Byte/packet counters for one interface over one flow window."""

    def __init__(
        self,
        sim: SessionContext,
        iface: Interface,
        bridge: Optional[Channel] = None,
    ):
        self.sim = sim
        self.iface = iface
        self.bridge = bridge
        self._running = False
        self._snapshot: Dict[str, float] = {}
        self._start_time = 0.0

    def start(self) -> None:
        if self._running:
            raise RuntimeError("probe already running")
        self._running = True
        self._start_time = self.sim.now
        self._snapshot = self._read()

    def stop(self) -> Dict[str, float]:
        self._running = False
        window = max(1e-9, self.sim.now - self._start_time)
        now = self._read()
        d = {k: now[k] - v for k, v in self._snapshot.items()}
        out = {
            "tx_bytes": d["tx_bytes"],
            "rx_bytes": d["rx_bytes"],
            "tx_pkts": d["tx_pkts"],
            "rx_pkts": d["rx_pkts"],
            "tx_drops": d["tx_drops"],
            "tx_rate": d["tx_bytes"] * 8.0 / window,
            "rx_rate": d["rx_bytes"] * 8.0 / window,
        }
        if self.bridge is not None:
            out["bridge_drops"] = d["bridge_drops"]
            out["bridge_busy"] = min(1.0, d["bridge_busy"] / window)
            pkts = max(1.0, d["bridge_pkts"])
            out["bridge_qdelay_avg"] = d["bridge_qdelay"] / pkts
        return out

    def _read(self) -> Dict[str, float]:
        snap = {
            "tx_bytes": float(self.iface.tx_bytes),
            "rx_bytes": float(self.iface.rx_bytes),
            "tx_pkts": float(self.iface.tx_pkts),
            "rx_pkts": float(self.iface.rx_pkts),
            "tx_drops": float(self.iface.tx_drops),
        }
        if self.bridge is not None:
            snap["bridge_drops"] = float(self.bridge.pkts_dropped_queue)
            snap["bridge_busy"] = self.bridge.busy_time
            snap["bridge_qdelay"] = self.bridge.queue_delay_sum
            snap["bridge_pkts"] = float(self.bridge.pkts_sent)
        return snap

"""Link/physical-layer probe for wireless NICs.

Per Section 3.1: "for wireless links, the radio technology, the advertised
rate and signal strength information (RSSI) for each of the connected
devices is monitored", with per-flow aggregates such as "the
average/minimum RSSI or the number of disconnections/handovers during the
flow".  RSSI is sampled at one-second intervals, as in the paper
(Section 3.2).

This probe is only available at the vantage point that owns the radio --
in the testbed, the mobile device (and the AP for its own stations); the
router and server VPs have no RSSI information, which drives the paper's
per-VP accuracy asymmetries for wireless faults.
"""

from __future__ import annotations

from typing import Dict

from repro.probes.hardware import _Aggregate
from repro.simnet.engine import SessionContext
from repro.simnet.wireless import WifiStation

SAMPLE_INTERVAL_S = 1.0


class RadioProbe:
    """Samples one station's radio state during a video flow."""

    def __init__(self, sim: SessionContext, station: WifiStation, noise_std: float = 1.0):
        self.sim = sim
        self.station = station
        self.noise_std = noise_std
        self.rssi = _Aggregate()
        self.phy_rate = _Aggregate()
        self._event = None
        self._running = False
        self._start_counters: Dict[str, float] = {}

    def start(self) -> None:
        if self._running:
            raise RuntimeError("probe already running")
        self._running = True
        st = self.station
        self._start_counters = {
            "retries": st.retries,
            "frame_drops": st.frame_drops,
            "queue_drops": st.queue_drops,
            "disconnections": st.disconnections,
            "frames_tx": st.frames_tx,
            "frames_rx": st.frames_rx,
            "airtime": st.airtime,
            "rate_sum": st.rate_sum,
            "rate_samples": st.rate_samples,
        }
        self._start_time = self.sim.now
        self._sample()

    def stop(self) -> Dict[str, float]:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None
        st = self.station
        window = max(1e-9, self.sim.now - self._start_time)
        d = {k: getattr(st, k) - v for k, v in self._start_counters.items()}
        frames = d["frames_tx"] + d["frames_rx"]
        rate_avg = (
            d["rate_sum"] / d["rate_samples"] if d["rate_samples"] > 0 else 0.0
        )
        out: Dict[str, float] = {
            "retries": d["retries"],
            "retry_rate": d["retries"] / frames if frames > 0 else 0.0,
            "frame_drops": d["frame_drops"],
            "queue_drops": d["queue_drops"],
            "disconnections": d["disconnections"],
            "airtime_frac": min(1.0, d["airtime"] / window),
            "phy_rate_avg": rate_avg,
        }
        out.update(self.rssi.metrics("rssi"))
        # The paper keeps only the session-average RSSI after feature
        # construction, but the raw min/max/std are part of the 354-metric
        # space that feature selection prunes.
        return out

    def _sample(self) -> None:
        if not self._running:
            return
        value = self.station.rssi(self.sim.now) + self.sim.normal(0.0, self.noise_std)
        self.rssi.add(value)
        self._event = self.sim.schedule(SAMPLE_INTERVAL_S, self._sample)

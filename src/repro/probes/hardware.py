"""OS/hardware-layer probe: CPU utilisation and free memory at 1 Hz.

The paper monitors "the percentage of load, CPU utilization, the amount of
free system memory and so on" at each vantage point, and returns aggregated
per-flow values (average, minimum, maximum, standard deviation).

The probe samples two callables supplied by the device model, adding small
measurement noise, and aggregates over the window between ``start`` and
``stop`` (one video flow).
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from repro.simnet.engine import SessionContext

SAMPLE_INTERVAL_S = 1.0


class _Aggregate:
    """Streaming avg/min/max/std accumulator for probe samples."""

    __slots__ = ("n", "mean", "m2", "min", "max")

    def __init__(self):
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        d = x - self.mean
        self.mean += d / self.n
        self.m2 += d * (x - self.mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)

    def metrics(self, name: str) -> Dict[str, float]:
        if self.n == 0:
            return {
                f"{name}_avg": 0.0,
                f"{name}_min": 0.0,
                f"{name}_max": 0.0,
                f"{name}_std": 0.0,
            }
        std = math.sqrt(self.m2 / (self.n - 1)) if self.n > 1 else 0.0
        return {
            f"{name}_avg": self.mean,
            f"{name}_min": self.min,
            f"{name}_max": self.max,
            f"{name}_std": std,
        }


class HardwareProbe:
    """Samples CPU utilisation and free memory for one device."""

    def __init__(
        self,
        sim: SessionContext,
        cpu_fn: Callable[[], float],
        mem_fn: Callable[[], float],
        noise_std: float = 0.02,
    ):
        self.sim = sim
        self.cpu_fn = cpu_fn
        self.mem_fn = mem_fn
        self.noise_std = noise_std
        self.cpu = _Aggregate()
        self.mem = _Aggregate()
        self._event = None
        self._running = False

    def start(self) -> None:
        if self._running:
            raise RuntimeError("probe already running")
        self._running = True
        self._sample()

    def stop(self) -> Dict[str, float]:
        """Stop sampling and return the aggregated metric set."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None
        out: Dict[str, float] = {}
        out.update(self.cpu.metrics("cpu"))
        out.update(self.mem.metrics("mem_free"))
        return out

    def _sample(self) -> None:
        if not self._running:
            return
        noise = self.sim.normal(0.0, self.noise_std)
        self.cpu.add(min(1.0, max(0.0, self.cpu_fn() + noise)))
        noise = self.sim.normal(0.0, self.noise_std)
        self.mem.add(min(1.0, max(0.0, self.mem_fn() + noise)))
        self._event = self.sim.schedule(SAMPLE_INTERVAL_S, self._sample)

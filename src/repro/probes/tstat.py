"""Passive per-flow TCP analysis (the paper's ``tstat`` probe).

A :class:`TstatProbe` taps one interface and reconstructs, for every TCP
flow it observes, the per-direction statistics documented in tstat's
``log_tcp_complete``: packet/byte counts, retransmission and out-of-order
heuristics, duplicate ACKs, window and MSS tracking, RTT estimation by
data-to-ACK matching, inter-arrival statistics, and timing landmarks such
as the *first payload packet arrival* that the paper's classifier ranks
highly.

Everything is inferred from packet headers and arrival times, exactly as a
passive monitor must: the probe never reads endpoint TCP state.  This
preserves the paper's per-VP asymmetries -- e.g. a router tap measures the
wireless-side RTT from data/ACK gaps even though it terminates no TCP.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.simnet.engine import SessionContext
from repro.simnet.node import Interface, Tap
from repro.simnet.packet import FlowKey, Packet, TCP
from repro.simnet.trace import PacketTrace

#: hole-filling data arriving later than this is judged a retransmission
#: rather than reordering (tstat's RTT-based disambiguation).
_REORDER_VS_RETX_GAP_S = 0.025


class _Welford:
    """Streaming mean/std/min/max accumulator."""

    __slots__ = ("n", "mean", "m2", "min", "max")

    def __init__(self):
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        return math.sqrt(self.m2 / (self.n - 1))

    def stats(self) -> Tuple[float, float, float, float, int]:
        if self.n == 0:
            return (0.0, 0.0, 0.0, 0.0, 0)
        return (self.mean, self.min, self.max, self.std, self.n)


class _IntervalSet:
    """Merged set of half-open byte ranges already seen in one direction."""

    __slots__ = ("spans",)

    def __init__(self):
        self.spans: List[List[int]] = []  # sorted, disjoint [start, end)

    def add(self, start: int, end: int) -> Tuple[int, bool]:
        """Insert ``[start, end)``; return (new_bytes, overlapped)."""
        if end <= start:
            return 0, False
        new_bytes = end - start
        overlapped = False
        merged: List[List[int]] = []
        placed = False
        for span in self.spans:
            if span[1] < start or span[0] > end:
                merged.append(span)
                continue
            overlap_lo = max(span[0], start)
            overlap_hi = min(span[1], end)
            if overlap_hi > overlap_lo:
                overlapped = True
                new_bytes -= overlap_hi - overlap_lo
            start = min(start, span[0])
            end = max(end, span[1])
        merged.append([start, end])
        merged.sort()
        self.spans = merged
        return max(0, new_bytes), overlapped

    @property
    def max_seen(self) -> int:
        return self.spans[-1][1] if self.spans else 0


class DirectionStats:
    """Counters for one direction of a flow, as tstat reports them."""

    def __init__(self):
        self.pkts = 0
        self.bytes = 0
        self.data_pkts = 0
        self.data_bytes = 0
        self.unique_bytes = 0
        self.retx_pkts = 0
        self.retx_bytes = 0
        self.ooo_pkts = 0
        self.reordered_pkts = 0
        self.pure_acks = 0
        self.dup_acks = 0
        self.syn_count = 0
        self.fin_count = 0
        self.rst_count = 0
        self.sack_acks = 0
        self.win_stats = _Welford()
        self.win_zero = 0
        self.mss_opt: Optional[int] = None
        self.seg_size = _Welford()
        self.ttl_min = 255
        self.ttl_max = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None
        self.first_payload_time: Optional[float] = None
        self.last_payload_time: Optional[float] = None
        self.rtt = _Welford()
        self.iat = _Welford()
        self._seen = _IntervalSet()
        self._last_ack_seen: Optional[int] = None
        self._last_seq_end = 0
        self._advance_time = 0.0  # when _last_seq_end last moved forward
        self._pending_rtt: Dict[int, float] = {}  # seq_end -> first tx seen
        self._rtt_samples: List[float] = []  # capped reservoir for percentiles
        self._second_bins: Dict[int, int] = {}  # 1s bucket -> bytes
        self.max_outstanding = 0  # peak unacked bytes (cwnd estimate)

    # -- per-packet update -------------------------------------------------

    def on_packet(self, pkt: Packet, now: float) -> None:
        if self.first_time is None:
            self.first_time = now
        if self.last_time is not None:
            self.iat.add(now - self.last_time)
        self.last_time = now
        self.pkts += 1
        size = pkt.size
        self.bytes += size
        bins = self._second_bins
        bucket = int(now)
        if len(bins) < 4096:
            bins[bucket] = bins.get(bucket, 0) + size
        ttl = pkt.ttl
        if ttl < self.ttl_min:
            self.ttl_min = ttl
        if ttl > self.ttl_max:
            self.ttl_max = ttl
        self.win_stats.add(pkt.wnd)
        if pkt.wnd == 0:
            self.win_zero += 1
        if pkt.is_syn:
            self.syn_count += 1
            if pkt.mss_opt is not None:
                self.mss_opt = pkt.mss_opt
        if pkt.is_fin:
            self.fin_count += 1
        if pkt.is_rst:
            self.rst_count += 1
        if pkt.sack:
            self.sack_acks += 1

        if pkt.payload_len > 0:
            self._on_data(pkt, now)
        elif pkt.is_pure_ack:
            self.pure_acks += 1
            if pkt.ack == self._last_ack_seen:
                self.dup_acks += 1
            self._last_ack_seen = pkt.ack

    def _on_data(self, pkt: Packet, now: float) -> None:
        self.data_pkts += 1
        self.data_bytes += pkt.payload_len
        self.seg_size.add(pkt.payload_len)
        if self.first_payload_time is None:
            self.first_payload_time = now
        self.last_payload_time = now
        seq_end = pkt.seq + pkt.payload_len
        new_bytes, overlapped = self._seen.add(pkt.seq, seq_end)
        self.unique_bytes += new_bytes
        if overlapped and new_bytes == 0:
            # Entirely previously-seen bytes: a retransmission.
            self.retx_pkts += 1
            self.retx_bytes += pkt.payload_len
            self._pending_rtt.pop(seq_end, None)  # Karn at the wire
        elif pkt.seq < self._last_seq_end and not overlapped:
            # New data below the highest sequence seen: either network
            # reordering or -- at a tap downstream of the loss point -- the
            # retransmission of a segment we never saw.  tstat separates the
            # two by timing: reordered packets trail by at most a few
            # milliseconds, retransmissions by at least one RTT.
            gap = now - self._advance_time
            if gap > _REORDER_VS_RETX_GAP_S:
                self.retx_pkts += 1
                self.retx_bytes += pkt.payload_len
            else:
                self.ooo_pkts += 1
                self.reordered_pkts += 1
        else:
            if len(self._pending_rtt) < 4096:
                self._pending_rtt.setdefault(seq_end, now)
        if seq_end > self._last_seq_end:
            self._last_seq_end = seq_end
            self._advance_time = now

    def match_ack(self, ack: int, now: float) -> None:
        """An ACK from the opposite direction covering our data."""
        matched = [s for s in self._pending_rtt if s <= ack]
        if not matched:
            return
        # Sample only the newest covered segment (freshest estimate).
        newest = max(matched)
        sample = now - self._pending_rtt[newest]
        self.rtt.add(sample)
        if len(self._rtt_samples) < 2048:
            self._rtt_samples.append(sample)
        else:  # deterministic decimation keeps the reservoir spread out
            self._rtt_samples[self.rtt.n % 2048] = sample
        for s in matched:
            del self._pending_rtt[s]

    # -- export -------------------------------------------------------------

    def _rtt_percentile(self, q: float) -> float:
        if not self._rtt_samples:
            return 0.0
        ordered = sorted(self._rtt_samples)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def _throughput_window_stats(self) -> Tuple[float, float, float, int]:
        """(avg, std, max, idle seconds) of per-second byte rates."""
        if not self._second_bins or self.first_time is None:
            return (0.0, 0.0, 0.0, 0)
        start = int(self.first_time)
        end = int(self.last_time)
        seconds = max(1, end - start + 1)
        rates = [self._second_bins.get(s, 0) * 8.0 for s in range(start, end + 1)]
        idle = sum(1 for r in rates if r == 0)
        mean = sum(rates) / seconds
        var = sum((r - mean) ** 2 for r in rates) / seconds
        return (mean, math.sqrt(var), max(rates), idle)

    def metrics(self, prefix: str) -> Dict[str, float]:
        """Flatten to tstat-style metric names with a direction prefix."""
        rtt_avg, rtt_min, rtt_max, rtt_std, rtt_n = self.rtt.stats()
        iat_avg, _iat_min, iat_max, iat_std, _ = self.iat.stats()
        win_avg, win_min, win_max, win_std, _ = self.win_stats.stats()
        seg_avg, seg_min, seg_max, _seg_std, _ = self.seg_size.stats()
        first = self.first_time if self.first_time is not None else 0.0
        last = self.last_time if self.last_time is not None else first
        duration = max(0.0, last - first)
        out = {
            "pkts": float(self.pkts),
            "bytes": float(self.bytes),
            "data_pkts": float(self.data_pkts),
            "data_bytes": float(self.data_bytes),
            "unique_bytes": float(self.unique_bytes),
            "retx_pkts": float(self.retx_pkts),
            "retx_bytes": float(self.retx_bytes),
            "ooo_pkts": float(self.ooo_pkts),
            "reordered_pkts": float(self.reordered_pkts),
            "pure_acks": float(self.pure_acks),
            "dup_acks": float(self.dup_acks),
            "syn_cnt": float(self.syn_count),
            "fin_cnt": float(self.fin_count),
            "rst_cnt": float(self.rst_count),
            "sack_acks": float(self.sack_acks),
            "win_max": win_max,
            "win_min": win_min,
            "win_avg": win_avg,
            "win_std": win_std,
            "win_zero_cnt": float(self.win_zero),
            "mss": float(self.mss_opt or 0),
            "seg_size_avg": seg_avg,
            "seg_size_min": seg_min,
            "seg_size_max": seg_max,
            "ttl_min": float(self.ttl_min if self.pkts else 0),
            "ttl_max": float(self.ttl_max),
            "rtt_avg": rtt_avg,
            "rtt_min": rtt_min,
            "rtt_max": rtt_max,
            "rtt_std": rtt_std,
            "rtt_cnt": float(rtt_n),
            "iat_avg": iat_avg,
            "iat_max": iat_max,
            "iat_std": iat_std,
            "duration": duration,
            "throughput": (self.bytes * 8.0 / duration) if duration > 0 else 0.0,
        }
        tput_avg, tput_std, tput_max, idle = self._throughput_window_stats()
        out.update({
            "rtt_p50": self._rtt_percentile(0.50),
            "rtt_p95": self._rtt_percentile(0.95),
            "tput1s_avg": tput_avg,
            "tput1s_std": tput_std,
            "tput1s_max": tput_max,
            "idle_1s_cnt": float(idle),
            "max_outstanding": float(self.max_outstanding),
        })
        return {f"{prefix}_{k}": v for k, v in out.items()}


class FlowStats:
    """Both directions of one flow plus flow-level timing landmarks."""

    def __init__(self, key: FlowKey):
        self.key = key  # c2s orientation (client = initiator)
        # Cached for the per-packet direction test (no tuple construction).
        self._c_src = key.src
        self._c_sport = key.sport
        self.c2s = DirectionStats()
        self.s2c = DirectionStats()
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.handshake_rtt: Optional[float] = None
        self._syn_time: Optional[float] = None
        self._synack_seen = False

    def on_packet(self, pkt: Packet, now: float) -> None:
        if self.start_time is None:
            self.start_time = now
        self.end_time = now
        forward = pkt.src == self._c_src and pkt.sport == self._c_sport
        direction = self.c2s if forward else self.s2c
        opposite = self.s2c if forward else self.c2s
        direction.on_packet(pkt, now)
        if pkt.is_ack:
            opposite.match_ack(pkt.ack, now)
            # Peak unacked bytes in the opposite direction: a passive
            # estimate of the sender's congestion window (tstat's cwnd).
            outstanding = opposite._last_seq_end - pkt.ack
            if outstanding > opposite.max_outstanding:
                opposite.max_outstanding = outstanding
        if pkt.is_syn and not pkt.is_ack and self._syn_time is None:
            self._syn_time = now
        elif pkt.is_syn and pkt.is_ack and not self._synack_seen:
            self._synack_seen = True
            if self._syn_time is not None:
                self.handshake_rtt = now - self._syn_time

    def metrics(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        out.update(self.c2s.metrics("c2s"))
        out.update(self.s2c.metrics("s2c"))
        start = self.start_time if self.start_time is not None else 0.0
        end = self.end_time if self.end_time is not None else start
        out["flow_duration"] = max(0.0, end - start)
        out["handshake_rtt"] = self.handshake_rtt or 0.0
        # "First packet arrival": delay from flow start (first SYN seen) to
        # the first payload packet towards the client.  The paper ranks this
        # feature highly for congestion/shaping detection.
        if self.s2c.first_payload_time is not None:
            out["first_payload_delay"] = self.s2c.first_payload_time - start
        else:
            out["first_payload_delay"] = 0.0
        if self.c2s.first_payload_time is not None:
            out["request_delay"] = self.c2s.first_payload_time - start
        else:
            out["request_delay"] = 0.0
        total_pkts = self.c2s.pkts + self.s2c.pkts
        out["total_pkts"] = float(total_pkts)
        out["total_bytes"] = float(self.c2s.bytes + self.s2c.bytes)
        return out


class TstatProbe:
    """Passive flow monitor attached to one interface.

    Metrics are streaming accumulators: per-packet observation updates
    rolling counters and Welford moments, never a growing packet list.
    Pass ``retain_trace=True`` to additionally keep the raw TCP packets
    in a :class:`~repro.simnet.trace.PacketTrace` (``.trace``) for
    offline replay or persistence -- off by default, since retention
    turns a constant-memory probe into an O(packets) one.
    """

    def __init__(
        self, sim: SessionContext, name: str = "tstat", retain_trace: bool = False
    ):
        self.sim = sim
        self.name = name
        self.flows: Dict[FlowKey, FlowStats] = {}
        # Per-packet lookup table holding BOTH orientations of every flow
        # key, so the hot path never constructs a reversed FlowKey.
        self._by_key: Dict[FlowKey, FlowStats] = {}
        self._taps: List[Tuple[Interface, Tap]] = []
        self.enabled = True
        self.trace: Optional[PacketTrace] = (
            PacketTrace(description=name) if retain_trace else None
        )

    # -- attachment ----------------------------------------------------------

    def attach(self, iface: Interface) -> None:
        tap = Tap(self._observe, name=self.name)
        iface.add_tap(tap)
        self._taps.append((iface, tap))

    def detach(self) -> None:
        for iface, tap in self._taps:
            iface.remove_tap(tap)
        self._taps.clear()

    # -- observation ----------------------------------------------------------

    def _observe(self, pkt: Packet, direction: str, now: float) -> None:
        if not self.enabled or pkt.proto != TCP:
            return
        if self.trace is not None:
            self.trace.record(pkt, direction, now)
        key = pkt.flow_key
        flow = self._by_key.get(key)
        if flow is None:
            # Orient the flow: the SYN sender is the client.  If we missed
            # the SYN, fall back to canonical orientation.
            if pkt.is_syn and not pkt.is_ack:
                oriented = key
            elif pkt.is_syn and pkt.is_ack:
                oriented = key.reversed()
            else:
                oriented = key.canonical()
            flow = FlowStats(oriented)
            self.flows[oriented] = flow
            self._by_key[oriented] = flow
            self._by_key[oriented.reversed()] = flow
        flow.on_packet(pkt, now)

    # -- accessors -----------------------------------------------------------

    def flow(self, key: FlowKey) -> Optional[FlowStats]:
        return self._by_key.get(key)

    def metrics_for(self, key: FlowKey) -> Dict[str, float]:
        """tstat metrics for one flow; all-zero dict if never observed."""
        flow = self.flow(key)
        if flow is None:
            return {k: 0.0 for k in FlowStats(key).metrics()}
        return flow.metrics()

    def reset(self) -> None:
        self.flows.clear()
        self._by_key.clear()
        if self.trace is not None:
            self.trace.entries.clear()

"""RNC-side probe for cellular access (Section 6.2 extension).

The paper: detection in the wild "can be minimized by introducing more
VPs (e.g., on 3G RNCs) in order to get more fine grain information about
how smaller variations affect the video QoE".  This probe is that vantage
point: it samples the per-UE radio state the radio network controller
actually has -- RSCP, CQI, granted rate, HARQ retransmissions, handovers
and queue state -- and aggregates it per video flow, exactly like the
WiFi-side radio probe.
"""

from __future__ import annotations

from typing import Dict

from repro.probes.hardware import _Aggregate
from repro.simnet.cellular import CellularUe, cqi_for_rscp
from repro.simnet.engine import SessionContext

SAMPLE_INTERVAL_S = 1.0


class RncProbe:
    """Samples one UE's bearer state during a video flow."""

    def __init__(self, sim: SessionContext, ue: CellularUe, noise_std: float = 1.0):
        self.sim = sim
        self.ue = ue
        self.noise_std = noise_std
        self.rscp = _Aggregate()
        self.cqi = _Aggregate()
        self.granted_rate = _Aggregate()
        self._event = None
        self._running = False
        self._start_counters: Dict[str, float] = {}
        self._start_time = 0.0

    def start(self) -> None:
        if self._running:
            raise RuntimeError("probe already running")
        self._running = True
        ue = self.ue
        self._start_counters = {
            "pdus_tx": ue.pdus_tx,
            "harq_retx": ue.harq_retx,
            "pdu_drops": ue.pdu_drops,
            "queue_drops": ue.queue_drops,
            "handovers": ue.handovers,
            "airtime": ue.airtime,
        }
        self._start_time = self.sim.now
        self._sample()

    def stop(self) -> Dict[str, float]:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None
        ue = self.ue
        window = max(1e-9, self.sim.now - self._start_time)
        d = {k: getattr(ue, k) - v for k, v in self._start_counters.items()}
        pdus = max(1.0, d["pdus_tx"])
        out: Dict[str, float] = {
            "pdus": d["pdus_tx"],
            "harq_retx": d["harq_retx"],
            "harq_rate": d["harq_retx"] / pdus,
            "pdu_drops": d["pdu_drops"],
            "queue_drops": d["queue_drops"],
            "handovers": d["handovers"],
            "airtime_frac": min(1.0, d["airtime"] / window),
            "cell_load": self.ue.cell.background_load,
        }
        out.update(self.rscp.metrics("rscp"))
        out.update(self.cqi.metrics("cqi"))
        out.update(self.granted_rate.metrics("rate"))
        return out

    def _sample(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        rscp = self.ue.rscp(now) + self.sim.normal(0.0, self.noise_std)
        self.rscp.add(rscp)
        cqi, _share = cqi_for_rscp(rscp)
        self.cqi.add(float(cqi))
        self.granted_rate.add(self.ue.current_rate(now))
        self._event = self.sim.schedule(SAMPLE_INTERVAL_S, self._sample)

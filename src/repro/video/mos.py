"""Mean Opinion Score model (Mok et al., IM 2011).

The paper labels every video session by converting application performance
metrics to a MOS "based on the work of Mok et al. who derived an equation
for calculating the MOS from performance metrics by means of regression
analysis" (Section 4.4):

    MOS = 4.23 - 0.0672 * L_ti - 0.742 * L_fr - 0.106 * L_td

where ``L_ti`` (initial/startup delay), ``L_fr`` (rebuffering frequency)
and ``L_td`` (mean rebuffering duration) are quantised into three levels
{1, 2, 3}.  The resulting score spans [1.48, 3.31], which is consistent
with the paper's thresholds: MOS > 3 is *good*, 2..3 is *mild*, < 2 is
*severe*.  Sessions that never start playing are scored 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

GOOD_THRESHOLD = 3.0
MILD_THRESHOLD = 2.0

#: Quantisation boundaries (level 1 below first bound, 3 above second).
TI_BOUNDS = (1.0, 5.0)  # startup delay, seconds
FR_BOUNDS = (0.02, 0.15)  # stall events per second of session
TD_BOUNDS = (1.0, 5.0)  # mean stall duration, seconds

_INTERCEPT = 4.23
_W_TI = 0.0672
_W_FR = 0.742
_W_TD = 0.106


def _level(value: float, bounds: tuple) -> int:
    low, high = bounds
    if value <= low:
        return 1
    if value <= high:
        return 2
    return 3


@dataclass(frozen=True)
class MosResult:
    """Score plus the quantised levels (useful for tests and reports)."""

    mos: float
    level_ti: int
    level_fr: int
    level_td: int


class MosModel:
    """Callable MOS estimator over application QoE metrics."""

    def score(
        self,
        startup_delay_s: float,
        stall_count: int,
        total_stall_s: float,
        session_duration_s: float,
        started: bool = True,
    ) -> MosResult:
        """Compute the MOS for one session.

        ``session_duration_s`` is the wall-clock length of the session
        (playback plus stalls); the stall frequency is stalls per second of
        session, as in Mok et al.
        """
        if not started or session_duration_s <= 0:
            return MosResult(1.0, 3, 3, 3)
        freq = stall_count / session_duration_s
        mean_stall = total_stall_s / stall_count if stall_count else 0.0
        l_ti = _level(startup_delay_s, TI_BOUNDS)
        l_fr = _level(freq, FR_BOUNDS) if stall_count else 1
        l_td = _level(mean_stall, TD_BOUNDS) if stall_count else 1
        mos = _INTERCEPT - _W_TI * l_ti - _W_FR * l_fr - _W_TD * l_td
        return MosResult(mos, l_ti, l_fr, l_td)


def mos_to_severity(mos: float) -> str:
    """Map a MOS to the paper's three QoE classes."""
    if mos > GOOD_THRESHOLD:
        return "good"
    if mos >= MILD_THRESHOLD:
        return "mild"
    return "severe"

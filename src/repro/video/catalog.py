"""Synthetic video catalog.

The paper downloads the YouTube "top 100 most viewed" videos in Standard or
High Definition "to ensure the diversity of the video collection".  We
cannot ship those files, so this module generates a catalog with the same
diversity axes: definition (SD/HD), bitrate, and duration.  Bitrates follow
the 2015-era YouTube ladder; durations are log-normal like short-form
online video.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

#: (definition, resolution, mean bitrate bit/s) -- 2015-era YouTube ladder.
#: The paper streams the top-100 videos in "Standard or High Definition";
#: 720p is the HD tier a 7.8 Mbit/s DSL emulation can sustain, matching
#: what the testbed phones would actually fetch.
_BITRATE_LADDER = [
    ("SD", "360p", 0.75e6),
    ("SD", "480p", 1.1e6),
    ("HD", "720p", 1.8e6),
    ("HD", "720p60", 2.3e6),
]


@dataclass(frozen=True)
class VideoProfile:
    """Static description of one catalog entry."""

    video_id: str
    definition: str  # "SD" or "HD"
    resolution: str
    bitrate_bps: float
    duration_s: float

    @property
    def size_bytes(self) -> int:
        return int(self.bitrate_bps * self.duration_s / 8.0)

    @property
    def byte_rate(self) -> float:
        """Average payload bytes per second of content."""
        return self.bitrate_bps / 8.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.video_id} [{self.definition}/{self.resolution} "
            f"{self.bitrate_bps / 1e6:.2f}Mbps {self.duration_s:.0f}s]"
        )


class VideoCatalog:
    """A reproducible collection of :class:`VideoProfile` entries.

    Parameters
    ----------
    size:
        Number of videos (the paper uses the top-100 list).
    duration_range:
        ``(min, max)`` clamp for durations in seconds.  Campaigns use a
        reduced range so a full dataset stays simulable on one machine;
        the default matches short online videos.
    hd_fraction:
        Share of HD entries (the paper mixes SD and HD).
    seed:
        Catalog-level RNG seed; the same seed yields the same catalog.
    """

    def __init__(
        self,
        size: int = 100,
        duration_range: tuple = (30.0, 240.0),
        hd_fraction: float = 0.5,
        seed: int = 7,
    ):
        if size <= 0:
            raise ValueError("catalog size must be positive")
        lo, hi = duration_range
        if lo <= 0 or hi < lo:
            raise ValueError("invalid duration_range")
        self.seed = seed
        rng = random.Random(seed)
        self.videos: List[VideoProfile] = []
        for index in range(size):
            is_hd = rng.random() < hd_fraction
            ladder = [e for e in _BITRATE_LADDER if (e[0] == "HD") == is_hd]
            definition, resolution, mean_rate = rng.choice(ladder)
            bitrate = mean_rate * rng.uniform(0.85, 1.15)
            # Log-normal durations clamped into the requested range.
            duration = math.exp(rng.gauss(math.log(lo * 1.6), 0.5))
            duration = min(hi, max(lo, duration))
            self.videos.append(
                VideoProfile(
                    video_id=f"vid{index:03d}",
                    definition=definition,
                    resolution=resolution,
                    bitrate_bps=bitrate,
                    duration_s=duration,
                )
            )

    def __len__(self) -> int:
        return len(self.videos)

    def __iter__(self):
        return iter(self.videos)

    def __getitem__(self, index: int) -> VideoProfile:
        return self.videos[index]

    def get(self, video_id: str) -> Optional[VideoProfile]:
        for video in self.videos:
            if video.video_id == video_id:
                return video
        return None

    def pick(self, rng: random.Random) -> VideoProfile:
        """Random video, like the paper's app launching random top-100 videos."""
        return rng.choice(self.videos)

    def pick_sd(self, rng: random.Random) -> VideoProfile:
        sd = [v for v in self.videos if v.definition == "SD"]
        return rng.choice(sd) if sd else self.pick(rng)

"""Adaptive bitrate (DASH-style) streaming.

The paper requires the diagnosis system to be "agnostic to the details of
both the video itself but also how it is delivered ... static or adaptive
streaming, pacing and so on" (Section 2).  This module provides the
*adaptive* delivery mechanism: the client fetches fixed-duration segments
over one persistent TCP connection and a rate controller picks the next
segment's bitrate from a ladder using a hybrid throughput/buffer rule
(EWMA throughput estimate with a safety factor, plus buffer guard bands --
the classic pre-BOLA heuristic used by 2015 players).

QoE accounting reuses :class:`repro.video.player.VideoPlayer`: received
segment bytes are converted to *content seconds* at the segment's bitrate,
so startup delay, stalls and the MOS labelling are identical to the
progressive path.  Quality switches and the delivered average bitrate are
reported as additional application metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.simnet.engine import SessionContext
from repro.simnet.node import Node
from repro.simnet.packet import FlowKey, TCP
from repro.simnet.tcp import TcpEndpoint, TcpServer, open_connection
from repro.video.catalog import VideoProfile
from repro.video.mos import MosModel, MosResult, mos_to_severity
from repro.video.player import PlayerConfig, VideoPlayer

#: 2015-era DASH ladder (bit/s).
DEFAULT_LADDER = (0.4e6, 0.75e6, 1.1e6, 1.8e6, 2.3e6)
SEGMENT_DURATION_S = 4.0
REQUEST_BYTES = 180
THROUGHPUT_SAFETY = 0.8
EWMA_ALPHA = 0.4
BUFFER_LOW_S = 6.0
BUFFER_HIGH_S = 14.0


class AbrController:
    """Hybrid throughput/buffer bitrate selection."""

    def __init__(self, ladder=DEFAULT_LADDER):
        if not ladder:
            raise ValueError("ladder must not be empty")
        self.ladder = tuple(sorted(ladder))
        self.throughput_ewma: Optional[float] = None
        self.level = 0  # start conservative, as real players do

    def observe_segment(self, bits: float, seconds: float) -> None:
        """Update the throughput estimate with one download."""
        if seconds <= 0:
            return
        sample = bits / seconds
        if self.throughput_ewma is None:
            self.throughput_ewma = sample
        else:
            self.throughput_ewma = (
                EWMA_ALPHA * sample + (1 - EWMA_ALPHA) * self.throughput_ewma
            )

    def next_level(self, buffer_s: float) -> int:
        """Pick the ladder index for the next segment."""
        if self.throughput_ewma is None:
            return self.level
        budget = THROUGHPUT_SAFETY * self.throughput_ewma
        candidate = 0
        for i, rate in enumerate(self.ladder):
            if rate <= budget:
                candidate = i
        if buffer_s < BUFFER_LOW_S:
            candidate = min(candidate, max(0, self.level - 1), self.level)
        elif buffer_s > BUFFER_HIGH_S:
            candidate = max(candidate, self.level)  # never step down when full
        # Move at most one rung at a time (smoothness).
        if candidate > self.level:
            self.level += 1
        elif candidate < self.level:
            self.level = candidate
        return self.level

    @property
    def bitrate(self) -> float:
        return self.ladder[self.level]


class AbrVideoServer:
    """Segment server: answers sized requests on persistent connections.

    The size of each response is supplied by a per-client callback
    registered by the session (the simulator's stand-in for the MPD +
    segment URLs of a real DASH deployment).
    """

    def __init__(self, sim: SessionContext, node: Node, port: int = 8081):
        self.sim = sim
        self.node = node
        self.port = port
        self.segments_served = 0
        self._request_handlers: Dict[str, Callable[[], int]] = {}
        self._listener = TcpServer(sim, node, port, self._on_connection)

    def register_client(self, client: str, next_size: Callable[[], int]) -> None:
        self._request_handlers[client] = next_size

    def unregister_client(self, client: str) -> None:
        self._request_handlers.pop(client, None)

    def _on_connection(self, endpoint: TcpEndpoint) -> None:
        def on_request(nbytes: int, now: float) -> None:
            handler = self._request_handlers.get(endpoint.peer)
            if handler is None:
                return
            size = handler()
            if size > 0:
                self.segments_served += 1
                endpoint.send(size, tag="video-segment")

        endpoint.on_data = on_request

    def close(self) -> None:
        self._listener.close()


@dataclass
class AbrMetrics:
    """ABR-specific additions to the player metrics."""

    segments: int = 0
    switches: int = 0
    level_history: List[int] = field(default_factory=list)
    bits_received: float = 0.0
    content_seconds: float = 0.0

    @property
    def average_bitrate(self) -> float:
        if self.content_seconds == 0:
            return 0.0
        return self.bits_received / self.content_seconds


class AbrVideoSession:
    """One adaptive streaming session (client side)."""

    def __init__(
        self,
        sim: SessionContext,
        client: Node,
        server: AbrVideoServer,
        profile: VideoProfile,
        ladder=DEFAULT_LADDER,
        player_config: Optional[PlayerConfig] = None,
        decode_speed_fn: Optional[Callable[[], float]] = None,
        on_complete: Optional[Callable[["AbrVideoSession"], None]] = None,
    ):
        self.sim = sim
        self.client = client
        self.server = server
        self.profile = profile
        self.controller = AbrController(ladder)
        self.abr = AbrMetrics()
        self.on_complete = on_complete

        self.player = VideoPlayer(
            sim, profile, config=player_config, decode_speed_fn=decode_speed_fn,
            on_done=self._on_player_done,
        )
        self.endpoint: Optional[TcpEndpoint] = None
        self.flow_key: Optional[FlowKey] = None
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.finished = False

        self._segments_total = max(
            1, int(round(profile.duration_s / SEGMENT_DURATION_S))
        )
        self._segment_index = 0
        self._segment_bytes_left = 0
        self._segment_started_at = 0.0
        self._current_segment_size = 0

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        if self.start_time is not None:
            raise RuntimeError("session already started")
        self.start_time = self.sim.now
        self.server.register_client(self.client.name, self._next_segment_size)
        self.endpoint = open_connection(
            self.sim, self.client, self.server.node.name, self.server.port
        )
        self.flow_key = FlowKey(
            self.client.name, self.server.node.name,
            self.endpoint.local_port, self.server.port, TCP,
        )
        self.endpoint.on_established = self._request_next
        self.endpoint.on_data = self._on_data
        self.endpoint.on_fail = lambda reason: self.player.fail(reason)
        self.player.start()
        self.endpoint.connect()

    def mos(self, model: Optional[MosModel] = None) -> MosResult:
        model = model or MosModel()
        m = self.player.metrics
        duration = (self.end_time or self.sim.now) - (self.start_time or 0.0)
        return model.score(
            startup_delay_s=m.startup_delay_s,
            stall_count=m.qoe_stall_count,
            total_stall_s=m.qoe_stall_s,
            session_duration_s=duration,
            started=m.started,
        )

    def severity(self) -> str:
        return mos_to_severity(self.mos().mos)

    # ------------------------------------------------------------- internals

    def _next_segment_size(self) -> int:
        level = self.controller.next_level(self.player.buffer_s)
        if self.abr.level_history and level != self.abr.level_history[-1]:
            self.abr.switches += 1
        self.abr.level_history.append(level)
        bitrate = self.controller.ladder[level]
        size = int(bitrate * SEGMENT_DURATION_S / 8.0)
        self._current_segment_size = size
        self._segment_bytes_left = size
        self._segment_started_at = self.sim.now
        return size

    def _request_next(self) -> None:
        if self.finished or self.endpoint.closed:
            return
        if self._segment_index >= self._segments_total:
            self.player.notify_download_complete()
            return
        self._segment_index += 1
        self.endpoint.send(REQUEST_BYTES, tag="segment-request")

    def _on_data(self, nbytes: int, now: float) -> None:
        if self._current_segment_size == 0:
            return
        self._segment_bytes_left -= nbytes
        # Convert received media bytes into content-seconds at the
        # segment's bitrate, then into the player's nominal byte scale.
        bitrate = self.controller.bitrate
        seconds = nbytes * 8.0 / bitrate
        self.player.feed(seconds * self.profile.byte_rate)
        self.abr.bits_received += nbytes * 8.0
        self.abr.content_seconds += seconds
        if self._segment_bytes_left <= 0:
            elapsed = now - self._segment_started_at
            self.controller.observe_segment(
                self._current_segment_size * 8.0, elapsed
            )
            self.abr.segments += 1
            self._request_next()

    def _on_player_done(self) -> None:
        if self.finished:
            return
        self.finished = True
        self.end_time = self.sim.now
        self.server.unregister_client(self.client.name)
        if self.endpoint is not None and not self.endpoint.closed:
            self.endpoint.abort()
        if self.on_complete:
            self.on_complete(self)

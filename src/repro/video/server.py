"""Video servers: Apache-style and YouTube-style delivery.

The paper streams from (i) a private Apache server and (ii) YouTube.  The
two differ in ways the transport probes can see:

* **apache** mode writes the whole file into the connection as fast as TCP
  allows (classic progressive download).
* **youtube** mode sends an initial burst (enough for startup) and then
  paces chunks at a multiple of the media bitrate, which was YouTube's
  documented 2015 behaviour.

Server load (driven by the ApacheBench background generator or set
directly) delays the first byte and throttles chunk writes, modelling a
busy content server.  The server-side hardware probe reads
:meth:`cpu_utilization` / :meth:`free_memory`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.simnet.engine import SessionContext
from repro.simnet.node import Node
from repro.simnet.tcp import TcpEndpoint, TcpServer
from repro.video.catalog import VideoProfile

CHUNK_BYTES = 64 * 1024
PACE_INTERVAL_S = 0.5


class VideoServer:
    """Serves registered video requests over the simulated TCP."""

    def __init__(
        self,
        sim: SessionContext,
        node: Node,
        port: int = 80,
        mode: str = "apache",
        pacing_factor: float = 1.25,
        initial_burst_s: float = 10.0,
        base_think_s: float = 0.03,
    ):
        if mode not in ("apache", "youtube"):
            raise ValueError(f"unknown server mode {mode!r}")
        self.sim = sim
        self.node = node
        self.port = port
        self.mode = mode
        self.pacing_factor = pacing_factor
        self.initial_burst_s = initial_burst_s
        self.base_think_s = base_think_s
        #: external load in [0, 1) from ApacheBench-style background work.
        self.load = 0.0
        self.active_connections = 0
        self.sessions_served = 0
        self._pending: Dict[str, VideoProfile] = {}
        self._listener = TcpServer(sim, node, port, self._on_connection)

    # -- request registration ----------------------------------------------

    def register_request(self, client: str, profile: VideoProfile) -> None:
        """Announce that ``client``'s next connection requests ``profile``."""
        self._pending[client] = profile

    def set_load(self, load: float) -> None:
        self.load = min(0.98, max(0.0, load))

    # -- hardware view (read by the server hardware probe) -------------------

    def cpu_utilization(self, noise: Callable[[], float] = lambda: 0.0) -> float:
        base = 0.05 + 0.85 * self.load + 0.03 * self.active_connections
        return min(1.0, max(0.0, base + noise()))

    def free_memory(self, noise: Callable[[], float] = lambda: 0.0) -> float:
        base = 0.7 - 0.35 * self.load - 0.01 * self.active_connections
        return min(1.0, max(0.02, base + noise()))

    # -- connection handling ----------------------------------------------

    def _on_connection(self, endpoint: TcpEndpoint) -> None:
        state = {"responded": False}

        def on_request(nbytes: int, now: float) -> None:
            if state["responded"]:
                return
            state["responded"] = True
            profile = self._pending.pop(endpoint.peer, None)
            if profile is None:
                endpoint.close()  # no content registered: empty response
                return
            think = self.base_think_s / max(0.05, 1.0 - 0.9 * self.load)
            think = self.sim.bounded_normal(think, think * 0.2, lo=0.001)
            self.active_connections += 1
            self.sessions_served += 1
            self.sim.schedule(think, self._begin_response, endpoint, profile)

        endpoint.on_data = on_request

    def _begin_response(self, endpoint: TcpEndpoint, profile: VideoProfile) -> None:
        if endpoint.closed:
            self.active_connections -= 1
            return
        total = profile.size_bytes
        if self.mode == "apache":
            self._send_chunked(endpoint, remaining=total)
        else:
            burst = min(total, int(self.initial_burst_s * profile.byte_rate))
            endpoint.send(burst, tag="video")
            remaining = total - burst
            if remaining <= 0:
                self._finish(endpoint)
            else:
                pace_bytes = int(
                    self.pacing_factor * profile.byte_rate * PACE_INTERVAL_S
                )
                self.sim.schedule(
                    PACE_INTERVAL_S, self._pace, endpoint, remaining, pace_bytes
                )

    def _send_chunked(self, endpoint: TcpEndpoint, remaining: int) -> None:
        """Apache mode: back-to-back chunks, slowed when the CPU is busy."""
        if endpoint.closed:
            self.active_connections -= 1
            return
        chunk = min(CHUNK_BYTES, remaining)
        endpoint.send(chunk, tag="video")
        remaining -= chunk
        if remaining <= 0:
            self._finish(endpoint)
            return
        # A loaded server cannot refill the socket instantly.
        delay = 0.0005 + 0.02 * (self.load ** 2) / max(0.02, 1.0 - self.load)
        self.sim.schedule(delay, self._send_chunked, endpoint, remaining)

    def _pace(self, endpoint: TcpEndpoint, remaining: int, pace_bytes: int) -> None:
        """YouTube mode: periodic writes at pacing_factor x bitrate."""
        if endpoint.closed:
            self.active_connections -= 1
            return
        chunk = min(pace_bytes, remaining)
        # Server load stretches the pacing writes.
        effective = int(chunk * max(0.3, 1.0 - 0.5 * self.load))
        endpoint.send(max(1, effective), tag="video")
        remaining -= effective
        if remaining <= 0:
            self._finish(endpoint)
        else:
            self.sim.schedule(PACE_INTERVAL_S, self._pace, endpoint, remaining, pace_bytes)

    def _finish(self, endpoint: TcpEndpoint) -> None:
        endpoint.close()
        self.active_connections = max(0, self.active_connections - 1)

    def close(self) -> None:
        self._listener.close()

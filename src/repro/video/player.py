"""Progressive-download video player model.

Reproduces the QoE-relevant behaviour of the default Android media player
used by the paper's instrumented application:

* playback starts once an initial buffer is filled (startup delay),
* an empty buffer stalls playback until a resume threshold is reached
  (rebuffering events),
* a starved decoder (CPU load on the device) cannot sustain real-time
  playback, producing frame skips / stutter that degrade QoE even when the
  network is healthy,
* sessions that take too long to start or stall for too long are abandoned.

The player is driven by periodic ticks (100 ms), decoupled from the
network: bytes arrive via :meth:`feed` from the TCP connection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.simnet.engine import SessionContext
from repro.video.catalog import VideoProfile

FRAME_RATE = 30.0  # used to express stutter as skipped frames


@dataclass
class PlayerConfig:
    """Tunable player behaviour."""

    startup_buffer_s: float = 2.0
    resume_buffer_s: float = 1.0
    tick_s: float = 0.1
    startup_abandon_s: float = 45.0
    stall_abandon_s: float = 30.0
    #: decode speeds below this are perceived as stutter (frame skips)
    stutter_threshold: float = 0.85


@dataclass
class PlayerMetrics:
    """Application-layer QoE metrics of one playback (probe input)."""

    started: bool = False
    completed: bool = False
    abandoned: bool = False
    abandon_reason: str = ""
    startup_delay_s: float = 0.0
    stall_count: int = 0
    total_stall_s: float = 0.0
    stall_durations: List[float] = field(default_factory=list)
    stutter_events: int = 0
    stutter_s: float = 0.0
    content_played_s: float = 0.0
    watch_time_s: float = 0.0
    bytes_received: int = 0
    buffer_min_s: float = float("inf")
    buffer_sum_s: float = 0.0
    buffer_samples: int = 0

    @property
    def frames_skipped(self) -> int:
        return int(self.stutter_s * FRAME_RATE)

    @property
    def buffer_avg_s(self) -> float:
        if self.buffer_samples == 0:
            return 0.0
        return self.buffer_sum_s / self.buffer_samples

    @property
    def qoe_stall_count(self) -> int:
        """Stalls as perceived by the user: rebufferings plus stutter.

        Sustained decoder stutter is perceived as repeated interruptions,
        not one long event, so accumulated stutter time is converted into
        one perceived interruption per ~3 seconds of frozen playback.
        """
        stutter_equiv = max(
            self.stutter_events, int(math.ceil(self.stutter_s / 3.0))
        ) if self.stutter_s > 0 else 0
        return self.stall_count + stutter_equiv

    @property
    def qoe_stall_s(self) -> float:
        return self.total_stall_s + self.stutter_s


class VideoPlayer:
    """Plays one :class:`VideoProfile` from a byte stream."""

    def __init__(
        self,
        sim: SessionContext,
        profile: VideoProfile,
        config: Optional[PlayerConfig] = None,
        decode_speed_fn: Optional[Callable[[], float]] = None,
        on_done: Optional[Callable[[], None]] = None,
    ):
        self.sim = sim
        self.profile = profile
        self.config = config or PlayerConfig()
        self.decode_speed_fn = decode_speed_fn or (lambda: 1.0)
        self.on_done = on_done

        self.metrics = PlayerMetrics()
        self.state = "waiting"  # waiting -> playing <-> stalled -> done
        self.buffered_bytes = 0.0
        self.download_complete = False
        self._start_time: Optional[float] = None
        self._stall_started = 0.0
        self._in_stutter = False
        self._tick_event = None

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        """Begin the session clock (the moment the user pressed play)."""
        if self._start_time is not None:
            raise RuntimeError("player already started")
        self._start_time = self.sim.now
        self._tick_event = self.sim.schedule(self.config.tick_s, self._tick)

    def feed(self, nbytes: int) -> None:
        """Deliver ``nbytes`` of media payload from the network."""
        self.buffered_bytes += nbytes
        self.metrics.bytes_received += nbytes

    def notify_download_complete(self) -> None:
        self.download_complete = True

    def fail(self, reason: str) -> None:
        """The transport never delivered anything (e.g. handshake failure)."""
        if self.state == "done":
            return
        self.metrics.abandoned = True
        self.metrics.abandon_reason = reason
        self._finish()

    @property
    def buffer_s(self) -> float:
        """Seconds of content currently buffered."""
        return self.buffered_bytes / self.profile.byte_rate

    @property
    def done(self) -> bool:
        return self.state == "done"

    # ------------------------------------------------------------- internals

    def _tick(self) -> None:
        if self.state == "done":
            return
        handlers = {
            "waiting": self._tick_waiting,
            "playing": self._tick_playing,
            "stalled": self._tick_stalled,
        }
        handlers[self.state]()
        if self.state != "done":
            self._tick_event = self.sim.schedule(self.config.tick_s, self._tick)

    def _session_time(self) -> float:
        return self.sim.now - self._start_time

    def _remaining_content(self) -> float:
        return self.profile.duration_s - self.metrics.content_played_s

    def _tick_waiting(self) -> None:
        enough = self.buffer_s >= self.config.startup_buffer_s
        if enough or (self.download_complete and self.buffered_bytes > 0):
            self.metrics.started = True
            self.metrics.startup_delay_s = self._session_time()
            self.state = "playing"
            return
        if self._session_time() > self.config.startup_abandon_s:
            self.metrics.abandoned = True
            self.metrics.abandon_reason = "startup-timeout"
            self._finish()

    def _tick_playing(self) -> None:
        speed = max(0.0, min(1.0, self.decode_speed_fn()))
        self._account_stutter(speed)
        dt = self.config.tick_s
        consume = self.profile.byte_rate * dt * speed
        remaining_bytes = self._remaining_content() * self.profile.byte_rate
        consume = min(consume, remaining_bytes)
        self._sample_buffer()
        if self.buffered_bytes + 1e-9 >= consume and consume > 0:
            self.buffered_bytes -= consume
            self.metrics.content_played_s += dt * speed
            if self._remaining_content() <= dt:
                self.metrics.completed = True
                self._finish()
        elif consume <= 0:
            self.metrics.completed = True
            self._finish()
        else:
            if self.download_complete:
                # Whatever is buffered is all that will ever arrive: play it
                # out and end (accounting the tail as played content).
                self.metrics.content_played_s += (
                    self.buffered_bytes / self.profile.byte_rate
                )
                self.buffered_bytes = 0.0
                self.metrics.completed = (
                    self._remaining_content() <= self.config.tick_s * 2
                )
                self._finish()
                return
            self.state = "stalled"
            self._stall_started = self.sim.now
            self.metrics.stall_count += 1

    def _tick_stalled(self) -> None:
        stall_len = self.sim.now - self._stall_started
        if self.buffer_s >= self.config.resume_buffer_s or (
            self.download_complete and self.buffered_bytes > 0
        ):
            self.metrics.total_stall_s += stall_len
            self.metrics.stall_durations.append(stall_len)
            self.state = "playing"
            return
        if stall_len > self.config.stall_abandon_s:
            self.metrics.total_stall_s += stall_len
            self.metrics.stall_durations.append(stall_len)
            self.metrics.abandoned = True
            self.metrics.abandon_reason = "stall-timeout"
            self._finish()

    def _account_stutter(self, speed: float) -> None:
        if speed < self.config.stutter_threshold:
            if not self._in_stutter:
                self._in_stutter = True
                self.metrics.stutter_events += 1
            self.metrics.stutter_s += self.config.tick_s * (1.0 - speed)
        else:
            self._in_stutter = False

    def _sample_buffer(self) -> None:
        level = self.buffer_s
        self.metrics.buffer_min_s = min(self.metrics.buffer_min_s, level)
        self.metrics.buffer_sum_s += level
        self.metrics.buffer_samples += 1

    def _finish(self) -> None:
        self.state = "done"
        if self._start_time is not None:
            self.metrics.watch_time_s = self._session_time()
        if self.metrics.buffer_min_s == float("inf"):
            self.metrics.buffer_min_s = 0.0
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        if self.on_done:
            self.on_done()

"""One end-to-end video session: request, stream, play, measure.

A :class:`VideoSession` owns the client TCP connection and the player, and
records everything the application-layer probe reports: startup delay,
stalls, frame skips, buffer state, bytes, flow identity and timing.  The
app-layer metrics feed the MOS labeller -- per the paper they are *never*
used as classifier features.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simnet.engine import SessionContext
from repro.simnet.node import Node
from repro.simnet.packet import FlowKey, TCP
from repro.simnet.tcp import open_connection
from repro.video.catalog import VideoProfile
from repro.video.mos import MosModel, MosResult, mos_to_severity
from repro.video.player import PlayerConfig, VideoPlayer
from repro.video.server import VideoServer

REQUEST_BYTES = 420  # HTTP GET with headers
RWND_UPDATE_INTERVAL_S = 0.5


class VideoSession:
    """Drives one video playback from a phone against a video server."""

    def __init__(
        self,
        sim: SessionContext,
        client: Node,
        server: VideoServer,
        profile: VideoProfile,
        player_config: Optional[PlayerConfig] = None,
        decode_speed_fn: Optional[Callable[[], float]] = None,
        recv_capacity_fn: Optional[Callable[[], int]] = None,
        on_complete: Optional[Callable[["VideoSession"], None]] = None,
        hard_timeout_s: Optional[float] = None,
        pre_connect_delay_s: float = 0.0,
    ):
        self.sim = sim
        self.client = client
        self.server = server
        self.profile = profile
        self.player_config = player_config or PlayerConfig()
        self.decode_speed_fn = decode_speed_fn
        self.recv_capacity_fn = recv_capacity_fn
        self.on_complete = on_complete
        self.hard_timeout_s = hard_timeout_s or (profile.duration_s * 3 + 90.0)
        #: delay between "play" and the TCP connect -- a failing resolver
        #: (DNS misconfiguration) stalls here while the session clock runs.
        self.pre_connect_delay_s = max(0.0, pre_connect_delay_s)

        self.player: Optional[VideoPlayer] = None
        self.endpoint = None
        self.flow_key: Optional[FlowKey] = None
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.failed = False
        self.failure_reason = ""
        self.finished = False
        self._timeout_event = None
        self._rwnd_event = None

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        """Register the request and open the connection."""
        if self.start_time is not None:
            raise RuntimeError("session already started")
        self.start_time = self.sim.now
        self.server.register_request(self.client.name, self.profile)
        self.player = VideoPlayer(
            self.sim,
            self.profile,
            config=self.player_config,
            decode_speed_fn=self.decode_speed_fn,
            on_done=self._on_player_done,
        )
        capacity = 262144
        if self.recv_capacity_fn is not None:
            capacity = self.recv_capacity_fn()
        self.endpoint = open_connection(
            self.sim,
            self.client,
            self.server.node.name,
            self.server.port,
            recv_capacity=capacity,
        )
        self.flow_key = FlowKey(
            self.client.name,
            self.server.node.name,
            self.endpoint.local_port,
            self.server.port,
            TCP,
        )
        self.endpoint.on_established = self._on_established
        self.endpoint.on_data = self._on_data
        self.endpoint.on_close = self._on_transport_close
        self.endpoint.on_fail = self._on_transport_fail
        self.player.start()
        if self.pre_connect_delay_s > 0:
            self.sim.schedule(self.pre_connect_delay_s, self.endpoint.connect)
        else:
            self.endpoint.connect()
        self._timeout_event = self.sim.schedule(self.hard_timeout_s, self._on_timeout)
        if self.recv_capacity_fn is not None:
            self._rwnd_event = self.sim.schedule(
                RWND_UPDATE_INTERVAL_S, self._update_rwnd
            )

    @property
    def duration(self) -> float:
        """Wall-clock session length (play press to finish)."""
        if self.start_time is None:
            return 0.0
        end = self.end_time if self.end_time is not None else self.sim.now
        return end - self.start_time

    def mos(self, model: Optional[MosModel] = None) -> MosResult:
        """Score the session with the Mok et al. model."""
        model = model or MosModel()
        metrics = self.player.metrics
        result = model.score(
            startup_delay_s=metrics.startup_delay_s,
            stall_count=metrics.qoe_stall_count,
            total_stall_s=metrics.qoe_stall_s,
            session_duration_s=self.duration,
            started=metrics.started,
        )
        if metrics.abandoned and metrics.started:
            # The user gave up mid-session: unacceptable QoE regardless of
            # what the frequency-based regression says.
            capped = min(result.mos, 1.8)
            result = MosResult(capped, result.level_ti, result.level_fr, result.level_td)
        return result

    def severity(self, model: Optional[MosModel] = None) -> str:
        return mos_to_severity(self.mos(model).mos)

    # ------------------------------------------------------------- internals

    def _on_established(self) -> None:
        self.endpoint.send(REQUEST_BYTES, tag="video-request")

    def _on_data(self, nbytes: int, now: float) -> None:
        self.player.feed(nbytes)

    def _on_transport_close(self) -> None:
        self.player.notify_download_complete()

    def _on_transport_fail(self, reason: str) -> None:
        self.failed = True
        self.failure_reason = reason
        self.player.fail(reason)

    def _on_timeout(self) -> None:
        self._timeout_event = None
        if not self.finished:
            self.player.fail("session-timeout")

    def _update_rwnd(self) -> None:
        if self.finished or self.endpoint.closed:
            return
        self.endpoint.set_recv_capacity(self.recv_capacity_fn())
        self._rwnd_event = self.sim.schedule(
            RWND_UPDATE_INTERVAL_S, self._update_rwnd
        )

    def _on_player_done(self) -> None:
        if self.finished:
            return
        self.finished = True
        self.end_time = self.sim.now
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        if self._rwnd_event is not None:
            self._rwnd_event.cancel()
            self._rwnd_event = None
        if self.endpoint is not None and not self.endpoint.closed:
            self.endpoint.abort()
        if self.on_complete:
            self.on_complete(self)

"""Video delivery: catalog, servers, the mobile player and the MOS model.

This package models the application layer of the paper's testbed:

* :mod:`repro.video.catalog` -- a synthetic stand-in for the YouTube
  "top 100 most viewed" collection (SD/HD mix, realistic durations).
* :mod:`repro.video.server` -- HTTP-like video delivery over the simulated
  TCP: Apache-style whole-file transfer and YouTube-style paced delivery,
  with a load-dependent response model (ApacheBench background load).
* :mod:`repro.video.player` -- the progressive-download player: startup
  buffering, rebuffering stalls, decoder-limited playback (frame skips
  under CPU load), buffer capacity under memory pressure, abandonment.
* :mod:`repro.video.mos` -- the Mok et al. regression converting startup
  delay / stall frequency / stall duration into a Mean Opinion Score,
  which provides the QoE ground-truth labels.
* :mod:`repro.video.session` -- glue that runs one video session and
  gathers the application-layer metrics.
"""

from repro.video.catalog import VideoCatalog, VideoProfile
from repro.video.mos import MosModel, mos_to_severity
from repro.video.player import PlayerConfig, PlayerMetrics, VideoPlayer
from repro.video.server import VideoServer
from repro.video.session import VideoSession

__all__ = [
    "VideoCatalog",
    "VideoProfile",
    "MosModel",
    "mos_to_severity",
    "PlayerConfig",
    "PlayerMetrics",
    "VideoPlayer",
    "VideoServer",
    "VideoSession",
]

"""Decision paths and rule extraction for C4.5 trees.

The paper argues for C4.5 precisely because "the model is not a black box.
The constructed tree can be visualized and interpreted."  This module
operationalises that:

* :func:`decision_path` -- the exact tests a sample satisfied on its way
  to a leaf, i.e. *why* a session received its diagnosis;
* :func:`extract_rules` -- the tree flattened into an ordered ruleset
  (the spirit of Quinlan's C4.5rules), with per-rule support and
  confidence from the training counts;
* :func:`render_rule` -- human-readable one-liners for reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ml.tree import C45Tree, _Node


@dataclass(frozen=True)
class Condition:
    """One satisfied test on the path: ``feature <= threshold`` or ``>``."""

    feature: str
    threshold: float
    satisfied_leq: bool  # True when the sample went left (<=)
    value: float

    def __str__(self) -> str:
        op = "<=" if self.satisfied_leq else ">"
        return f"{self.feature} {op} {self.threshold:.4g} (value={self.value:.4g})"


@dataclass
class Rule:
    """A root-to-leaf conjunction with its training statistics."""

    conditions: Tuple[Condition, ...]
    prediction: str
    support: int
    confidence: float

    def matches(self, features: Dict[str, float]) -> bool:
        for cond in self.conditions:
            value = features.get(cond.feature, 0.0)
            if cond.satisfied_leq != (value <= cond.threshold):
                return False
        return True


def decision_path(tree: C45Tree, row: Sequence[float]) -> List[Condition]:
    """The conditions ``row`` satisfied from root to its leaf."""
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    names = tree.feature_names or [f"x{j}" for j in range(tree.n_features)]
    row = np.asarray(row, dtype=float)
    path: List[Condition] = []
    node = tree.root
    while not node.is_leaf:
        value = float(row[node.feature])
        goes_left = value <= node.threshold
        path.append(Condition(names[node.feature], float(node.threshold),
                              goes_left, value))
        node = node.left if goes_left else node.right
    return path


def explain_prediction(
    tree: C45Tree, features: Dict[str, float]
) -> Tuple[str, List[Condition]]:
    """Predict from a feature dict and return (label, path)."""
    names = tree.feature_names or []
    row = [features.get(n, 0.0) for n in names]
    label = str(tree.predict_one(row))
    return label, decision_path(tree, row)


def extract_rules(tree: C45Tree) -> List[Rule]:
    """Flatten the tree into rules ordered by (confidence, support)."""
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    names = tree.feature_names or [f"x{j}" for j in range(tree.n_features)]
    rules: List[Rule] = []

    def walk(node: _Node, conds: Tuple[Condition, ...]) -> None:
        if node.is_leaf:
            support = node.n
            correct = int(node.counts[node.prediction])
            confidence = correct / support if support else 0.0
            rules.append(Rule(
                conditions=conds,
                prediction=str(tree.classes_[node.prediction]),
                support=support,
                confidence=confidence,
            ))
            return
        feat = names[node.feature]
        walk(node.left, conds + (
            Condition(feat, float(node.threshold), True, float("nan")),
        ))
        walk(node.right, conds + (
            Condition(feat, float(node.threshold), False, float("nan")),
        ))

    walk(tree.root, ())
    rules.sort(key=lambda r: (-r.confidence, -r.support))
    return rules


def render_rule(rule: Rule) -> str:
    """One-line rendering, e.g. for an operator report."""
    if not rule.conditions:
        body = "(always)"
    else:
        body = " AND ".join(
            f"{c.feature} {'<=' if c.satisfied_leq else '>'} {c.threshold:.4g}"
            for c in rule.conditions
        )
    return (f"IF {body} THEN {rule.prediction} "
            f"[n={rule.support}, conf={rule.confidence:.2f}]")

"""Machine-learning stack (the paper's Weka J48 / FCBF equivalents).

Everything is implemented from scratch on numpy:

* :mod:`repro.ml.tree` -- C4.5 decision tree (gain ratio, binary splits on
  continuous attributes, pessimistic-error pruning), the paper's J48.
* :mod:`repro.ml.discretize` -- Fayyad-Irani MDL entropy discretisation,
  needed by the information-theoretic feature selection.
* :mod:`repro.ml.fcbf` -- the Fast Correlation-Based Filter of Yu & Liu,
  which the paper found "most efficient in identifying a minimal set of
  features with high predictive power" (Section 3.2).
* :mod:`repro.ml.naive_bayes`, :mod:`repro.ml.svm` -- the baselines the
  paper compared against (and beat) with the decision tree.
* :mod:`repro.ml.cross_validation` -- stratified 10-fold CV, the paper's
  evaluation protocol.
* :mod:`repro.ml.metrics` -- accuracy / precision / recall / confusion.
* :mod:`repro.ml.ranking` -- per-label feature rankings (Table 4).
"""

from repro.ml.cross_validation import cross_validate, stratified_kfold
from repro.ml.discretize import mdl_discretize, apply_cuts
from repro.ml.fcbf import fcbf, symmetrical_uncertainty
from repro.ml.metrics import ConfusionMatrix
from repro.ml.naive_bayes import GaussianNB
from repro.ml.ranking import info_gain_ranking, per_label_ranking
from repro.ml.rules import decision_path, explain_prediction, extract_rules, render_rule
from repro.ml.svm import LinearSVM
from repro.ml.export import tree_from_dict, tree_to_dict, tree_to_dot
from repro.ml.tree import C45Tree

__all__ = [
    "C45Tree",
    "GaussianNB",
    "LinearSVM",
    "ConfusionMatrix",
    "cross_validate",
    "stratified_kfold",
    "mdl_discretize",
    "apply_cuts",
    "fcbf",
    "symmetrical_uncertainty",
    "info_gain_ranking",
    "tree_to_dot",
    "tree_to_dict",
    "tree_from_dict",
    "per_label_ranking",
    "decision_path",
    "explain_prediction",
    "extract_rules",
    "render_rule",
]

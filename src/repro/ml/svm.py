"""Linear multi-class SVM baseline (Pegasos SGD, one-vs-rest).

The second baseline of Section 3.2.  Features are standardised internally
(the probe metrics span ten orders of magnitude), then one linear SVM per
class is trained with the Pegasos stochastic sub-gradient method and
prediction takes the highest margin.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class LinearSVM:
    """One-vs-rest linear SVM trained with Pegasos."""

    def __init__(
        self,
        lambda_reg: float = 1e-4,
        epochs: int = 20,
        seed: int = 0,
    ) -> None:
        self.lambda_reg = lambda_reg
        self.epochs = epochs
        self.seed = seed
        self.classes_ = None
        self._weights = None
        self._bias = None
        self._mu = None
        self._sigma = None

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mu) / self._sigma

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        feature_names: Optional[Sequence[str]] = None,
    ) -> "LinearSVM":
        X = np.asarray(X, dtype=float)
        self.classes_, y_codes = np.unique(np.asarray(y), return_inverse=True)
        self._mu = X.mean(axis=0)
        self._sigma = X.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        Xs = self._standardize(X)
        n, f = Xs.shape
        k = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        self._weights = np.zeros((k, f))
        self._bias = np.zeros(k)
        for c in range(k):
            target = np.where(y_codes == c, 1.0, -1.0)
            w = np.zeros(f)
            b = 0.0
            t = 0
            for _epoch in range(self.epochs):
                for i in rng.permutation(n):
                    t += 1
                    eta = 1.0 / (self.lambda_reg * t)
                    margin = target[i] * (Xs[i] @ w + b)
                    w *= 1.0 - eta * self.lambda_reg
                    if margin < 1.0:
                        w += eta * target[i] * Xs[i]
                        b += eta * target[i] * 0.01
            self._weights[c] = w
            self._bias[c] = b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Per-class margins, one BLAS matmul for the whole batch."""
        if self._weights is None:
            raise RuntimeError("model is not fitted")
        Xs = self._standardize(np.asarray(X, dtype=float))
        return Xs @ self._weights.T + self._bias

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]

    def predict_one(self, row: Sequence[float]) -> object:
        """One row, through the same margins as :meth:`predict`."""
        return self.predict(np.asarray(row, dtype=float)[None, :])[0]

"""Model export and persistence.

The paper values C4.5's interpretability ("the constructed tree can be
visualized and interpreted").  This module provides:

* :func:`tree_to_dot` -- Graphviz rendering of a trained tree;
* :func:`tree_to_dict` / :func:`tree_from_dict` -- loss-free JSON-safe
  (de)serialisation, so a lab-trained model can be shipped to probes
  without pickling code objects.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ml.tree import C45Tree, _Node
from repro.schemas import C45_V1


def tree_to_dot(tree: C45Tree, max_depth: int = 8) -> str:
    """Render a trained tree in Graphviz DOT format."""
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    names = tree.feature_names or [f"x{j}" for j in range(tree.n_features)]
    lines = ["digraph c45 {", '  node [shape=box, fontsize=10];']
    counter = [0]

    def walk(node: _Node, depth: int) -> int:
        nid = counter[0]
        counter[0] += 1
        if node.is_leaf or depth >= max_depth:
            label = tree.classes_[node.prediction]
            lines.append(f'  n{nid} [label="{label}\\nn={node.n}", '
                         'style=filled, fillcolor=lightgrey];')
            return nid
        lines.append(
            f'  n{nid} [label="{names[node.feature]}\\n<= {node.threshold:.4g}"];'
        )
        left = walk(node.left, depth + 1)
        right = walk(node.right, depth + 1)
        lines.append(f'  n{nid} -> n{left} [label="yes"];')
        lines.append(f'  n{nid} -> n{right} [label="no"];')
        return nid

    walk(tree.root, 0)
    lines.append("}")
    return "\n".join(lines)


def _node_to_dict(node: _Node) -> Dict:
    out = {
        "counts": [int(c) for c in node.counts],
    }
    if not node.is_leaf:
        out["feature"] = int(node.feature)
        out["threshold"] = float(node.threshold)
        out["left"] = _node_to_dict(node.left)
        out["right"] = _node_to_dict(node.right)
    return out


def _node_from_dict(data: Dict) -> _Node:
    node = _Node(np.asarray(data["counts"], dtype=np.int64))
    if "feature" in data:
        node.feature = int(data["feature"])
        node.threshold = float(data["threshold"])
        node.left = _node_from_dict(data["left"])
        node.right = _node_from_dict(data["right"])
    return node


def tree_to_dict(tree: C45Tree) -> Dict:
    """JSON-safe serialisation of a trained tree."""
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    return {
        "format": C45_V1,
        "classes": [str(c) for c in tree.classes_],
        "feature_names": list(tree.feature_names or []),
        "n_features": tree.n_features,
        "params": {
            "min_leaf": tree.min_leaf,
            "cf": tree.cf,
            "max_depth": tree.max_depth,
        },
        "root": _node_to_dict(tree.root),
    }


def tree_from_dict(data: Dict) -> C45Tree:
    """Reconstruct a :class:`C45Tree` saved by :func:`tree_to_dict`."""
    if data.get("format") != C45_V1:
        raise ValueError("not a repro C4.5 export")
    params = data.get("params", {})
    tree = C45Tree(
        min_leaf=params.get("min_leaf", 2),
        cf=params.get("cf", 0.25),
        max_depth=params.get("max_depth"),
    )
    tree.classes_ = np.asarray(data["classes"])
    tree.feature_names = list(data["feature_names"]) or None
    tree.n_features = int(data["n_features"])
    tree._importance = np.zeros(tree.n_features)
    tree.root = _node_from_dict(data["root"])
    return tree

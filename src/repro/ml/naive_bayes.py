"""Gaussian Naive Bayes baseline.

One of the two algorithms the paper evaluated against the decision tree
("Decision Trees outperformed other algorithms like Naive Bayes and
Support Vector Machines", Section 3.2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

_VAR_FLOOR = 1e-9

#: elements per (rows, classes, features) likelihood block — keeps the
#: broadcast temporaries cache-sized instead of materialising n*k*f floats
_BROADCAST_BUDGET = 1 << 21


class GaussianNB:
    """Per-class Gaussian likelihoods with Laplace-smoothed priors."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.classes_ = None
        self._means = None
        self._vars = None
        self._log_priors = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        feature_names: Optional[Sequence[str]] = None,
    ) -> "GaussianNB":
        X = np.asarray(X, dtype=float)
        self.classes_, y_codes = np.unique(np.asarray(y), return_inverse=True)
        k = len(self.classes_)
        n, f = X.shape
        self._means = np.zeros((k, f))
        self._vars = np.zeros((k, f))
        counts = np.zeros(k)
        for c in range(k):
            rows = X[y_codes == c]
            counts[c] = len(rows)
            self._means[c] = rows.mean(axis=0)
            self._vars[c] = rows.var(axis=0)
        # Global variance smoothing, as in scikit-learn's formulation.
        smoothing = self.var_smoothing * max(X.var(axis=0).max(), _VAR_FLOOR)
        self._vars = np.maximum(self._vars + smoothing, _VAR_FLOOR)
        self._log_priors = np.log((counts + 1.0) / (n + k))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Highest-posterior class per row, fully vectorized.

        log N(x | mu, var) is evaluated for all classes at once as one
        (rows, classes, features) broadcast per row chunk — no per-class
        Python pass.  The arithmetic applies the same elementwise ops as
        the per-class formulation (reordered only by commutativity), so
        scores and labels are bit-identical to it (pinned by the
        classifier-comparison bench and the compiled-equivalence suite).
        """
        if self._means is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        n = len(X)
        k, f = self._means.shape
        log_norm = np.log(2.0 * np.pi * self._vars)
        scores = np.empty((n, k))
        chunk = max(1, _BROADCAST_BUDGET // max(k * f, 1))
        for start in range(0, n, chunk):
            stop = min(n, start + chunk)
            diff = X[start:stop, None, :] - self._means
            diff *= diff
            diff /= self._vars
            diff += log_norm
            diff *= -0.5
            scores[start:stop] = diff.sum(axis=2) + self._log_priors
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_one(self, row: Sequence[float]) -> object:
        """One row, through the same scoring as :meth:`predict`."""
        return self.predict(np.asarray(row, dtype=float)[None, :])[0]

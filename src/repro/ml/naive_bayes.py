"""Gaussian Naive Bayes baseline.

One of the two algorithms the paper evaluated against the decision tree
("Decision Trees outperformed other algorithms like Naive Bayes and
Support Vector Machines", Section 3.2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

_VAR_FLOOR = 1e-9


class GaussianNB:
    """Per-class Gaussian likelihoods with Laplace-smoothed priors."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.classes_ = None
        self._means = None
        self._vars = None
        self._log_priors = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        feature_names: Optional[Sequence[str]] = None,
    ) -> "GaussianNB":
        X = np.asarray(X, dtype=float)
        self.classes_, y_codes = np.unique(np.asarray(y), return_inverse=True)
        k = len(self.classes_)
        n, f = X.shape
        self._means = np.zeros((k, f))
        self._vars = np.zeros((k, f))
        counts = np.zeros(k)
        for c in range(k):
            rows = X[y_codes == c]
            counts[c] = len(rows)
            self._means[c] = rows.mean(axis=0)
            self._vars[c] = rows.var(axis=0)
        # Global variance smoothing, as in scikit-learn's formulation.
        smoothing = self.var_smoothing * max(X.var(axis=0).max(), _VAR_FLOOR)
        self._vars = np.maximum(self._vars + smoothing, _VAR_FLOOR)
        self._log_priors = np.log((counts + 1.0) / (n + k))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._means is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        # log N(x | mu, var) summed over features, per class.
        scores = np.empty((len(X), len(self.classes_)))
        for c in range(len(self.classes_)):
            var = self._vars[c]
            diff = X - self._means[c]
            log_lik = -0.5 * (np.log(2.0 * np.pi * var) + diff * diff / var)
            scores[:, c] = log_lik.sum(axis=1) + self._log_priors[c]
        return self.classes_[np.argmax(scores, axis=1)]

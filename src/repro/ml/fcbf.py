"""Fast Correlation-Based Filter (Yu & Liu, ICML 2003).

The paper's feature selection: "we find that the Fast Correlation-Based
Filter algorithm is the most efficient in identifying a minimal set of
features with high predictive power", reducing 354 features to 22
(Table 1).

The filter works on symmetrical uncertainty (SU) over discretised
attributes:

1. keep features whose SU with the class exceeds ``delta``;
2. scanning in decreasing SU order, drop any remaining feature ``f`` whose
   SU with an already-kept feature ``g`` is at least its SU with the class
   (``g`` forms an *approximate Markov blanket* for ``f``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ml.discretize import apply_cuts, mdl_discretize
from repro.obs.telemetry import get_telemetry


def _entropy(x: np.ndarray) -> float:
    _, counts = np.unique(x, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def _joint_entropy(x: np.ndarray, y: np.ndarray) -> float:
    joint = x.astype(np.int64) * (int(y.max()) + 1) + y.astype(np.int64)
    return _entropy(joint)


def symmetrical_uncertainty(x: np.ndarray, y: np.ndarray) -> float:
    """SU(x, y) = 2 * IG(x; y) / (H(x) + H(y)), in [0, 1]."""
    hx = _entropy(x)
    hy = _entropy(y)
    if hx == 0.0 and hy == 0.0:
        return 1.0
    if hx == 0.0 or hy == 0.0:
        return 0.0
    ig = hx + hy - _joint_entropy(x, y)
    return max(0.0, 2.0 * ig / (hx + hy))


def discretize_matrix(
    X: np.ndarray, y: np.ndarray, max_cuts: int = 32
) -> Tuple[np.ndarray, List[List[float]]]:
    """MDL-discretise every column of ``X`` against the class ``y``."""
    n, f = X.shape
    out = np.zeros((n, f), dtype=np.int64)
    all_cuts: List[List[float]] = []
    for j in range(f):
        cuts = mdl_discretize(X[:, j], y, max_cuts=max_cuts)
        all_cuts.append(cuts)
        out[:, j] = apply_cuts(X[:, j], cuts)
    return out, all_cuts


def fcbf(
    X: np.ndarray,
    y: np.ndarray,
    delta: float = 0.01,
    feature_names: Sequence[str] = (),
    prediscretized: bool = False,
) -> Tuple[List[int], Dict[str, float]]:
    """Run FCBF; returns (selected column indices, SU-with-class map).

    ``X`` is (n, f) continuous unless ``prediscretized``; ``y`` is any
    label array.  ``feature_names`` is used for the returned SU map keys
    (falls back to column indices).
    """
    tel = get_telemetry()
    X = np.asarray(X)
    _, y_codes = np.unique(np.asarray(y), return_inverse=True)
    if prediscretized:
        Xd = X.astype(np.int64)
    else:
        with tel.span("ml.fcbf.discretize", features=int(X.shape[1])):
            Xd, _ = discretize_matrix(X, y_codes)
    n_features = Xd.shape[1]
    names = list(feature_names) if feature_names else [str(j) for j in range(n_features)]

    with tel.span("ml.fcbf.filter", features=n_features) as span:
        su_class = np.array(
            [symmetrical_uncertainty(Xd[:, j], y_codes) for j in range(n_features)]
        )
        candidates = [j for j in range(n_features) if su_class[j] > delta]
        candidates.sort(key=lambda j: -su_class[j])

        selected: List[int] = []
        removed = set()
        for i, fj in enumerate(candidates):
            if fj in removed:
                continue
            selected.append(fj)
            for fk in candidates[i + 1:]:
                if fk in removed:
                    continue
                su_fk_fj = symmetrical_uncertainty(Xd[:, fk], Xd[:, fj])
                if su_fk_fj >= su_class[fk]:
                    removed.add(fk)
        span.count("candidates", len(candidates))
        span.count("selected", len(selected))
    su_map = {names[j]: float(su_class[j]) for j in range(n_features)}
    return selected, su_map

"""Fast Correlation-Based Filter (Yu & Liu, ICML 2003).

The paper's feature selection: "we find that the Fast Correlation-Based
Filter algorithm is the most efficient in identifying a minimal set of
features with high predictive power", reducing 354 features to 22
(Table 1).

The filter works on symmetrical uncertainty (SU) over discretised
attributes:

1. keep features whose SU with the class exceeds ``delta``;
2. scanning in decreasing SU order, drop any remaining feature ``f`` whose
   SU with an already-kept feature ``g`` is at least its SU with the class
   (``g`` forms an *approximate Markov blanket* for ``f``).

The implementation is batched: value counts come from ``np.bincount``
contingency tables instead of a ``np.unique`` sort per pair, all
SU-with-class joints are counted in one segmented pass, and each step of
the Markov-blanket scan scores every surviving candidate against the
newly kept feature at once.  Counting is bit-identical to the sorted
``np.unique`` path — ``bincount`` over min-shifted codes yields the same
counts in the same ascending-value order — so the selected features and
SU map match the per-pair implementation float for float.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ml.discretize import apply_cuts, mdl_discretize
from repro.obs.telemetry import get_telemetry

#: widest bincount table worth allocating per entropy batch; spans beyond
#: this (wild prediscretized codes) fall back to the sort-based counter
_SPAN_CAP = 1 << 22


def _counts_ascending(x: np.ndarray) -> np.ndarray:
    """Occurrence counts of ``x`` in ascending value order.

    Exactly ``np.unique(x, return_counts=True)[1]``: shifting integer
    codes by their minimum keeps their order, so the nonzero entries of
    the shifted ``bincount`` are the unique-value counts in the same
    ascending sequence — without the O(n log n) sort.
    """
    if x.size == 0 or not np.issubdtype(x.dtype, np.integer):
        return np.unique(x, return_counts=True)[1]
    lo = int(x.min())
    span = int(x.max()) - lo + 1
    if span > max(16 * x.size, 1024) or span > _SPAN_CAP:
        return np.unique(x, return_counts=True)[1]
    counts = np.bincount(x - lo, minlength=span)
    return counts[counts > 0]


def _entropy(x: np.ndarray) -> float:
    counts = _counts_ascending(x)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def _joint_entropy(x: np.ndarray, y: np.ndarray) -> float:
    joint = x.astype(np.int64) * (int(y.max()) + 1) + y.astype(np.int64)
    return _entropy(joint)


def _column_entropies(X: np.ndarray) -> np.ndarray:
    """Per-column entropies of an integer code matrix, batched.

    Columns are min-shifted and packed side by side into one segmented
    ``bincount`` (as many columns per pass as fit a bounded table), so a
    354-column SU sweep costs a handful of C passes instead of a sort
    per column.  Each column's segment holds the same ascending-order
    counts :func:`_counts_ascending` returns, so the per-column entropy
    floats are bit-identical to ``_entropy(X[:, j])``.
    """
    n, k = X.shape
    out = np.empty(k)
    if k == 0:
        return out
    if n == 0 or not np.issubdtype(X.dtype, np.integer):
        for j in range(k):
            out[j] = _entropy(X[:, j])
        return out
    mins = X.min(axis=0)
    spans = (X.max(axis=0) - mins + 1).astype(np.int64)
    j = 0
    while j < k:
        if spans[j] > _SPAN_CAP:
            out[j] = _entropy(X[:, j])
            j += 1
            continue
        # take as many columns as fit one bounded bincount table
        end = j + 1
        total = int(spans[j])
        while end < k and spans[end] <= _SPAN_CAP and total + int(spans[end]) <= _SPAN_CAP:
            total += int(spans[end])
            end += 1
        block = slice(j, end)
        offsets = np.zeros(end - j, dtype=np.int64)
        np.cumsum(spans[block][:-1], out=offsets[1:])
        codes = (X[:, block] - mins[block] + offsets).ravel()
        table = np.bincount(codes, minlength=total)
        for t, jj in enumerate(range(j, end)):
            seg = table[offsets[t] : offsets[t] + int(spans[jj])]
            counts = seg[seg > 0]
            p = counts / counts.sum()
            out[jj] = -(p * np.log2(p)).sum()
        j = end
    return out


def _su_from(hx: float, hy: float, hxy: float) -> float:
    """SU from precomputed entropies, with the exact scalar special cases."""
    if hx == 0.0 and hy == 0.0:
        return 1.0
    if hx == 0.0 or hy == 0.0:
        return 0.0
    ig = hx + hy - hxy
    return max(0.0, 2.0 * ig / (hx + hy))


def symmetrical_uncertainty(x: np.ndarray, y: np.ndarray) -> float:
    """SU(x, y) = 2 * IG(x; y) / (H(x) + H(y)), in [0, 1]."""
    hx = _entropy(x)
    hy = _entropy(y)
    if hx == 0.0 and hy == 0.0:
        return 1.0
    if hx == 0.0 or hy == 0.0:
        return 0.0
    ig = hx + hy - _joint_entropy(x, y)
    return max(0.0, 2.0 * ig / (hx + hy))


def discretize_matrix(
    X: np.ndarray, y: np.ndarray, max_cuts: int = 32
) -> Tuple[np.ndarray, List[List[float]]]:
    """MDL-discretise every column of ``X`` against the class ``y``."""
    n, f = X.shape
    out = np.zeros((n, f), dtype=np.int64)
    all_cuts: List[List[float]] = []
    for j in range(f):
        cuts = mdl_discretize(X[:, j], y, max_cuts=max_cuts)
        all_cuts.append(cuts)
        out[:, j] = apply_cuts(X[:, j], cuts)
    return out, all_cuts


def fcbf(
    X: np.ndarray,
    y: np.ndarray,
    delta: float = 0.01,
    feature_names: Sequence[str] = (),
    prediscretized: bool = False,
) -> Tuple[List[int], Dict[str, float]]:
    """Run FCBF; returns (selected column indices, SU-with-class map).

    ``X`` is (n, f) continuous unless ``prediscretized``; ``y`` is any
    label array.  ``feature_names`` is used for the returned SU map keys
    (falls back to column indices).
    """
    tel = get_telemetry()
    X = np.asarray(X)
    _, y_codes = np.unique(np.asarray(y), return_inverse=True)
    if prediscretized:
        Xd = X.astype(np.int64)
    else:
        with tel.span("ml.fcbf.discretize", features=int(X.shape[1])):
            Xd, _ = discretize_matrix(X, y_codes)
    n_features = Xd.shape[1]
    names = list(feature_names) if feature_names else [str(j) for j in range(n_features)]

    with tel.span("ml.fcbf.filter", features=n_features) as span:
        # SU with the class for every feature in one batched pass: the
        # per-column and per-joint contingency tables replace a
        # sort-per-feature, and the joint codes are exactly those
        # ``_joint_entropy`` builds (x * (max(y)+1) + y).
        y64 = y_codes.astype(np.int64)
        m_class = int(y64.max()) + 1 if y64.size else 1
        hy = _entropy(y64)
        h_col = _column_entropies(Xd)
        h_joint = _column_entropies(Xd * m_class + y64[:, None])
        su_class = np.array(
            [_su_from(h_col[j], hy, h_joint[j]) for j in range(n_features)]
        )
        candidates = [j for j in range(n_features) if su_class[j] > delta]
        candidates.sort(key=lambda j: -su_class[j])

        # Markov-blanket scan, batched: each kept feature scores every
        # surviving candidate at once.  The scan order, the pairwise SU
        # floats and therefore the removals match the per-pair loop
        # exactly.
        selected: List[int] = []
        removed = set()
        for i, fj in enumerate(candidates):
            if fj in removed:
                continue
            selected.append(fj)
            rest = [fk for fk in candidates[i + 1 :] if fk not in removed]
            if not rest:
                continue
            col_j = Xd[:, fj]
            m_j = int(col_j.max()) + 1 if col_j.size else 1
            h_pair = _column_entropies(Xd[:, rest] * m_j + col_j[:, None])
            h_j = h_col[fj]
            for t, fk in enumerate(rest):
                if _su_from(h_col[fk], h_j, h_pair[t]) >= su_class[fk]:
                    removed.add(fk)
        span.count("candidates", len(candidates))
        span.count("selected", len(selected))
    su_map = {names[j]: float(su_class[j]) for j in range(n_features)}
    return selected, su_map

"""Stratified k-fold cross-validation (the paper uses 10-fold)."""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.metrics import ConfusionMatrix
from repro.obs.telemetry import get_telemetry


def stratified_kfold(
    y: Sequence, k: int = 10, seed: int = 0
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Return ``k`` (train_idx, test_idx) pairs with per-class balance.

    Classes with fewer than ``k`` members are spread over the first folds;
    folds never end up empty as long as ``len(y) >= k``.
    """
    y = np.asarray(y)
    if len(y) < k:
        raise ValueError(f"need at least k={k} instances, got {len(y)}")
    rng = random.Random(seed)
    folds: List[List[int]] = [[] for _ in range(k)]
    offset = 0
    for label in np.unique(y):
        idx = list(np.nonzero(y == label)[0])
        rng.shuffle(idx)
        for j, i in enumerate(idx):
            folds[(offset + j) % k].append(int(i))
        offset += len(idx)
    splits = []
    all_indices = set(range(len(y)))
    for fold in folds:
        test = np.array(sorted(fold), dtype=int)
        train = np.array(sorted(all_indices - set(fold)), dtype=int)
        splits.append((train, test))
    return splits


def cross_validate(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    k: int = 10,
    seed: int = 0,
    feature_names: Optional[Sequence[str]] = None,
) -> ConfusionMatrix:
    """Train/evaluate with stratified k-fold CV; returns the pooled matrix.

    With tracing enabled each fold emits an ``ml.cv.fold`` span holding
    ``ml.cv.fit`` / ``ml.cv.predict`` child spans, so ``repro trace``
    can attribute training wall time per fold and per phase.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    cm = ConfusionMatrix(list(np.unique(y)))
    tel = get_telemetry()
    with tel.span("ml.cv", k=k, n=int(len(y))) as cv:
        for fold, (train_idx, test_idx) in enumerate(
            stratified_kfold(y, k=k, seed=seed)
        ):
            with tel.span(
                "ml.cv.fold",
                fold=fold,
                train=int(len(train_idx)),
                test=int(len(test_idx)),
            ):
                model = model_factory()
                with tel.span("ml.cv.fit"):
                    model.fit(
                        X[train_idx], y[train_idx], feature_names=feature_names
                    )
                with tel.span("ml.cv.predict"):
                    predictions = model.predict(X[test_idx])
                cm.update(y[test_idx], predictions)
            cv.count("folds")
    return cm

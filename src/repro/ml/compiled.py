"""Compiled tree inference: structure-of-arrays plans for C4.5 trees.

The paper chose C4.5 over SVM/NB because "decision trees are fast to
evaluate" — but a node-object traversal still pays Python prices per
node visit.  This module flattens a fitted tree into five parallel
numpy arrays (one entry per node, preorder)::

    feature[]     int32    split feature column (0 for leaves)
    threshold[]   float64  split threshold (<= goes left)
    left[]        int32    left-child node index (self for leaves)
    right[]       int32    right-child node index (self for leaves)
    leaf_label[]  int32    majority-class code at the node

and evaluates a whole batch with an iterative vectorized descent: an
explicit worklist of ``(node, row indices)`` pairs partitions each
node's rows with one numpy comparison::

    mask = X[rows, feature[node]] <= threshold[node]

and sends ``rows[mask]`` left and the rest right.  At fleet batch sizes
rows vastly outnumber nodes, so the loop runs once per *visited node*
while every comparison stays in C — cheaper than a level-synchronous
sweep, which re-gathers per-row node state on every level.  Comparison
semantics are numpy's own ``<=`` on float64, so NaN rows fall right
exactly as the object-path per-node comparison does, and predictions
are bit-identical to the reference traversal (pinned by the Hypothesis
differential suite in ``tests/ml/test_compiled_equivalence.py``).

``REPRO_ML_PREDICT`` selects the evaluation engine process-wide:
``compiled`` (default) or ``object`` — the original node-object
traversal, kept as the differential-testing reference.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

#: the two evaluation engines ``REPRO_ML_PREDICT`` may name
PREDICT_MODES = ("compiled", "object")

#: environment variable selecting the evaluation engine
PREDICT_MODE_ENV = "REPRO_ML_PREDICT"


def predict_mode() -> str:
    """The active evaluation engine: ``"compiled"`` or ``"object"``.

    Read from ``REPRO_ML_PREDICT`` on every call (the lookup is a dict
    hit, far below the cost of even a one-row predict), so tests and
    operators can flip engines without rebuilding models.
    """
    mode = os.environ.get(PREDICT_MODE_ENV, "compiled").strip().lower()
    if mode not in PREDICT_MODES:
        raise ValueError(
            f"{PREDICT_MODE_ENV} must be one of {PREDICT_MODES}, got {mode!r}"
        )
    return mode


@dataclass
class TreePlan:
    """A fitted decision tree flattened to parallel arrays (preorder)."""

    feature: np.ndarray  # int32 (n_nodes,)
    threshold: np.ndarray  # float64 (n_nodes,)
    left: np.ndarray  # int32 (n_nodes,)
    right: np.ndarray  # int32 (n_nodes,)
    leaf_label: np.ndarray  # int32 (n_nodes,)
    is_leaf: np.ndarray  # bool (n_nodes,)
    #: scalar-descent mirrors (plain Python lists; built once per plan)
    _py: List[List[object]] = field(default_factory=list, repr=False)

    @classmethod
    def from_root(cls, root: object) -> "TreePlan":
        """Flatten a ``_Node`` tree into a plan (preorder numbering).

        Leaves keep ``feature = 0`` and point ``left``/``right`` at
        themselves, so a vectorized step is a no-op for any row already
        parked on a leaf — no masking special cases.
        """
        features: List[int] = []
        thresholds: List[float] = []
        lefts: List[int] = []
        rights: List[int] = []
        labels: List[int] = []
        leaves: List[bool] = []

        # Iterative preorder: parent indices are assigned before children,
        # then child slots are patched once the child index is known.
        stack = [(root, -1, False)]  # (node, parent index, is_right_child)
        while stack:
            node, parent, is_right = stack.pop()
            index = len(features)
            if parent >= 0:
                (rights if is_right else lefts)[parent] = index
            leaf = node.feature is None
            features.append(0 if leaf else int(node.feature))
            thresholds.append(float(node.threshold))
            lefts.append(index)
            rights.append(index)
            labels.append(int(node.prediction))
            leaves.append(leaf)
            if not leaf:
                # push right first so the left child is numbered next
                stack.append((node.right, index, True))
                stack.append((node.left, index, False))
        return cls(
            feature=np.asarray(features, dtype=np.int32),
            threshold=np.asarray(thresholds, dtype=np.float64),
            left=np.asarray(lefts, dtype=np.int32),
            right=np.asarray(rights, dtype=np.int32),
            leaf_label=np.asarray(labels, dtype=np.int32),
            is_leaf=np.asarray(leaves, dtype=bool),
        )

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    # ------------------------------------------------------------- batch

    def predict_codes(self, X: np.ndarray) -> np.ndarray:
        """Class codes for every row of ``X`` (float64, shape (n, f)).

        Worklist partition descent: each visited node splits its row set
        with one vectorized comparison.  NaN feature values compare
        False against any threshold and fall to the right child,
        matching the object traversal exactly.
        """
        n = X.shape[0]
        out = np.empty(n, dtype=np.int32)
        if not n:
            return out
        feature = self.feature
        threshold = self.threshold
        left = self.left
        right = self.right
        is_leaf = self.is_leaf
        leaf_label = self.leaf_label
        stack = [(0, np.arange(n))]
        while stack:
            node, idx = stack.pop()
            # run the left spine inline; queue right splits as they peel off
            while not is_leaf[node] and idx.size:
                mask = X[idx, feature[node]] <= threshold[node]
                right_idx = idx[~mask]
                if right_idx.size:
                    stack.append((right[node], right_idx))
                idx = idx[mask]
                node = left[node]
            if idx.size:
                out[idx] = leaf_label[node]
        return out

    # ------------------------------------------------------------ scalar

    def _scalar_tables(self) -> List[List[object]]:
        if not self._py:
            self._py = [
                self.feature.tolist(),
                self.threshold.tolist(),
                self.left.tolist(),
                self.right.tolist(),
                self.leaf_label.tolist(),
                self.is_leaf.tolist(),
            ]
        return self._py

    def predict_code_one(self, row: Sequence[float]) -> int:
        """Scalar descent for one row — no array allocation at all.

        ``row`` is any indexable of numbers (the diagnosis path hands a
        plain Python list).  Comparisons run on Python floats, which are
        IEEE-754 doubles like numpy's, so the routing — including the
        NaN-goes-right rule — is identical to :meth:`predict_codes`.
        """
        feature, threshold, left, right, label, is_leaf = self._scalar_tables()
        node = 0
        while not is_leaf[node]:
            node = (
                left[node]
                if float(row[feature[node]]) <= threshold[node]
                else right[node]
            )
        return label[node]

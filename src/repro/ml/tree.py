"""C4.5 decision tree (the paper's Weka J48 classifier).

Implements the parts of Quinlan's C4.5 that matter for this problem:

* binary splits on continuous attributes at class-boundary midpoints,
* split choice by **gain ratio** among candidates with at least average
  information gain (Quinlan's guard against high-arity bias),
* minimum instances per leaf (J48 default 2),
* **pessimistic error pruning** with the C4.5 confidence factor (default
  0.25), using the Wilson upper confidence bound on the leaf error rate.

Split search is vectorised with numpy so that training on the full
354-feature dataset under 10-fold cross-validation stays fast.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.compiled import TreePlan, predict_mode

# z-score for the one-sided CF=0.25 bound, as in C4.5/J48.
_Z_BY_CF = {0.25: 0.6744897501960817, 0.1: 1.2815515655446004, 0.5: 0.0}


def _upper_error(n: float, e: float, z: float) -> float:
    """Wilson upper bound on the error *rate* of a leaf (C4.5's U_cf)."""
    if n <= 0:
        return 0.0
    f = e / n
    num = f + z * z / (2 * n) + z * math.sqrt(f / n - f * f / n + z * z / (4 * n * n))
    return num / (1.0 + z * z / n)


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "counts", "prediction", "n")

    def __init__(self, counts: np.ndarray) -> None:
        self.feature: Optional[int] = None
        self.threshold = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.counts = counts
        self.n = int(counts.sum())
        self.prediction = int(np.argmax(counts))

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


class C45Tree:
    """Gain-ratio decision tree with pessimistic pruning.

    Parameters mirror Weka's J48: ``min_leaf`` (-M), ``cf`` (-C) and an
    optional depth cap.  ``fit`` takes a float matrix and any label array;
    labels are mapped to internal codes and restored by ``predict``.
    """

    def __init__(
        self,
        min_leaf: int = 2,
        cf: float = 0.25,
        max_depth: Optional[int] = None,
        prune: bool = True,
    ) -> None:
        if min_leaf < 1:
            raise ValueError("min_leaf must be >= 1")
        self.min_leaf = min_leaf
        self.cf = cf
        self.max_depth = max_depth
        self.prune = prune
        self._z = _Z_BY_CF.get(cf, 0.6744897501960817)
        self.classes_: Optional[np.ndarray] = None
        self.root: Optional[_Node] = None
        self.feature_names: Optional[List[str]] = None
        self.n_features = 0
        self._importance: Optional[np.ndarray] = None
        self._plan: Optional[TreePlan] = None

    # ------------------------------------------------------------------ fit

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        feature_names: Optional[Sequence[str]] = None,
    ) -> "C45Tree":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        self.classes_, y_codes = np.unique(np.asarray(y), return_inverse=True)
        self.n_features = X.shape[1]
        self.feature_names = (
            list(feature_names) if feature_names is not None else None
        )
        self._importance = np.zeros(self.n_features)
        k = len(self.classes_)
        one_hot = np.zeros((len(y_codes), k), dtype=np.int64)
        one_hot[np.arange(len(y_codes)), y_codes] = 1
        self.root = self._build(X, y_codes, one_hot, depth=0)
        if self.prune:
            self._prune(self.root)
        self._plan = None  # recompiled lazily against the new structure
        return self

    def _build(
        self, X: np.ndarray, y: np.ndarray, one_hot: np.ndarray, depth: int
    ) -> _Node:
        counts = one_hot.sum(axis=0)
        node = _Node(counts)
        if (
            node.n < 2 * self.min_leaf
            or (counts > 0).sum() <= 1
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node
        split = self._best_split(X, one_hot)
        if split is None:
            return node
        feature, threshold, gain = split
        mask = X[:, feature] <= threshold
        if mask.sum() < self.min_leaf or (~mask).sum() < self.min_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        self._importance[feature] += gain * node.n
        node.left = self._build(X[mask], y[mask], one_hot[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], one_hot[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, one_hot: np.ndarray
    ) -> Optional[Tuple[int, float, float]]:
        n, _k = one_hot.shape
        parent_entropy = _entropy(one_hot.sum(axis=0))
        if parent_entropy == 0.0:
            return None
        best = None  # (ratio, feature, threshold, gain)
        candidates = []  # (gain, ratio, feature, threshold)
        for j in range(self.n_features):
            col = X[:, j]
            order = np.argsort(col, kind="mergesort")
            vals = col[order]
            hot = one_hot[order]
            change = np.nonzero(vals[:-1] != vals[1:])[0]
            if len(change) == 0:
                continue
            left_counts = np.cumsum(hot, axis=0)[change]
            total = one_hot.sum(axis=0)
            right_counts = total - left_counts
            ln = change + 1
            rn = n - ln
            valid = (ln >= self.min_leaf) & (rn >= self.min_leaf)
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                pl = left_counts / ln[:, None]
                pr = right_counts / rn[:, None]
                el = -(pl * np.where(pl > 0, np.log2(np.where(pl > 0, pl, 1)), 0)).sum(axis=1)
                er = -(pr * np.where(pr > 0, np.log2(np.where(pr > 0, pr, 1)), 0)).sum(axis=1)
            weighted = (ln * el + rn * er) / n
            gains = parent_entropy - weighted
            gains[~valid] = -1.0
            idx = int(np.argmax(gains))
            gain = float(gains[idx])
            if gain <= 1e-12:
                continue
            p = ln[idx] / n
            split_info = -(p * math.log2(p) + (1 - p) * math.log2(1 - p))
            ratio = gain / max(split_info, 1e-9)
            threshold = (vals[change[idx]] + vals[change[idx] + 1]) / 2.0
            candidates.append((gain, ratio, j, threshold))
        if not candidates:
            return None
        # C4.5: choose by gain ratio among splits with >= average gain.
        avg_gain = sum(c[0] for c in candidates) / len(candidates)
        eligible = [c for c in candidates if c[0] >= avg_gain - 1e-12]
        gain, _ratio, feature, threshold = max(
            eligible, key=lambda c: (c[1], c[0])
        )
        return feature, threshold, gain

    # ---------------------------------------------------------------- prune

    def _prune(self, node: _Node) -> float:
        """Post-order pessimistic pruning; returns estimated error count."""
        leaf_err = _upper_error(
            node.n, node.n - node.counts[node.prediction], self._z
        ) * node.n
        if node.is_leaf:
            return leaf_err
        subtree_err = self._prune(node.left) + self._prune(node.right)
        if leaf_err <= subtree_err + 0.1:
            node.feature = None
            node.left = None
            node.right = None
            return leaf_err
        return subtree_err

    # -------------------------------------------------------------- predict

    def compiled_plan(self) -> TreePlan:
        """The structure-of-arrays plan for this tree (compiled lazily)."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        if self._plan is None:
            self._plan = TreePlan.from_root(self.root)
        return self._plan

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorized batch prediction.

        The default engine evaluates the compiled structure-of-arrays
        plan (:meth:`compiled_plan`): one iterative numpy descent step
        per tree level over the still-interior rows.  With
        ``REPRO_ML_PREDICT=object`` the original node-object traversal
        runs instead — kept as the differential-testing reference; the
        two are bit-identical (tests/ml/test_compiled_equivalence.py).
        """
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if predict_mode() == "object":
            return self.classes_[self._predict_object(X)]
        return self.classes_[self.compiled_plan().predict_codes(X)]

    def _predict_object(self, X: np.ndarray) -> np.ndarray:
        """Reference traversal: index-set partitioning over node objects."""
        out = np.empty(len(X), dtype=int)
        stack = [(self.root, np.arange(len(X)))]
        while stack:
            node, idx = stack.pop()
            if len(idx) == 0:
                continue
            if node.is_leaf:
                out[idx] = node.prediction
                continue
            mask = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    def predict_one(self, row: np.ndarray) -> object:
        """One row, without the batch machinery.

        The compiled engine runs a scalar descent over the plan arrays —
        no (1, f) matrix, no index bookkeeping — which is what the
        per-session ``diagnose`` path calls in a loop.  The object engine
        round-trips through :meth:`predict` as the reference.
        """
        if predict_mode() == "object":
            return self.predict(np.asarray(row, dtype=float)[None, :])[0]
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return self.classes_[self.compiled_plan().predict_code_one(row)]

    # ----------------------------------------------------------- inspection

    @property
    def n_nodes(self) -> int:
        def count(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            return 1 + count(node.left) + count(node.right)

        return count(self.root)

    @property
    def depth(self) -> int:
        def d(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(d(node.left), d(node.right))

        return d(self.root)

    def feature_importance(self) -> Dict[str, float]:
        """Total (gain x instances) credited to each feature."""
        if self._importance is None:
            raise RuntimeError("tree is not fitted")
        total = self._importance.sum() or 1.0
        names = self.feature_names or [str(j) for j in range(self.n_features)]
        return {
            names[j]: float(self._importance[j] / total)
            for j in range(self.n_features)
            if self._importance[j] > 0
        }

    def to_text(self, max_depth: int = 6) -> str:
        """Human-readable rendering (the paper values interpretability)."""
        names = self.feature_names or [f"x{j}" for j in range(self.n_features)]
        lines: List[str] = []

        def walk(node: _Node, indent: str, depth: int) -> None:
            if node.is_leaf or depth >= max_depth:
                label = self.classes_[node.prediction]
                lines.append(f"{indent}-> {label} ({node.n})")
                return
            lines.append(f"{indent}{names[node.feature]} <= {node.threshold:.4g}:")
            walk(node.left, indent + "  ", depth + 1)
            lines.append(f"{indent}{names[node.feature]} > {node.threshold:.4g}:")
            walk(node.right, indent + "  ", depth + 1)

        walk(self.root, "", 0)
        return "\n".join(lines)

"""Feature rankings (Table 4 of the paper).

Table 4 lists, per problem label and per vantage point, "the 3 metrics
with the highest prediction power".  We measure prediction power for a
label as the MDL-discretised information gain of each feature for the
one-vs-rest problem *is this instance of label L?* -- the same quantity
C4.5 optimises at the root for that label.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ml.discretize import apply_cuts, mdl_discretize


def _entropy(y: np.ndarray) -> float:
    _, counts = np.unique(y, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def _info_gain(x_disc: np.ndarray, y: np.ndarray) -> float:
    h_y = _entropy(y)
    if h_y == 0.0:
        return 0.0
    n = len(y)
    gain = h_y
    for value in np.unique(x_disc):
        mask = x_disc == value
        gain -= mask.sum() / n * _entropy(y[mask])
    return max(0.0, gain)


def info_gain_ranking(
    X: np.ndarray, y: Sequence, feature_names: Sequence[str]
) -> List[Tuple[str, float]]:
    """All features ranked by information gain against ``y``."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    scores = []
    for j, name in enumerate(feature_names):
        cuts = mdl_discretize(X[:, j], y)
        disc = apply_cuts(X[:, j], cuts)
        scores.append((name, _info_gain(disc, y)))
    scores.sort(key=lambda item: -item[1])
    return scores


def per_label_ranking(
    X: np.ndarray,
    y: Sequence,
    feature_names: Sequence[str],
    top_k: int = 3,
    positive_labels: Sequence = (),
) -> Dict[str, List[Tuple[str, float]]]:
    """Top-``k`` features for each label, one-vs-rest (Table 4)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    labels = positive_labels if len(positive_labels) else np.unique(y)
    out: Dict[str, List[Tuple[str, float]]] = {}
    for label in labels:
        binary = (y == label).astype(int)
        if binary.sum() == 0 or binary.sum() == len(binary):
            out[str(label)] = []
            continue
        ranked = info_gain_ranking(X, binary, feature_names)
        out[str(label)] = ranked[:top_k]
    return out

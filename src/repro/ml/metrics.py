"""Classification metrics: the paper's accuracy / precision / recall.

Section 5: "overall accuracy, defined as the percentage of correctly
predicted instances ... Precision is expressed by the ratio of TP over TP
and False Positives ... Recall is the ratio of TP divided by the total
instances in this class."
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np


class ConfusionMatrix:
    """Accumulating confusion matrix over a fixed label set."""

    def __init__(self, labels: Sequence) -> None:
        self.labels: List = list(labels)
        self._index = {label: i for i, label in enumerate(self.labels)}
        k = len(self.labels)
        self.matrix = np.zeros((k, k), dtype=np.int64)

    def update(self, y_true: Iterable, y_pred: Iterable) -> None:
        for t, p in zip(y_true, y_pred):
            ti = self._index.get(t)
            pi = self._index.get(p)
            if ti is None:
                raise KeyError(f"unknown true label {t!r}")
            if pi is None:
                raise KeyError(f"unknown predicted label {p!r}")
            self.matrix[ti, pi] += 1

    # -- scalar metrics -------------------------------------------------------

    @property
    def total(self) -> int:
        return int(self.matrix.sum())

    @property
    def accuracy(self) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return float(np.trace(self.matrix)) / total

    def precision(self, label: object) -> float:
        i = self._index[label]
        predicted = self.matrix[:, i].sum()
        if predicted == 0:
            return 0.0
        return float(self.matrix[i, i]) / float(predicted)

    def recall(self, label: object) -> float:
        i = self._index[label]
        actual = self.matrix[i, :].sum()
        if actual == 0:
            return 0.0
        return float(self.matrix[i, i]) / float(actual)

    def f1(self, label: object) -> float:
        p = self.precision(label)
        r = self.recall(label)
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    def support(self, label: object) -> int:
        return int(self.matrix[self._index[label], :].sum())

    # -- aggregates ------------------------------------------------------------

    def per_class(self) -> Dict:
        return {
            label: {
                "precision": self.precision(label),
                "recall": self.recall(label),
                "f1": self.f1(label),
                "support": self.support(label),
            }
            for label in self.labels
        }

    def macro_precision(self) -> float:
        present = [l for l in self.labels if self.support(l) > 0]
        if not present:
            return 0.0
        return sum(self.precision(l) for l in present) / len(present)

    def macro_recall(self) -> float:
        present = [l for l in self.labels if self.support(l) > 0]
        if not present:
            return 0.0
        return sum(self.recall(l) for l in present) / len(present)

    def weighted_precision(self) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return sum(
            self.precision(l) * self.support(l) for l in self.labels
        ) / total

    def weighted_recall(self) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return sum(self.recall(l) * self.support(l) for l in self.labels) / total

    def to_text(self) -> str:
        width = max(len(str(l)) for l in self.labels) + 2
        header = " " * width + "".join(f"{str(l)[:10]:>11}" for l in self.labels)
        rows = [header]
        for i, label in enumerate(self.labels):
            cells = "".join(f"{self.matrix[i, j]:>11}" for j in range(len(self.labels)))
            rows.append(f"{str(label):<{width}}{cells}")
        return "\n".join(rows)

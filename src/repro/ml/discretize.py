"""Fayyad-Irani MDL entropy-based discretisation.

Recursively picks the cut point minimising class entropy and accepts it
only if the information gain beats the Minimum Description Length
criterion (Fayyad & Irani 1993).  Used to discretise the continuous probe
metrics before computing symmetrical uncertainty for FCBF, which is how
Weka's FCBF-style filters operate.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np


def _entropy_from_counts(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def _best_cut(
    sorted_vals: np.ndarray, one_hot: np.ndarray
) -> Optional[Tuple[int, float]]:
    """Best boundary cut by class-entropy; returns (index, gain, stats).

    ``one_hot`` is (n, k) of class indicators aligned with ``sorted_vals``.
    Candidate cuts are positions where the value changes (midpoint rule).
    """
    n = len(sorted_vals)
    if n < 4:
        return None
    total_counts = one_hot.sum(axis=0)
    parent_entropy = _entropy_from_counts(total_counts)
    left_counts = np.cumsum(one_hot, axis=0)  # counts up to and incl. i
    # Candidates: i such that value[i] != value[i+1]  (cut between them).
    change = np.nonzero(sorted_vals[:-1] != sorted_vals[1:])[0]
    if len(change) == 0:
        return None
    lc = left_counts[change]
    rc = total_counts - lc
    ln = lc.sum(axis=1)
    rn = rc.sum(axis=1)

    def ent(counts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            p = counts / sizes[:, None]
            logp = np.where(p > 0, np.log2(np.where(p > 0, p, 1.0)), 0.0)
        return -(p * logp).sum(axis=1)

    e_left = ent(lc, ln)
    e_right = ent(rc, rn)
    weighted = (ln * e_left + rn * e_right) / n
    gains = parent_entropy - weighted
    best = int(np.argmax(gains))
    idx = int(change[best])
    gain = float(gains[best])
    # MDL acceptance test.
    k = int((total_counts > 0).sum())
    k1 = int((lc[best] > 0).sum())
    k2 = int((rc[best] > 0).sum())
    e1 = float(e_left[best])
    e2 = float(e_right[best])
    delta = (
        math.log2(max(1.0, 3.0**k - 2.0))
        - (k * parent_entropy - k1 * e1 - k2 * e2)
    )
    threshold = (math.log2(n - 1) + delta) / n
    if gain <= threshold:
        return None
    return idx, gain


def mdl_discretize(
    values: np.ndarray, labels: np.ndarray, max_cuts: int = 32
) -> List[float]:
    """Return the sorted cut points for ``values`` against ``labels``.

    An empty list means the attribute carries no MDL-significant
    information about the class (FCBF will then drop it).
    """
    values = np.asarray(values, dtype=float)
    labels = np.asarray(labels)
    classes, y = np.unique(labels, return_inverse=True)
    one_hot = np.zeros((len(y), len(classes)), dtype=np.int64)
    one_hot[np.arange(len(y)), y] = 1
    order = np.argsort(values, kind="mergesort")
    sorted_vals = values[order]
    sorted_hot = one_hot[order]
    cuts: List[float] = []

    def recurse(lo: int, hi: int) -> None:
        if len(cuts) >= max_cuts or hi - lo < 4:
            return
        found = _best_cut(sorted_vals[lo:hi], sorted_hot[lo:hi])
        if found is None:
            return
        idx, _gain = found
        cut_value = (sorted_vals[lo + idx] + sorted_vals[lo + idx + 1]) / 2.0
        cuts.append(cut_value)
        recurse(lo, lo + idx + 1)
        recurse(lo + idx + 1, hi)

    recurse(0, len(sorted_vals))
    return sorted(cuts)


def apply_cuts(values: np.ndarray, cuts: List[float]) -> np.ndarray:
    """Map continuous values to bin indices defined by ``cuts``."""
    if not cuts:
        return np.zeros(len(values), dtype=np.int64)
    # A value equal to a cut belongs to the lower bin (cuts are "<= cut").
    return np.searchsorted(np.asarray(cuts, dtype=float), values, side="left")

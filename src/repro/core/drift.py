"""Training-data drift detection.

Section 6 observes that "smaller differences in the detection of some
problems emphasize the importance of continuous training".  Knowing *when*
to retrain requires noticing that live traffic no longer looks like the
training distribution.  :class:`DriftMonitor` fits per-feature empirical
distributions on the training dataset (restricted to the features the
model actually uses) and scores new batches with a two-sample
Kolmogorov-Smirnov statistic; features whose KS distance exceeds a
threshold are reported as drifted, and the aggregate share of drifted
features gates a retrain recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov distance in [0, 1]."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if len(a) == 0 or len(b) == 0:
        return 0.0
    values = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, values, side="right") / len(a)
    cdf_b = np.searchsorted(b, values, side="right") / len(b)
    return float(np.abs(cdf_a - cdf_b).max())


@dataclass
class DriftReport:
    """Outcome of scoring one batch against the training distribution."""

    per_feature: Dict[str, float] = field(default_factory=dict)
    threshold: float = 0.35
    retrain_share: float = 0.3

    @property
    def drifted(self) -> List[str]:
        return sorted(
            (name for name, ks in self.per_feature.items()
             if ks > self.threshold),
            key=lambda n: -self.per_feature[n],
        )

    @property
    def drift_share(self) -> float:
        if not self.per_feature:
            return 0.0
        return len(self.drifted) / len(self.per_feature)

    @property
    def should_retrain(self) -> bool:
        return self.drift_share >= self.retrain_share

    def to_text(self) -> str:
        lines = ["== Drift report =="]
        lines.append(f"features monitored: {len(self.per_feature)}; "
                     f"drifted: {len(self.drifted)} "
                     f"({self.drift_share * 100:.0f}%)")
        lines.append(f"retrain recommended: {self.should_retrain}")
        for name in self.drifted[:8]:
            lines.append(f"  {name:<44} KS={self.per_feature[name]:.2f}")
        return "\n".join(lines)


class DriftMonitor:
    """Compares live feature batches against a training reference."""

    def __init__(
        self,
        features: Optional[Sequence[str]] = None,
        threshold: float = 0.35,
        retrain_share: float = 0.3,
    ) -> None:
        self.feature_names = list(features) if features else None
        self.threshold = threshold
        self.retrain_share = retrain_share
        self._reference: Dict[str, np.ndarray] = {}
        self.fitted = False

    def fit(self, dataset: Dataset) -> "DriftMonitor":
        names = self.feature_names or dataset.feature_names
        matrix = dataset.to_matrix(names)
        self._reference = {
            name: matrix[:, j].copy() for j, name in enumerate(names)
        }
        self.feature_names = list(names)
        self.fitted = True
        return self

    def score(self, batch: Dataset) -> DriftReport:
        """KS distance of every monitored feature for ``batch``."""
        if not self.fitted:
            raise RuntimeError("monitor must be fit first")
        matrix = batch.to_matrix(self.feature_names)
        report = DriftReport(threshold=self.threshold,
                             retrain_share=self.retrain_share)
        for j, name in enumerate(self.feature_names):
            report.per_feature[name] = ks_statistic(
                self._reference[name], matrix[:, j]
            )
        return report

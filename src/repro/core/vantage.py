"""Vantage-point scoping of the feature space.

Every feature name is prefixed ``<vp>_<layer>_...`` by the testbed probe
assembly; restricting the model to a VP subset is therefore a column
filter.  This realises the paper's deployment matrix: "each entity with a
deployed probe [can] diagnose problems ... separately without requiring
information from other contributors" (Section 3.1).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

ALL_VPS: Tuple[str, ...] = ("mobile", "router", "server")

#: the VP combinations evaluated in the paper's figures
STANDARD_COMBOS = (
    ("mobile",),
    ("router",),
    ("server",),
    ("mobile", "router", "server"),
)


def vp_of_feature(name: str) -> str:
    """The vantage point owning a feature (its name prefix)."""
    vp = name.split("_", 1)[0]
    if vp not in ALL_VPS:
        raise ValueError(f"feature {name!r} has no vantage-point prefix")
    return vp


def layer_of_feature(name: str) -> str:
    """The probe layer: tcp / hw / radio / link variants."""
    parts = name.split("_", 2)
    if len(parts) < 2:
        raise ValueError(f"feature {name!r} has no layer component")
    return parts[1]


def features_for_vps(names: Sequence[str], vps: Sequence[str]) -> List[str]:
    """Subset of ``names`` observable by the given vantage points."""
    wanted = set(vps)
    unknown = wanted - set(ALL_VPS)
    if unknown:
        raise ValueError(f"unknown vantage points: {sorted(unknown)}")
    return [n for n in names if vp_of_feature(n) in wanted]


def combo_name(vps: Sequence[str]) -> str:
    if set(vps) == set(ALL_VPS):
        return "combined"
    return "+".join(vps)

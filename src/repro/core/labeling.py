"""Label derivation helpers (Section 4.4).

The severity label always comes from the MOS (good > 3, mild in [2, 3],
severe < 2); the location and exact labels combine the injected fault with
that severity.  The testbed computes these on each
:class:`~repro.testbed.testbed.SessionRecord`; this module provides the
vocabulary and array helpers used by the evaluation code.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.dataset import Dataset
from repro.faults.base import FAULT_NAMES

#: the three classification tasks, plus the binary task of Section 6.2
LABEL_KINDS = ("severity", "location", "exact", "existence")

SEVERITIES = ("good", "mild", "severe")
LOCATIONS = ("mobile", "lan", "wan")


def exact_label_vocabulary() -> List[str]:
    """All labels of the exact-problem task (Figure 4)."""
    labels = ["good"]
    for fault in FAULT_NAMES:
        for severity in ("mild", "severe"):
            labels.append(f"{fault}_{severity}")
    return labels


def location_label_vocabulary() -> List[str]:
    labels = ["good"]
    for location in LOCATIONS:
        for severity in ("mild", "severe"):
            labels.append(f"{location}_{severity}")
    return labels


def label_array(dataset: Dataset, kind: str) -> np.ndarray:
    if kind not in LABEL_KINDS:
        raise ValueError(f"unknown label kind {kind!r}; expected {LABEL_KINDS}")
    return dataset.labels(kind)


def collapse_to_existence(labels: np.ndarray) -> np.ndarray:
    """Any non-good label becomes 'problematic' (Section 6.2 task)."""
    return np.where(labels == "good", "good", "problematic")

"""Feature Selection (Section 3.2): FCBF over the constructed features.

The paper reduces 354 features to the 22 of Table 1 with the Fast
Correlation-Based Filter.  :class:`FeatureSelector` runs FCBF against a
chosen label task and remembers the surviving feature names, so the same
selection can be applied to transfer datasets (Section 6 uses the
lab-selected features in the wild).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.dataset import Dataset
from repro.ml.fcbf import fcbf
from repro.obs.telemetry import get_telemetry


class FeatureSelector:
    """FCBF wrapper bound to a label kind."""

    def __init__(self, delta: float = 0.01, max_features: Optional[int] = None) -> None:
        self.delta = delta
        self.max_features = max_features
        self.selected_: List[str] = []
        self.su_map_: Dict[str, float] = {}

    def fit(
        self,
        dataset: Dataset,
        label_kind: str = "exact",
        feature_names: Optional[Sequence[str]] = None,
    ) -> "FeatureSelector":
        names = list(feature_names) if feature_names is not None else dataset.feature_names
        X = dataset.to_matrix(names)
        y = dataset.labels(label_kind)
        tel = get_telemetry()
        with tel.span(
            "ml.fcbf.select", task=label_kind, candidates=len(names)
        ) as span:
            indices, su_map = fcbf(X, y, delta=self.delta, feature_names=names)
            span.count("selected", len(indices))
        selected = [names[j] for j in indices]
        if self.max_features is not None:
            selected = selected[: self.max_features]
        self.selected_ = selected
        self.su_map_ = su_map
        return self

    @property
    def selected(self) -> List[str]:
        if not self.selected_:
            raise RuntimeError("selector has not been fit")
        return list(self.selected_)

    def ranked_su(self, top: Optional[int] = None) -> List:
        """(feature, SU-with-class) sorted descending."""
        ranked = sorted(self.su_map_.items(), key=lambda item: -item[1])
        return ranked[:top] if top else ranked

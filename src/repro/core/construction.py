"""Feature Construction (Section 3.2).

Makes the feature space "agnostic to the specifics of each scenario, i.e.
video type, streaming techniques and network technology":

* every per-flow byte/packet counter is normalised by the flow's total
  bytes/packets at the same vantage point (``*_norm`` features);
* NIC send/receive rates are divided by the maximum rate observed for that
  NIC in the entire dataset, yielding utilisations in [0, 1]
  (``*_util`` features) -- this is a dataset-level fit, exactly as the
  paper describes;
* flow duration is normalised by the video-session duration.

The constructor is fit on a training dataset and can then transform any
instance (including live ones at diagnosis time).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.dataset import Dataset, Instance

#: tstat counters normalised by total packets of the same direction
_PKT_COUNTERS = (
    "data_pkts",
    "retx_pkts",
    "ooo_pkts",
    "reordered_pkts",
    "pure_acks",
    "dup_acks",
    "sack_acks",
)
#: tstat counters normalised by total bytes of the same direction
_BYTE_COUNTERS = ("data_bytes", "retx_bytes", "unique_bytes")

#: link-probe rate features turned into utilisations
_RATE_SUFFIXES = ("tx_rate", "rx_rate")


class FeatureConstructor:
    """Adds the paper's constructed features to every instance."""

    def __init__(self):
        self._nic_max_rates: Dict[str, float] = {}
        self.fitted = False

    # ------------------------------------------------------------------- fit

    def fit(self, dataset: Dataset) -> "FeatureConstructor":
        """Learn per-NIC maximum rates over the whole dataset."""
        maxima: Dict[str, float] = {}
        for inst in dataset:
            for name, value in inst.features.items():
                if name.endswith(_RATE_SUFFIXES):
                    if value > maxima.get(name, 0.0):
                        maxima[name] = value
        self._nic_max_rates = maxima
        self.fitted = True
        return self

    # -------------------------------------------------------------- transform

    def transform_features(self, features: Dict[str, float]) -> Dict[str, float]:
        """Return ``features`` plus the constructed ones."""
        if not self.fitted:
            raise RuntimeError("constructor must be fit before transform")
        out = dict(features)

        # -- per-direction count normalisation ------------------------------
        for name, value in features.items():
            if "_tcp_" not in name:
                continue
            for direction in ("c2s", "s2c"):
                tag = f"_{direction}_"
                if tag not in name:
                    continue
                prefix = name.split(tag)[0]  # e.g. "mobile_tcp"
                suffix = name.split(tag)[1]
                if suffix in _PKT_COUNTERS:
                    total = features.get(f"{prefix}_{direction}_pkts", 0.0)
                    out[f"{name}_norm"] = value / total if total > 0 else 0.0
                elif suffix in _BYTE_COUNTERS:
                    total = features.get(f"{prefix}_{direction}_bytes", 0.0)
                    out[f"{name}_norm"] = value / total if total > 0 else 0.0

        # -- NIC utilisation --------------------------------------------------
        for name, max_rate in self._nic_max_rates.items():
            if name in features and max_rate > 0:
                out[f"{name[:-5]}_util"] = min(1.0, features[name] / max_rate)

        return out

    def transform_instance(self, inst: Instance, session_s: Optional[float] = None) -> Instance:
        features = self.transform_features(inst.features)
        session = session_s or float(inst.meta.get("session_s", 0.0) or 0.0)
        if session > 0:
            for vp in ("mobile", "router", "server"):
                key = f"{vp}_tcp_flow_duration"
                if key in features:
                    features[f"{key}_norm"] = features[key] / session
        return Instance(
            features=features,
            labels=dict(inst.labels),
            mos=inst.mos,
            app_metrics=dict(inst.app_metrics),
            meta=dict(inst.meta),
        )

    def transform(self, dataset: Dataset) -> Dataset:
        return Dataset([self.transform_instance(inst) for inst in dataset])

    def fit_transform(self, dataset: Dataset) -> Dataset:
        return self.fit(dataset).transform(dataset)

    # -- introspection -----------------------------------------------------

    @property
    def nic_max_rates(self) -> Dict[str, float]:
        return dict(self._nic_max_rates)

    def constructed_names(self, base_names: Sequence[str]) -> List[str]:
        """Names this constructor would add given raw ``base_names``."""
        sample = {name: 1.0 for name in base_names}
        return [n for n in self.transform_features(sample) if n not in sample]

"""Feature Construction (Section 3.2).

Makes the feature space "agnostic to the specifics of each scenario, i.e.
video type, streaming techniques and network technology":

* every per-flow byte/packet counter is normalised by the flow's total
  bytes/packets at the same vantage point (``*_norm`` features);
* NIC send/receive rates are divided by the maximum rate observed for that
  NIC in the entire dataset, yielding utilisations in [0, 1]
  (``*_util`` features) -- this is a dataset-level fit, exactly as the
  paper describes;
* flow duration is normalised by the video-session duration.

The constructor is fit on a training dataset and can then transform any
instance (including live ones at diagnosis time).
"""

from __future__ import annotations

import itertools
import warnings
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.core.dataset import Dataset, Instance
from repro.schemas import FC_STATE_V1

#: tstat counters normalised by total packets of the same direction
_PKT_COUNTERS = (
    "data_pkts",
    "retx_pkts",
    "ooo_pkts",
    "reordered_pkts",
    "pure_acks",
    "dup_acks",
    "sack_acks",
)
#: tstat counters normalised by total bytes of the same direction
_BYTE_COUNTERS = ("data_bytes", "retx_bytes", "unique_bytes")

#: link-probe rate features turned into utilisations
_RATE_SUFFIXES = ("tx_rate", "rx_rate")

#: vantage points whose flow duration is normalised by session duration
_FLOW_DURATION_VPS = ("mobile", "router", "server")


class FeatureConstructor:
    """Adds the paper's constructed features to every instance."""

    def __init__(self) -> None:
        self._nic_max_rates: Dict[str, float] = {}
        self.fitted = False
        #: missing-feature sets already warned about, keyed by the sorted
        #: tuple of names — each *distinct* missing set warns exactly once
        self._warned_zero_fill: Set[Tuple[str, ...]] = set()

    # ------------------------------------------------------------------- fit

    def fit(self, dataset: Dataset) -> "FeatureConstructor":
        """Learn per-NIC maximum rates over the whole dataset."""
        return self.fit_stream(dataset)

    def fit_stream(
        self, instances: Iterable[Union[Instance, Dict[str, float]]]
    ) -> "FeatureConstructor":
        """Single-pass fit over any stream of instances or feature dicts.

        The only fitted state is a running per-NIC maximum, which is
        associative — so a streaming fit is *exactly* the batch fit, and
        the stream is never materialized.  Repeated calls keep folding
        new data into the same maxima (continuous-training style).
        """
        maxima = self._nic_max_rates if self.fitted else {}
        for inst in instances:
            features = inst.features if isinstance(inst, Instance) else inst
            for name, value in features.items():
                if name.endswith(_RATE_SUFFIXES):
                    if value > maxima.get(name, 0.0):
                        maxima[name] = value
        self._nic_max_rates = maxima
        self.fitted = True
        return self

    # -------------------------------------------------------------- transform

    def transform_features(self, features: Dict[str, float]) -> Dict[str, float]:
        """Return ``features`` plus the constructed ones."""
        if not self.fitted:
            raise RuntimeError("constructor must be fit before transform")
        out = dict(features)

        # -- per-direction count normalisation ------------------------------
        for name, value in features.items():
            if "_tcp_" not in name:
                continue
            for direction in ("c2s", "s2c"):
                tag = f"_{direction}_"
                if tag not in name:
                    continue
                prefix = name.split(tag)[0]  # e.g. "mobile_tcp"
                suffix = name.split(tag)[1]
                if suffix in _PKT_COUNTERS:
                    total = features.get(f"{prefix}_{direction}_pkts", 0.0)
                    out[f"{name}_norm"] = value / total if total > 0 else 0.0
                elif suffix in _BYTE_COUNTERS:
                    total = features.get(f"{prefix}_{direction}_bytes", 0.0)
                    out[f"{name}_norm"] = value / total if total > 0 else 0.0

        # -- NIC utilisation --------------------------------------------------
        for name, max_rate in self._nic_max_rates.items():
            if name in features and max_rate > 0:
                out[f"{name[:-5]}_util"] = min(1.0, features[name] / max_rate)

        return out

    def transform_rows(
        self,
        rows: Sequence[Dict[str, float]],
        session_s: Optional[Sequence[float]] = None,
    ) -> Tuple[np.ndarray, List[str]]:
        """Vectorized construction over a batch of raw feature dicts.

        Returns ``(matrix, names)`` where ``matrix`` is a dense ``(n, f)``
        array holding the raw features plus every constructed one, and
        ``names`` labels the columns.  Missing raw features are zero-filled,
        which matches the zero-default lookup the diagnosis path applies to
        single dicts, so batch and per-dict construction agree feature for
        feature.  The first time a batch zero-fills anything, a
        ``RuntimeWarning`` lists the affected feature names — a typo'd or
        renamed metric must not silently become a column of zeros.

        ``session_s`` optionally gives the video-session duration per row;
        rows with a positive duration gain the ``*_tcp_flow_duration_norm``
        features, exactly as :meth:`transform_instance` does.
        """
        if not self.fitted:
            raise RuntimeError("constructor must be fit before transform")
        rows = list(rows)
        n = len(rows)
        if n == 0:
            return np.zeros((0, 0)), []

        # -- gather the raw matrix ------------------------------------------
        zero_filled: set = set()
        first_keys = tuple(rows[0])
        if all(map(first_keys.__eq__, map(tuple, rows))):
            # homogeneous batch (the common fleet case): one C-level copy
            names = list(first_keys)
            flat = np.fromiter(
                itertools.chain.from_iterable(row.values() for row in rows),
                dtype=float,
                count=n * len(names),
            )
            base = flat.reshape(n, len(names))
        else:
            name_set = set()
            for row in rows:
                name_set.update(row)
            names = sorted(name_set)
            index = {name: j for j, name in enumerate(names)}
            base = np.zeros((n, len(names)))
            for i, row in enumerate(rows):
                for name, value in row.items():
                    base[i, index[name]] = value
                if len(row) != len(names):
                    zero_filled.update(name_set.difference(row))
        col = {name: j for j, name in enumerate(names)}

        constructed: List[Tuple[str, np.ndarray]] = []

        def emit(name: str, values: np.ndarray) -> None:
            if name in col:
                base[:, col[name]] = values
            else:
                constructed.append((name, values))

        # -- per-direction count normalisation ------------------------------
        for name in list(names):
            if "_tcp_" not in name:
                continue
            for direction in ("c2s", "s2c"):
                tag = f"_{direction}_"
                if tag not in name:
                    continue
                prefix, suffix = name.split(tag, 1)
                if suffix in _PKT_COUNTERS:
                    total_name = f"{prefix}_{direction}_pkts"
                elif suffix in _BYTE_COUNTERS:
                    total_name = f"{prefix}_{direction}_bytes"
                else:
                    continue
                values = base[:, col[name]]
                if total_name in col:
                    total = base[:, col[total_name]]
                    with np.errstate(divide="ignore", invalid="ignore"):
                        norm = np.where(total > 0, values / np.where(total > 0, total, 1.0), 0.0)
                else:
                    zero_filled.add(total_name)
                    norm = np.zeros(n)
                emit(f"{name}_norm", norm)

        # -- NIC utilisation -------------------------------------------------
        for name, max_rate in self._nic_max_rates.items():
            if name in col and max_rate > 0:
                util = np.minimum(1.0, base[:, col[name]] / max_rate)
                emit(f"{name[:-5]}_util", util)

        # -- flow duration over session duration ----------------------------
        if session_s is not None:
            sess = np.asarray(list(session_s), dtype=float)
            if sess.shape != (n,):
                raise ValueError("session_s must have one entry per row")
            positive = sess > 0
            safe = np.where(positive, sess, 1.0)
            for vp in _FLOW_DURATION_VPS:
                key = f"{vp}_tcp_flow_duration"
                if key in col:
                    norm = np.where(positive, base[:, col[key]] / safe, 0.0)
                    emit(f"{key}_norm", norm)

        if constructed:
            extra = np.column_stack([values for _name, values in constructed])
            matrix = np.concatenate([base, extra], axis=1)
            names = names + [name for name, _values in constructed]
        else:
            matrix = base
        if zero_filled:
            # getattr/isinstance: constructors revived from older pickles
            # predate the flag or carry its boolean predecessor.
            warned = getattr(self, "_warned_zero_fill", None)
            if not isinstance(warned, set):
                warned = set()
            self._warned_zero_fill = warned
            missing = tuple(sorted(zero_filled))
            if missing not in warned:
                warned.add(missing)
                warnings.warn(
                    "transform_rows zero-filled features missing from the "
                    f"input rows: {list(missing)}; check the metric names "
                    "against the probe schema (repro lint rule M201)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return matrix, names

    def transform_rows_stream(
        self,
        rows: Iterable[Dict[str, float]],
        session_s: Optional[Iterable[float]] = None,
        chunk: int = 256,
    ) -> Iterator[Tuple[np.ndarray, List[str]]]:
        """Chunked streaming form of :meth:`transform_rows`.

        Yields one ``(matrix, names)`` pair per chunk of up to ``chunk``
        rows, holding only the current chunk in memory.  Construction is
        row-local, so for a homogeneous stream (every row carries the
        same feature names — the fleet case) concatenating the chunk
        matrices reproduces the one-shot :meth:`transform_rows` output
        bit for bit.
        """
        from repro.pipeline.stages import chunked

        if session_s is None:
            for batch in chunked(rows, chunk):
                yield self.transform_rows(batch)
        else:
            paired = zip(rows, session_s)
            for pairs in chunked(paired, chunk):
                batch = [row for row, _s in pairs]
                durations = [s for _row, s in pairs]
                yield self.transform_rows(batch, session_s=durations)

    def transform_instance(self, inst: Instance, session_s: Optional[float] = None) -> Instance:
        features = self.transform_features(inst.features)
        session = session_s or float(inst.meta.get("session_s", 0.0) or 0.0)
        if session > 0:
            for vp in _FLOW_DURATION_VPS:
                key = f"{vp}_tcp_flow_duration"
                if key in features:
                    features[f"{key}_norm"] = features[key] / session
        return Instance(
            features=features,
            labels=dict(inst.labels),
            mos=inst.mos,
            app_metrics=dict(inst.app_metrics),
            meta=dict(inst.meta),
        )

    def transform(self, dataset: Dataset) -> Dataset:
        return Dataset([self.transform_instance(inst) for inst in dataset])

    def fit_transform(self, dataset: Dataset) -> Dataset:
        return self.fit(dataset).transform(dataset)

    # -- persistence -------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-safe snapshot of the fitted construction state.

        The state is independent of how the training campaign was executed
        (serial or parallel): it only records the dataset-level per-NIC
        maxima the transform needs.
        """
        if not self.fitted:
            raise RuntimeError("constructor must be fit before exporting state")
        return {
            "format": FC_STATE_V1,
            "nic_max_rates": {k: float(v) for k, v in self._nic_max_rates.items()},
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "FeatureConstructor":
        """Rebuild a fitted constructor from :meth:`to_state` output."""
        if state.get("format") != FC_STATE_V1:
            raise ValueError("not a repro feature-constructor state")
        constructor = cls()
        constructor._nic_max_rates = {
            str(k): float(v) for k, v in dict(state["nic_max_rates"]).items()
        }
        constructor.fitted = True
        return constructor

    # -- introspection -----------------------------------------------------

    @property
    def nic_max_rates(self) -> Dict[str, float]:
        return dict(self._nic_max_rates)

    def constructed_names(self, base_names: Sequence[str]) -> List[str]:
        """Names this constructor would add given raw ``base_names``."""
        sample = {name: 1.0 for name in base_names}
        return [n for n in self.transform_features(sample) if n not in sample]

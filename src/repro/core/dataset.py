"""Labelled instances and dataset assembly."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set

import numpy as np


@dataclass
class Instance:
    """One video session: feature vector plus ground truth.

    ``labels`` holds the three tasks of the paper: ``severity``
    (good/mild/severe, Section 5.1), ``location`` (Section 5.2) and
    ``exact`` (Section 5.3).  Application-layer metrics live in
    ``app_metrics`` and are never part of ``features``.
    """

    features: Dict[str, float]
    labels: Dict[str, str]
    mos: float = 0.0
    app_metrics: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def label(self, kind: str) -> str:
        return self.labels[kind]

    @classmethod
    def from_record(cls, record: object) -> "Instance":
        """The canonical SessionRecord -> Instance conversion.

        Shared by batch assembly (:meth:`Dataset.from_records`) and the
        streaming pipeline's instance stage, so the mapping from records
        to labelled instances exists in exactly one place.
        """
        severity = record.severity_label  # type: ignore[attr-defined]
        return cls(
            features=dict(record.features),  # type: ignore[attr-defined]
            labels={
                "severity": severity,
                "location": record.location_label,  # type: ignore[attr-defined]
                "exact": record.exact_label,  # type: ignore[attr-defined]
                "existence": "good" if severity == "good" else "problematic",
            },
            mos=record.mos,  # type: ignore[attr-defined]
            app_metrics=dict(record.app_metrics),  # type: ignore[attr-defined]
            meta=dict(record.meta),  # type: ignore[attr-defined]
        )


class Dataset:
    """A list of instances with a consistent feature-name universe."""

    def __init__(self, instances: Iterable[Instance]) -> None:
        # Single pass: materialize and union feature names together, so
        # plain iterators/generators are valid input and the stream is
        # walked exactly once.
        self.instances: List[Instance] = []
        names: Set[str] = set()
        for inst in instances:
            self.instances.append(inst)
            names.update(inst.features)
        self.feature_names: List[str] = sorted(names)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable) -> "Dataset":
        """Build from :class:`repro.testbed.testbed.SessionRecord` objects.

        ``records`` may be any iterable, including a lazy campaign
        iterator: it is consumed in a single streaming pass.
        """
        return cls(Instance.from_record(record) for record in records)

    @classmethod
    def from_parts(
        cls, instances: List[Instance], feature_names: Iterable[str]
    ) -> "Dataset":
        """Assemble from already-collected parts without re-walking.

        Trusted constructor for :class:`DatasetBuilder`; ``feature_names``
        must cover every feature of ``instances``.
        """
        dataset = cls.__new__(cls)
        dataset.instances = instances
        dataset.feature_names = sorted(set(feature_names))
        return dataset

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self.instances)

    def __getitem__(self, index: int) -> Instance:
        return self.instances[index]

    def labels(self, kind: str) -> np.ndarray:
        return np.array([inst.label(kind) for inst in self.instances])

    def to_matrix(self, feature_subset: Optional[Sequence[str]] = None) -> np.ndarray:
        """Dense (n, f) matrix; missing features are zero-filled."""
        names = list(feature_subset) if feature_subset is not None else self.feature_names
        out = np.zeros((len(self.instances), len(names)))
        for i, inst in enumerate(self.instances):
            feats = inst.features
            for j, name in enumerate(names):
                out[i, j] = feats.get(name, 0.0)
        return out

    def filter(self, predicate: Callable[[Instance], bool]) -> "Dataset":
        return Dataset([inst for inst in self.instances if predicate(inst)])

    def label_counts(self, kind: str) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for inst in self.instances:
            label = inst.label(kind)
            counts[label] = counts.get(label, 0) + 1
        return dict(sorted(counts.items()))

    def merged_with(self, other: "Dataset") -> "Dataset":
        return Dataset(self.instances + other.instances)


class DatasetBuilder:
    """Incremental, single-pass dataset assembly for streaming flows.

    Instances are added one at a time while the feature-name universe is
    unioned on the fly; :meth:`build` hands both to :class:`Dataset`
    without another walk over the data.  The builder is the dataset-side
    half of the constant-memory pipeline: upstream stages never need to
    materialize the record stream to construct a dataset at the end.
    """

    def __init__(self) -> None:
        self._instances: List[Instance] = []
        self._names: Set[str] = set()

    def __len__(self) -> int:
        return len(self._instances)

    def add(self, instance: Instance) -> None:
        self._instances.append(instance)
        self._names.update(instance.features)

    def add_record(self, record: object) -> None:
        """Convert a :class:`SessionRecord` and add it."""
        self.add(Instance.from_record(record))

    def build(self) -> Dataset:
        """The assembled dataset; the builder can keep accumulating."""
        return Dataset.from_parts(list(self._instances), self._names)

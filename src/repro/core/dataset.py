"""Labelled instances and dataset assembly."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np


@dataclass
class Instance:
    """One video session: feature vector plus ground truth.

    ``labels`` holds the three tasks of the paper: ``severity``
    (good/mild/severe, Section 5.1), ``location`` (Section 5.2) and
    ``exact`` (Section 5.3).  Application-layer metrics live in
    ``app_metrics`` and are never part of ``features``.
    """

    features: Dict[str, float]
    labels: Dict[str, str]
    mos: float = 0.0
    app_metrics: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def label(self, kind: str) -> str:
        return self.labels[kind]


class Dataset:
    """A list of instances with a consistent feature-name universe."""

    def __init__(self, instances: Sequence[Instance]) -> None:
        self.instances: List[Instance] = list(instances)
        names = set()
        for inst in self.instances:
            names.update(inst.features)
        self.feature_names: List[str] = sorted(names)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable) -> "Dataset":
        """Build from :class:`repro.testbed.testbed.SessionRecord` objects."""
        instances = []
        for record in records:
            instances.append(
                Instance(
                    features=dict(record.features),
                    labels={
                        "severity": record.severity_label,
                        "location": record.location_label,
                        "exact": record.exact_label,
                        "existence": (
                            "good" if record.severity_label == "good" else "problematic"
                        ),
                    },
                    mos=record.mos,
                    app_metrics=dict(record.app_metrics),
                    meta=dict(record.meta),
                )
            )
        return cls(instances)

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self.instances)

    def __getitem__(self, index: int) -> Instance:
        return self.instances[index]

    def labels(self, kind: str) -> np.ndarray:
        return np.array([inst.label(kind) for inst in self.instances])

    def to_matrix(self, feature_subset: Optional[Sequence[str]] = None) -> np.ndarray:
        """Dense (n, f) matrix; missing features are zero-filled."""
        names = list(feature_subset) if feature_subset is not None else self.feature_names
        out = np.zeros((len(self.instances), len(names)))
        for i, inst in enumerate(self.instances):
            feats = inst.features
            for j, name in enumerate(names):
                out[i, j] = feats.get(name, 0.0)
        return out

    def filter(self, predicate: Callable[[Instance], bool]) -> "Dataset":
        return Dataset([inst for inst in self.instances if predicate(inst)])

    def label_counts(self, kind: str) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for inst in self.instances:
            label = inst.label(kind)
            counts[label] = counts.get(label, 0) + 1
        return dict(sorted(counts.items()))

    def merged_with(self, other: "Dataset") -> "Dataset":
        return Dataset(self.instances + other.instances)

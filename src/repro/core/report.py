"""Operator-facing QoE reports.

The practical-implications section (Section 7) sketches what each entity
does with diagnoses: users troubleshoot, ISPs find problematic segments,
providers spot loaded servers and bad peerings.  This module turns a batch
of diagnosed sessions into the summary such an operator would actually
read: QoE distribution, blame-by-segment, top causes, and the worst
sessions with their evidence.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dataset import Dataset
from repro.core.diagnosis import DiagnosisReport, RootCauseAnalyzer

_SEVERITY_ORDER = {"good": 0, "mild": 1, "severe": 2}


@dataclass
class FleetReport:
    """Aggregated diagnosis of a batch of sessions."""

    n_sessions: int = 0
    severity_counts: Dict[str, int] = field(default_factory=dict)
    cause_counts: Dict[str, int] = field(default_factory=dict)
    location_counts: Dict[str, int] = field(default_factory=dict)
    mean_mos: float = 0.0
    worst: List[Tuple[int, float, DiagnosisReport]] = field(default_factory=list)
    agreement: Optional[float] = None  # vs ground truth, when available

    @property
    def problem_rate(self) -> float:
        if self.n_sessions == 0:
            return 0.0
        good = self.severity_counts.get("good", 0)
        return 1.0 - good / self.n_sessions

    def to_text(self) -> str:
        lines = ["== Fleet QoE report =="]
        lines.append(f"sessions: {self.n_sessions}   mean MOS: {self.mean_mos:.2f}   "
                     f"problem rate: {self.problem_rate * 100:.0f}%")
        lines.append("QoE: " + "  ".join(
            f"{sev}={self.severity_counts.get(sev, 0)}"
            for sev in ("good", "mild", "severe")
        ))
        if self.agreement is not None:
            lines.append(f"agreement with ground truth: {self.agreement * 100:.0f}%")
        if self.location_counts:
            lines.append("blame by segment:")
            for segment, count in sorted(self.location_counts.items(),
                                         key=lambda kv: -kv[1]):
                lines.append(f"  {segment:<10} {count}")
        if self.cause_counts:
            lines.append("top causes:")
            for cause, count in sorted(self.cause_counts.items(),
                                       key=lambda kv: -kv[1])[:6]:
                lines.append(f"  {cause:<22} {count}")
        if self.worst:
            lines.append("worst sessions:")
            for index, mos, report in self.worst:
                lines.append(f"  #{index:<5} MOS={mos:.2f}  {report.summary()}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form for JSON pipelines (``repro report --json``)."""
        return {
            "n_sessions": self.n_sessions,
            "mean_mos": self.mean_mos,
            "problem_rate": self.problem_rate,
            "severity_counts": dict(self.severity_counts),
            "cause_counts": dict(self.cause_counts),
            "location_counts": dict(self.location_counts),
            "agreement": self.agreement,
            "worst": [
                {"index": index, "mos": mos, "diagnosis": report.to_dict()}
                for index, mos, report in self.worst
            ],
        }


def fleet_report(
    analyzer: RootCauseAnalyzer,
    sessions: Dataset,
    worst_k: int = 5,
) -> FleetReport:
    """Diagnose every session (in one vectorized batch) and aggregate."""
    report = FleetReport(n_sessions=len(sessions))
    severities = Counter()
    causes = Counter()
    locations = Counter()
    scored: List[Tuple[int, float, DiagnosisReport]] = []
    agree = 0
    mos_sum = 0.0
    diagnoses = analyzer.diagnose_batch(sessions.instances)
    for index, (inst, diagnosis) in enumerate(zip(sessions, diagnoses)):
        severities[diagnosis.severity] += 1
        if diagnosis.has_problem:
            causes[diagnosis.cause] += 1
            locations[diagnosis.problem_location] += 1
        mos_sum += inst.mos
        scored.append((index, inst.mos, diagnosis))
        if diagnosis.severity == inst.label("severity"):
            agree += 1
    report.severity_counts = dict(severities)
    report.cause_counts = dict(causes)
    report.location_counts = dict(locations)
    report.mean_mos = mos_sum / max(1, len(sessions))
    report.agreement = agree / max(1, len(sessions))
    scored.sort(key=lambda item: item[1])
    report.worst = scored[:worst_k]
    return report


def segment_scorecard(reports: Sequence[DiagnosisReport]) -> Dict[str, float]:
    """Share of diagnosed problems per path segment (ISP dashboards)."""
    locations = Counter(
        r.problem_location for r in reports if r.has_problem
    )
    total = sum(locations.values())
    if total == 0:
        return {}
    return {segment: count / total for segment, count in locations.items()}

"""The paper's contribution: the multi-VP root-cause-analysis framework.

* :mod:`repro.core.dataset` -- labelled instances and matrix assembly.
* :mod:`repro.core.vantage` -- vantage-point scoping of the feature space.
* :mod:`repro.core.construction` -- Feature Construction (Section 3.2):
  session-total normalisation, NIC utilisation, duration normalisation.
* :mod:`repro.core.selection` -- Feature Selection via FCBF (Table 1).
* :mod:`repro.core.labeling` -- MOS-based labels for the three tasks
  (existence / location / exact cause).
* :mod:`repro.core.evaluation` -- the Section 5 evaluation protocol
  (10-fold CV per VP combination) and train-here/test-there transfer.
* :mod:`repro.core.diagnosis` -- :class:`RootCauseAnalyzer`, the public
  diagnose-one-session API.
"""

from repro.core.construction import FeatureConstructor
from repro.core.dataset import Dataset, Instance
from repro.core.diagnosis import DiagnosisReport, RootCauseAnalyzer
from repro.core.drift import DriftMonitor, DriftReport
from repro.core.report import FleetReport, fleet_report
from repro.core.evaluation import EvalResult, evaluate_cv, evaluate_transfer
from repro.core.labeling import LABEL_KINDS, label_array
from repro.core.selection import FeatureSelector
from repro.core.vantage import ALL_VPS, features_for_vps, vp_of_feature

__all__ = [
    "Dataset",
    "Instance",
    "FeatureConstructor",
    "FeatureSelector",
    "DiagnosisReport",
    "RootCauseAnalyzer",
    "DriftMonitor",
    "DriftReport",
    "FleetReport",
    "fleet_report",
    "EvalResult",
    "evaluate_cv",
    "evaluate_transfer",
    "LABEL_KINDS",
    "label_array",
    "ALL_VPS",
    "features_for_vps",
    "vp_of_feature",
]

"""Evaluation protocol of Sections 5 and 6.

Two modes:

* :func:`evaluate_cv` -- the controlled-experiment protocol: feature
  construction + FCBF selection on the dataset, then stratified 10-fold
  cross-validation of a C4.5 tree, per vantage-point combination.
* :func:`evaluate_transfer` -- the real-world protocol: fit everything on
  the (lab) training dataset, apply the frozen pipeline to a different
  (wild) dataset and score the predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.construction import FeatureConstructor
from repro.core.dataset import Dataset
from repro.core.selection import FeatureSelector
from repro.core.vantage import combo_name, features_for_vps
from repro.ml.cross_validation import cross_validate
from repro.ml.metrics import ConfusionMatrix
from repro.ml.tree import C45Tree


def default_model_factory() -> C45Tree:
    return C45Tree(min_leaf=2, cf=0.25)


@dataclass
class EvalResult:
    """Outcome of one evaluation run."""

    label_kind: str
    vps: Sequence[str]
    confusion: ConfusionMatrix
    selected_features: List[str] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        return self.confusion.accuracy

    @property
    def name(self) -> str:
        return combo_name(self.vps)

    def summary(self) -> str:
        lines = [
            f"[{self.name}] task={self.label_kind} "
            f"accuracy={self.accuracy:.3f} "
            f"precision={self.confusion.weighted_precision():.3f} "
            f"recall={self.confusion.weighted_recall():.3f} "
            f"({len(self.selected_features)} features)"
        ]
        for label, stats in self.confusion.per_class().items():
            if stats["support"] == 0:
                continue
            lines.append(
                f"    {label:<28} P={stats['precision']:.2f} "
                f"R={stats['recall']:.2f} n={stats['support']}"
            )
        return "\n".join(lines)


def prepare(
    dataset: Dataset,
    construct: bool = True,
) -> Dataset:
    """Apply feature construction (fit on the dataset itself)."""
    if not construct:
        return dataset
    return FeatureConstructor().fit_transform(dataset)


def evaluate_cv(
    dataset: Dataset,
    label_kind: str,
    vps: Sequence[str],
    model_factory: Callable[[], object] = default_model_factory,
    k: int = 10,
    seed: int = 0,
    construct: bool = True,
    select: bool = True,
    feature_subset: Optional[Sequence[str]] = None,
    fs_delta: float = 0.01,
) -> EvalResult:
    """FC + FS + stratified k-fold CV restricted to ``vps``.

    ``feature_subset`` (raw names) bypasses VP filtering when given -- the
    Figure 5 feature-set study uses it.
    """
    data = prepare(dataset, construct=construct)
    if feature_subset is not None:
        names = [n for n in data.feature_names if n in set(feature_subset)]
    else:
        names = features_for_vps(data.feature_names, vps)
    if select:
        selector = FeatureSelector(delta=fs_delta)
        selector.fit(data, label_kind=label_kind, feature_names=names)
        names = selector.selected or names
    X = data.to_matrix(names)
    y = data.labels(label_kind)
    cm = cross_validate(model_factory, X, y, k=k, seed=seed, feature_names=names)
    return EvalResult(
        label_kind=label_kind,
        vps=tuple(vps),
        confusion=cm,
        selected_features=list(names),
        meta={"n_instances": len(data), "k": k},
    )


def evaluate_transfer(
    train: Dataset,
    test: Dataset,
    label_kind: str,
    vps: Sequence[str],
    model_factory: Callable[[], object] = default_model_factory,
    construct: bool = True,
    select: bool = True,
    fs_delta: float = 0.01,
    test_label_kind: Optional[str] = None,
) -> EvalResult:
    """Train on ``train`` (lab), evaluate on ``test`` (real world).

    The feature constructor and the FCBF selection are fit on the training
    data only and then frozen, matching the Section 6 protocol.
    ``test_label_kind`` allows scoring a coarser task on the test side
    (e.g. exact-cause model scored on good/problematic in Section 6.2).
    """
    constructor = FeatureConstructor().fit(train) if construct else None
    train_data = constructor.transform(train) if constructor else train
    test_data = constructor.transform(test) if constructor else test

    names = features_for_vps(train_data.feature_names, vps)
    if select:
        selector = FeatureSelector(delta=fs_delta)
        selector.fit(train_data, label_kind=label_kind, feature_names=names)
        names = selector.selected or names

    model = model_factory()
    model.fit(train_data.to_matrix(names), train_data.labels(label_kind),
              feature_names=names)
    predictions = model.predict(test_data.to_matrix(names))
    truth_kind = test_label_kind or label_kind
    truth = test_data.labels(truth_kind)
    if truth_kind != label_kind:
        # Collapse fine-grained predictions onto the coarse truth labels.
        predictions = np.where(
            predictions == "good", "good", "problematic"
        ) if truth_kind == "existence" else predictions
    labels = sorted(set(truth) | set(predictions))
    cm = ConfusionMatrix(labels)
    cm.update(truth, predictions)
    return EvalResult(
        label_kind=label_kind,
        vps=tuple(vps),
        confusion=cm,
        selected_features=list(names),
        meta={
            "n_train": len(train_data),
            "n_test": len(test_data),
            "scored_as": truth_kind,
        },
    )

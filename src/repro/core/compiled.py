"""Fused columnar diagnosis: compiled batch plans for the analyzer.

``RootCauseAnalyzer.diagnose_batch`` spends almost none of its time in
the trees — profiling the object path at fleet batch sizes shows the
cost is per-row Python around them: materialising every raw *and*
constructed feature for the whole universe (~350 columns) when the
three task models consume a few dozen, the homogeneity check, the
padded-matrix copy, and per-row ``str()`` label decoding.

This module compiles, once per batch *key signature* (the tuple of
feature names the rows carry), a :class:`BatchPlan` that knows:

* which raw columns the task models actually need — gathered with one
  ``operator.itemgetter`` + ``np.fromiter`` pass over the row dicts
  instead of copying every value of every row;
* which constructed features feed the models, resolved to closed-form
  column ops (count ``*_norm``, NIC ``*_util``, flow-duration norm)
  that replay :meth:`FeatureConstructor.transform_rows` formula by
  formula — including its emission order, so a constructed name that
  shadows a raw column wins exactly as it does there;
* the compiled :class:`~repro.ml.compiled.TreePlan` and a precomputed
  label-decode table per task, so codes become report strings without
  a ``str()`` call per row.

Bit-identity is the contract: the gathered columns are the same float64
values ``transform_rows`` would produce, the formula expressions are the
same numpy expressions evaluated in the same order, and the decode
tables hold the same strings ``str(label)`` yields — so predictions and
reports are byte-identical to the object path (pinned by
``tests/ml/test_compiled_equivalence.py``).  Batches the plan cannot
prove equivalent — rows of differing lengths, a row missing a needed
metric, or a row carrying a *sensitive* name that would change a needed
column in the full transform — return ``None`` and fall back to the
reference path in ``core/diagnosis.py``.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass
from operator import itemgetter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.construction import (
    _BYTE_COUNTERS,
    _FLOW_DURATION_VPS,
    _PKT_COUNTERS,
)

#: column-op kinds a plan may execute (see :class:`_ColumnOp`)
_RAW, _NORM, _UTIL, _FLOW, _ZERO = range(5)

#: plans cached per analyzer before the oldest signatures are dropped
_MAX_PLANS = 16


@dataclass(frozen=True)
class _ColumnOp:
    """One needed feature column, resolved to a closed-form recipe.

    ``kind`` selects the formula; ``a``/``b`` index into the gathered
    raw matrix (``b`` is the normalisation total, ``-1`` when the total
    is missing and the column zero-fills); ``scale`` carries the fitted
    NIC maximum for ``_UTIL`` ops.
    """

    kind: int
    out: int
    a: int = -1
    b: int = -1
    scale: float = 0.0


@dataclass
class BatchPlan:
    """Everything needed to diagnose a homogeneous batch in one pass."""

    signature: Tuple[str, ...]
    raw_names: Tuple[str, ...]
    getter: Optional[Callable[[Dict[str, float]], object]]
    ops: Tuple[_ColumnOp, ...]
    n_slots: int
    task_slots: Dict[str, np.ndarray]
    tree_plans: Dict[str, Optional[object]]
    decoders: Dict[str, Optional[np.ndarray]]
    #: totals missing from the signature — the zero-fill warning set
    #: ``transform_rows`` would report for these rows
    missing: Tuple[str, ...]
    #: raw names absent from the signature whose presence in *any* row
    #: could change a needed column (a zero-filled norm total, a
    #: zero-filled feature itself, or a raw that would emit a
    #: constructed feature shadowing a needed one) — if a row carries
    #: one, the batch falls back to the reference path
    sensitive: Tuple[str, ...]
    needs_flow: bool

    def gather(self, rows: Sequence[Dict[str, float]]) -> Optional[np.ndarray]:
        """The needed raw columns as a float64 ``(n, len(raw_names))``.

        One C-level pass: ``itemgetter`` pulls each row's needed values
        as a tuple, ``np.fromiter`` parses the chained floats.  Raises
        ``KeyError`` when a row lacks a needed name — the caller treats
        that as "not a uniform batch" and falls back.
        """
        if self.getter is None:
            return None
        n = len(rows)
        width = len(self.raw_names)
        if width == 1:
            flat = np.fromiter(map(self.getter, rows), dtype=float, count=n)
        else:
            flat = np.fromiter(
                itertools.chain.from_iterable(map(self.getter, rows)),
                dtype=float,
                count=n * width,
            )
        return flat.reshape(n, width)

    def build_columns(
        self, rows: Sequence[Dict[str, float]], durations: Sequence[float]
    ) -> np.ndarray:
        """Evaluate every needed feature column for the batch.

        Each op replays the exact numpy expression
        :meth:`FeatureConstructor.transform_rows` uses for that
        constructed feature, on the exact same input values — so the
        resulting columns are bitwise what the full transform would
        have produced for these names.
        """
        n = len(rows)
        gathered = self.gather(rows)
        cols = np.zeros((n, self.n_slots))
        if self.needs_flow:
            sess = np.asarray(list(durations), dtype=float)
            positive = sess > 0
            safe = np.where(positive, sess, 1.0)
        for op in self.ops:
            if op.kind == _RAW:
                cols[:, op.out] = gathered[:, op.a]
            elif op.kind == _NORM:
                if op.b < 0:
                    continue  # total missing: the column zero-fills
                values = gathered[:, op.a]
                total = gathered[:, op.b]
                with np.errstate(divide="ignore", invalid="ignore"):
                    cols[:, op.out] = np.where(
                        total > 0, values / np.where(total > 0, total, 1.0), 0.0
                    )
            elif op.kind == _UTIL:
                cols[:, op.out] = np.minimum(1.0, gathered[:, op.a] / op.scale)
            elif op.kind == _FLOW:
                cols[:, op.out] = np.where(
                    positive, gathered[:, op.a] / safe, 0.0
                )
            # _ZERO: the column stays zero, like the padded zero column
        return cols


class CompiledAnalyzer:
    """Per-analyzer cache of :class:`BatchPlan` objects.

    Owned lazily by :class:`~repro.core.diagnosis.RootCauseAnalyzer`
    and rebuilt whenever the analyzer refits, so plans always reflect
    the live models, selected features and constructor state.
    """

    def __init__(self, analyzer: object) -> None:
        self.analyzer = analyzer
        self._plans: Dict[Tuple[str, ...], BatchPlan] = {}

    # ------------------------------------------------------------- compile

    def plan_for(self, signature: Tuple[str, ...]) -> BatchPlan:
        plan = self._plans.get(signature)
        if plan is None:
            if len(self._plans) >= _MAX_PLANS:
                self._plans.clear()
            plan = self._compile(signature)
            self._plans[signature] = plan
        return plan

    def _compile(self, signature: Tuple[str, ...]) -> BatchPlan:
        analyzer = self.analyzer
        constructor = analyzer.constructor
        raw_set = set(signature)

        # Replay transform_rows' emission passes over this signature to
        # learn (a) which constructed name wins each output column (a
        # later emit overwrites an earlier one — dict assignment below
        # mirrors that last-wins order) and (b) the exact zero-fill set
        # the full transform would warn about.
        emits: Dict[str, Tuple[object, ...]] = {}
        zero_filled: set = set()
        for name in signature:
            if "_tcp_" not in name:
                continue
            for direction in ("c2s", "s2c"):
                tag = f"_{direction}_"
                if tag not in name:
                    continue
                prefix, suffix = name.split(tag, 1)
                if suffix in _PKT_COUNTERS:
                    total_name = f"{prefix}_{direction}_pkts"
                elif suffix in _BYTE_COUNTERS:
                    total_name = f"{prefix}_{direction}_bytes"
                else:
                    continue
                if total_name not in raw_set:
                    zero_filled.add(total_name)
                emits[f"{name}_norm"] = (_NORM, name, total_name)
        for rate_name, max_rate in constructor._nic_max_rates.items():
            if rate_name in raw_set and max_rate > 0:
                emits[f"{rate_name[:-5]}_util"] = (_UTIL, rate_name, max_rate)
        for vp in _FLOW_DURATION_VPS:
            key = f"{vp}_tcp_flow_duration"
            if key in raw_set:
                emits[f"{key}_norm"] = (_FLOW, key)

        # Resolve the union of per-task feature lists to column slots.
        slots: Dict[str, int] = {}
        raw_cols: Dict[str, int] = {}
        ops: List[_ColumnOp] = []
        sensitive: set = set()
        nic_max_rates = constructor._nic_max_rates
        needs_flow = False

        def raw_col(name: str) -> int:
            col = raw_cols.get(name)
            if col is None:
                col = len(raw_cols)
                raw_cols[name] = col
            return col

        for task in analyzer.features:
            for name in analyzer.features[task]:
                if name in slots:
                    continue
                out = slots[name] = len(slots)
                emit = emits.get(name)
                if emit is not None:
                    if emit[0] == _NORM:
                        _kind, value_name, total_name = emit
                        have_total = total_name in raw_set
                        ops.append(
                            _ColumnOp(
                                kind=_NORM,
                                out=out,
                                a=raw_col(str(value_name)),
                                b=raw_col(str(total_name)) if have_total else -1,
                            )
                        )
                        if not have_total:
                            # a row carrying the total would make the
                            # reference transform divide instead of
                            # zero-filling this column
                            sensitive.add(str(total_name))
                    elif emit[0] == _UTIL:
                        _kind, rate_name, max_rate = emit
                        ops.append(
                            _ColumnOp(
                                kind=_UTIL,
                                out=out,
                                a=raw_col(str(rate_name)),
                                scale=float(max_rate),  # type: ignore[arg-type]
                            )
                        )
                    else:
                        needs_flow = True
                        ops.append(
                            _ColumnOp(kind=_FLOW, out=out, a=raw_col(str(emit[1])))
                        )
                elif name in raw_set:
                    ops.append(_ColumnOp(kind=_RAW, out=out, a=raw_col(name)))
                    # a raw column the reference transform would
                    # *overwrite* if some row carried the generating
                    # metric of a same-named constructed feature
                    if name.endswith("_norm") and name[:-5] not in raw_set:
                        sensitive.add(name[:-5])
                    if name.endswith("_util"):
                        rate_name = name[:-5] + "_rate"
                        if (
                            rate_name not in raw_set
                            and nic_max_rates.get(rate_name, 0) > 0
                        ):
                            sensitive.add(rate_name)
                else:
                    ops.append(_ColumnOp(kind=_ZERO, out=out))
                    # zero-filled everywhere per the signature; any row
                    # carrying the name (or a metric that constructs
                    # it) would give the reference path a live column
                    sensitive.add(name)
                    if name.endswith("_norm"):
                        sensitive.add(name[:-5])
                    if name.endswith("_util"):
                        rate_name = name[:-5] + "_rate"
                        if nic_max_rates.get(rate_name, 0) > 0:
                            sensitive.add(rate_name)

        raw_names = tuple(raw_cols)
        getter: Optional[Callable[[Dict[str, float]], object]] = None
        if raw_names:
            getter = itemgetter(*raw_names)

        task_slots = {
            task: np.asarray(
                [slots[name] for name in analyzer.features[task]], dtype=np.intp
            )
            for task in analyzer.features
        }
        tree_plans: Dict[str, Optional[object]] = {}
        decoders: Dict[str, Optional[np.ndarray]] = {}
        for task, model in analyzer.models.items():
            classes = getattr(model, "classes_", None)
            if hasattr(model, "compiled_plan") and classes is not None:
                tree_plans[task] = model.compiled_plan()
                decoders[task] = np.asarray(
                    [str(label) for label in classes.tolist()], dtype=object
                )
            else:
                tree_plans[task] = None
                decoders[task] = None

        return BatchPlan(
            signature=signature,
            raw_names=raw_names,
            getter=getter,
            ops=tuple(ops),
            n_slots=len(slots),
            task_slots=task_slots,
            tree_plans=tree_plans,
            decoders=decoders,
            missing=tuple(sorted(zero_filled)),
            sensitive=tuple(sorted(sensitive)),
            needs_flow=needs_flow,
        )

    # ------------------------------------------------------------- predict

    def predict_rows(
        self,
        rows: Sequence[Dict[str, float]],
        durations: Sequence[float],
    ) -> Optional[Dict[str, List[str]]]:
        """Per-task label strings for a uniform batch.

        Returns ``None`` — and the caller takes the reference transform
        path — when the batch may diverge from it: rows of differing
        lengths, a row missing a needed raw metric (the gather's
        ``KeyError``), or a row carrying one of the plan's *sensitive*
        names (a metric whose presence would change a needed column in
        the full transform).  Together those guards make the fast path's
        predictions bit-identical to the reference on every batch it
        accepts, without materialising each row's key tuple: the
        predictions depend only on the needed raw values, which are
        gathered per row by name.  (Zero-fill *warnings* still follow
        the first row's signature, so a batch mixing equal-length but
        differently-keyed rows can warn differently than the reference
        path while predicting identically.)
        """
        width = len(rows[0])
        if set(map(len, rows)) != {width}:
            return None
        plan = self.plan_for(tuple(rows[0]))
        if plan.sensitive and any(
            name in row for row in rows for name in plan.sensitive
        ):
            return None
        try:
            cols = plan.build_columns(rows, durations)
        except KeyError:
            return None
        if plan.missing:
            self._warn_zero_fill(plan.missing)
        predictions: Dict[str, List[str]] = {}
        for task, slot_idx in plan.task_slots.items():
            X = cols[:, slot_idx]
            tree_plan = plan.tree_plans[task]
            decoder = plan.decoders[task]
            if tree_plan is not None and decoder is not None:
                codes = tree_plan.predict_codes(X)
                predictions[task] = decoder[codes].tolist()
            else:
                labels = self.analyzer.models[task].predict(X)
                predictions[task] = [
                    str(label) for label in np.asarray(labels).tolist()
                ]
        return predictions

    def _warn_zero_fill(self, missing: Tuple[str, ...]) -> None:
        """The same once-per-missing-set warning ``transform_rows`` emits.

        Shares the constructor's warned-set, so flipping engines never
        double-warns about the same missing features.
        """
        constructor = self.analyzer.constructor
        warned = getattr(constructor, "_warned_zero_fill", None)
        if not isinstance(warned, set):
            warned = set()
        constructor._warned_zero_fill = warned
        if missing not in warned:
            warned.add(missing)
            warnings.warn(
                "transform_rows zero-filled features missing from the "
                f"input rows: {list(missing)}; check the metric names "
                "against the probe schema (repro lint rule M201)",
                RuntimeWarning,
                stacklevel=2,
            )

"""The public diagnosis API: :class:`RootCauseAnalyzer`.

This is what a downstream user deploys.  Fit once on a labelled campaign
(or load the bundled lab campaign), then feed it the per-VP features of a
live session::

    analyzer = RootCauseAnalyzer(vps=("mobile",))
    analyzer.fit(dataset)
    report = analyzer.diagnose(session_features)
    print(report.summary())

The analyzer bundles the full pipeline of the paper: feature construction,
FCBF feature selection and one C4.5 model per task (problem existence /
severity, location, exact cause).  It degrades gracefully when only a
subset of vantage points is available -- the central deployment property
of Section 3.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.construction import FeatureConstructor
from repro.core.dataset import Dataset
from repro.core.selection import FeatureSelector
from repro.core.vantage import ALL_VPS, combo_name, features_for_vps
from repro.ml.tree import C45Tree

_TASKS = ("severity", "location", "exact")

_LOCATION_HINTS = {
    "mobile": "the mobile device itself",
    "lan": "the user's local network (LAN / wireless)",
    "wan": "the ISP or content-provider network (WAN)",
}

_CAUSE_HINTS = {
    "wan_congestion": "congestion on the WAN path",
    "wan_shaping": "a bandwidth restriction on the WAN link",
    "lan_congestion": "competing traffic in the local network",
    "lan_shaping": "a bandwidth restriction in the local network",
    "mobile_load": "high CPU/memory load on the device",
    "low_rssi": "poor wireless signal reception",
    "wifi_interference": "interference on the WiFi channel",
}


@dataclass
class DiagnosisReport:
    """Structured output of one diagnosis."""

    severity: str
    location: str
    exact: str
    vps: Sequence[str]
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def has_problem(self) -> bool:
        return self.severity != "good"

    @property
    def cause(self) -> str:
        if self.exact == "good":
            return "none"
        return self.exact.rsplit("_", 1)[0]

    @property
    def problem_location(self) -> str:
        if self.location == "good":
            return "none"
        return self.location.rsplit("_", 1)[0]

    def summary(self) -> str:
        if not self.has_problem and self.exact == "good":
            return f"[{combo_name(self.vps)}] QoE is good; no fault detected."
        cause = _CAUSE_HINTS.get(self.cause, self.cause)
        where = _LOCATION_HINTS.get(self.problem_location, self.problem_location)
        return (
            f"[{combo_name(self.vps)}] {self.severity} QoE degradation; "
            f"root cause: {cause}; located at {where}."
        )


class RootCauseAnalyzer:
    """End-to-end RCA pipeline bound to a set of vantage points."""

    def __init__(
        self,
        vps: Sequence[str] = ALL_VPS,
        model_factory: Callable[[], object] = None,
        fs_delta: float = 0.01,
        select: bool = True,
    ):
        unknown = set(vps) - set(ALL_VPS)
        if unknown:
            raise ValueError(f"unknown vantage points: {sorted(unknown)}")
        if not vps:
            raise ValueError("need at least one vantage point")
        self.vps = tuple(vps)
        self.model_factory = model_factory or (lambda: C45Tree(min_leaf=2, cf=0.25))
        self.fs_delta = fs_delta
        self.select = select
        self.constructor: Optional[FeatureConstructor] = None
        self.models: Dict[str, object] = {}
        self.features: Dict[str, List[str]] = {}
        self.fitted = False

    # ------------------------------------------------------------------- fit

    def fit(self, dataset: Dataset) -> "RootCauseAnalyzer":
        """Train the three task models on a labelled campaign dataset."""
        if len(dataset) < 20:
            raise ValueError("dataset too small to train a meaningful model")
        self.constructor = FeatureConstructor().fit(dataset)
        data = self.constructor.transform(dataset)
        scoped = features_for_vps(data.feature_names, self.vps)
        for task in _TASKS:
            names = scoped
            if self.select:
                selector = FeatureSelector(delta=self.fs_delta)
                selector.fit(data, label_kind=task, feature_names=scoped)
                names = selector.selected or scoped
            model = self.model_factory()
            model.fit(data.to_matrix(names), data.labels(task), feature_names=names)
            self.models[task] = model
            self.features[task] = list(names)
        self.fitted = True
        return self

    # -------------------------------------------------------------- diagnose

    def diagnose(
        self,
        features: Dict[str, float],
        session_s: Optional[float] = None,
    ) -> DiagnosisReport:
        """Diagnose one session from its raw probe features."""
        if not self.fitted:
            raise RuntimeError("analyzer must be fit first")
        constructed = self.constructor.transform_features(features)
        if session_s and session_s > 0:
            for vp in ALL_VPS:
                key = f"{vp}_tcp_flow_duration"
                if key in constructed:
                    constructed[f"{key}_norm"] = constructed[key] / session_s
        predictions: Dict[str, str] = {}
        for task in _TASKS:
            row = [constructed.get(n, 0.0) for n in self.features[task]]
            predictions[task] = str(self.models[task].predict_one(row))
        return DiagnosisReport(
            severity=predictions["severity"],
            location=predictions["location"],
            exact=predictions["exact"],
            vps=self.vps,
            details={"used_features": {t: self.features[t] for t in _TASKS}},
        )

    def diagnose_record(self, record) -> DiagnosisReport:
        """Convenience: diagnose a :class:`SessionRecord` or Instance."""
        session = float(
            getattr(record, "meta", {}).get("session_s", 0.0) or 0.0
        )
        return self.diagnose(dict(record.features), session_s=session)

    # ------------------------------------------------------------ inspection

    def selected_features(self, task: str = "exact") -> List[str]:
        if not self.fitted:
            raise RuntimeError("analyzer must be fit first")
        return list(self.features[task])

    def model_text(self, task: str = "exact", max_depth: int = 5) -> str:
        """The interpretable tree (an advantage the paper claims for C4.5)."""
        model = self.models.get(task)
        if model is None or not hasattr(model, "to_text"):
            raise RuntimeError("no interpretable model for this task")
        return model.to_text(max_depth=max_depth)

    def explain(
        self,
        features: Dict[str, float],
        task: str = "exact",
        session_s: Optional[float] = None,
    ):
        """Why a session gets its label: the C4.5 decision path.

        Returns ``(label, [Condition, ...])``; each condition shows the
        feature, the threshold and the session's actual value -- the
        evidence an operator can act on.
        """
        from repro.ml.rules import decision_path

        if not self.fitted:
            raise RuntimeError("analyzer must be fit first")
        constructed = self.constructor.transform_features(features)
        if session_s and session_s > 0:
            for vp in ALL_VPS:
                key = f"{vp}_tcp_flow_duration"
                if key in constructed:
                    constructed[f"{key}_norm"] = constructed[key] / session_s
        model = self.models[task]
        row = [constructed.get(n, 0.0) for n in self.features[task]]
        label = str(model.predict_one(row))
        return label, decision_path(model, row)

    # ------------------------------------------------------------ persistence

    def save(self, path) -> None:
        """Persist the trained pipeline as JSON (no pickled code).

        The export carries the per-task C4.5 trees, their feature lists and
        the feature-construction state (per-NIC maxima), so a lab-trained
        analyzer can be shipped to probes and reloaded with :meth:`load`.
        """
        from repro.ml.export import tree_to_dict

        if not self.fitted:
            raise RuntimeError("analyzer must be fit before saving")
        payload = {
            "format": "repro-analyzer-v1",
            "vps": list(self.vps),
            "fs_delta": self.fs_delta,
            "select": self.select,
            "nic_max_rates": self.constructor.nic_max_rates,
            "tasks": {
                task: {
                    "features": self.features[task],
                    "tree": tree_to_dict(self.models[task]),
                }
                for task in _TASKS
            },
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path) -> "RootCauseAnalyzer":
        """Reload an analyzer saved by :meth:`save`."""
        from repro.ml.export import tree_from_dict

        payload = json.loads(Path(path).read_text())
        if payload.get("format") != "repro-analyzer-v1":
            raise ValueError("not a repro analyzer export")
        analyzer = cls(
            vps=tuple(payload["vps"]),
            fs_delta=payload.get("fs_delta", 0.01),
            select=payload.get("select", True),
        )
        analyzer.constructor = FeatureConstructor()
        analyzer.constructor._nic_max_rates = dict(payload["nic_max_rates"])
        analyzer.constructor.fitted = True
        for task, blob in payload["tasks"].items():
            analyzer.features[task] = list(blob["features"])
            analyzer.models[task] = tree_from_dict(blob["tree"])
        analyzer.fitted = True
        return analyzer

"""The public diagnosis API: :class:`RootCauseAnalyzer`.

This is what a downstream user deploys.  Fit once on a labelled campaign
(or load the bundled lab campaign), then feed it the per-VP features of a
live session::

    analyzer = RootCauseAnalyzer(vps=("mobile",))
    analyzer.fit(dataset)
    report = analyzer.diagnose(session_features)
    print(report.summary())

The analyzer bundles the full pipeline of the paper: feature construction,
FCBF feature selection and one C4.5 model per task (problem existence /
severity, location, exact cause).  It degrades gracefully when only a
subset of vantage points is available -- the central deployment property
of Section 3.
"""

from __future__ import annotations

import itertools
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.compiled import CompiledAnalyzer
from repro.core.construction import FeatureConstructor
from repro.core.dataset import Dataset
from repro.core.selection import FeatureSelector
from repro.core.vantage import ALL_VPS, combo_name, features_for_vps
from repro.ml.compiled import predict_mode
from repro.ml.tree import C45Tree
from repro.obs.telemetry import get_telemetry
from repro.schemas import ANALYZER_V1, ANALYZER_V2, FC_STATE_V1

_TASKS = ("severity", "location", "exact")

#: what the diagnosis entry points accept: a raw ``{feature: value}`` dict
#: or any record-like object carrying ``features`` (and optionally
#: ``meta["session_s"]``).
SessionLike = Union[Dict[str, float], object]

_LOCATION_HINTS = {
    "mobile": "the mobile device itself",
    "lan": "the user's local network (LAN / wireless)",
    "wan": "the ISP or content-provider network (WAN)",
}

_CAUSE_HINTS = {
    "wan_congestion": "congestion on the WAN path",
    "wan_shaping": "a bandwidth restriction on the WAN link",
    "lan_congestion": "competing traffic in the local network",
    "lan_shaping": "a bandwidth restriction in the local network",
    "mobile_load": "high CPU/memory load on the device",
    "low_rssi": "poor wireless signal reception",
    "wifi_interference": "interference on the WiFi channel",
}


@dataclass
class DiagnosisReport:
    """Structured output of one diagnosis."""

    severity: str
    location: str
    exact: str
    vps: Sequence[str]
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def has_problem(self) -> bool:
        return self.severity != "good"

    @property
    def cause(self) -> str:
        if self.exact == "good":
            return "none"
        return self.exact.rsplit("_", 1)[0]

    @property
    def problem_location(self) -> str:
        if self.location == "good":
            return "none"
        return self.location.rsplit("_", 1)[0]

    def summary(self) -> str:
        if not self.has_problem and self.exact == "good":
            return f"[{combo_name(self.vps)}] QoE is good; no fault detected."
        cause = _CAUSE_HINTS.get(self.cause, self.cause)
        where = _LOCATION_HINTS.get(self.problem_location, self.problem_location)
        return (
            f"[{combo_name(self.vps)}] {self.severity} QoE degradation; "
            f"root cause: {cause}; located at {where}."
        )

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form, for JSON pipelines and dashboards."""
        return {
            "severity": self.severity,
            "location": self.location,
            "exact": self.exact,
            "vps": list(self.vps),
            "has_problem": self.has_problem,
            "cause": self.cause,
            "problem_location": self.problem_location,
            "summary": self.summary(),
        }

    def to_json(self, **kwargs: object) -> str:
        """The diagnosis as a JSON string (``kwargs`` go to ``json.dumps``)."""
        return json.dumps(self.to_dict(), **kwargs)


class RootCauseAnalyzer:
    """End-to-end RCA pipeline bound to a set of vantage points."""

    def __init__(
        self,
        vps: Sequence[str] = ALL_VPS,
        model_factory: Optional[Callable[[], object]] = None,
        fs_delta: float = 0.01,
        select: bool = True,
    ) -> None:
        unknown = set(vps) - set(ALL_VPS)
        if unknown:
            raise ValueError(f"unknown vantage points: {sorted(unknown)}")
        if not vps:
            raise ValueError("need at least one vantage point")
        self.vps = tuple(vps)
        self.model_factory = model_factory or (lambda: C45Tree(min_leaf=2, cf=0.25))
        self.fs_delta = fs_delta
        self.select = select
        self.constructor: Optional[FeatureConstructor] = None
        self.models: Dict[str, object] = {}
        self.features: Dict[str, List[str]] = {}
        self.fitted = False
        self._compiled: Optional[CompiledAnalyzer] = None

    # ------------------------------------------------------------------- fit

    def fit(self, dataset: Dataset) -> "RootCauseAnalyzer":
        """Train the three task models on a labelled campaign dataset."""
        if len(dataset) < 20:
            raise ValueError("dataset too small to train a meaningful model")
        tel = get_telemetry()
        with tel.span(
            "analyzer.fit", vps=combo_name(self.vps), n=len(dataset)
        ):
            with tel.span("analyzer.fit.construct"):
                self.constructor = FeatureConstructor().fit(dataset)
                data = self.constructor.transform(dataset)
            scoped = features_for_vps(data.feature_names, self.vps)
            for task in _TASKS:
                with tel.span("analyzer.fit.task", task=task):
                    names = scoped
                    if self.select:
                        selector = FeatureSelector(delta=self.fs_delta)
                        selector.fit(data, label_kind=task, feature_names=scoped)
                        names = selector.selected or scoped
                    model = self.model_factory()
                    with tel.span(
                        "analyzer.fit.tree", task=task, features=len(names)
                    ):
                        model.fit(
                            data.to_matrix(names),
                            data.labels(task),
                            feature_names=names,
                        )
                    self.models[task] = model
                    self.features[task] = list(names)
        self.fitted = True
        self._compiled = None  # batch plans recompile against the new models
        return self

    def compiled(self) -> CompiledAnalyzer:
        """The fused batch-diagnosis plan cache for this analyzer.

        Built lazily and discarded on refit; ``diagnose_batch`` uses it
        whenever ``REPRO_ML_PREDICT`` selects the compiled engine.
        """
        if not self.fitted:
            raise RuntimeError("analyzer must be fit first")
        compiled = getattr(self, "_compiled", None)
        if compiled is None:
            compiled = self._compiled = CompiledAnalyzer(self)
        return compiled

    # -------------------------------------------------------------- diagnose

    @staticmethod
    def _coerce_session(
        session: "SessionLike",
        session_s: Optional[float],
    ) -> Tuple[Dict[str, float], Optional[float]]:
        """Normalise a record-or-dict input to ``(features, session_s)``.

        Anything with a ``features`` attribute (a ``SessionRecord``, a
        dataset ``Instance``, ...) is unpacked, taking the session duration
        from its ``meta`` unless given explicitly; plain dicts pass through.
        """
        if hasattr(session, "features"):
            if session_s is None:
                session_s = float(
                    getattr(session, "meta", {}).get("session_s", 0.0) or 0.0
                )
            return dict(session.features), session_s
        return session, session_s

    def _construct_row(
        self,
        features: Dict[str, float],
        session_s: Optional[float] = None,
    ) -> Dict[str, float]:
        """The single preprocessing path shared by every diagnosis entry.

        Applies feature construction and, when the session duration is
        known, the flow-duration normalisation -- the same flow
        ``diagnose_batch`` runs vectorized over a whole matrix.
        """
        if not self.fitted:
            raise RuntimeError("analyzer must be fit first")
        constructed = self.constructor.transform_features(features)
        if session_s and session_s > 0:
            for vp in ALL_VPS:
                key = f"{vp}_tcp_flow_duration"
                if key in constructed:
                    constructed[f"{key}_norm"] = constructed[key] / session_s
        return constructed

    def _task_vector(self, constructed: Dict[str, float], task: str) -> List[float]:
        return [constructed.get(n, 0.0) for n in self.features[task]]

    def _make_report(self, predictions: Dict[str, str]) -> DiagnosisReport:
        return DiagnosisReport(
            severity=predictions["severity"],
            location=predictions["location"],
            exact=predictions["exact"],
            vps=self.vps,
            details={"used_features": {t: self.features[t] for t in _TASKS}},
        )

    def diagnose(
        self,
        session: "SessionLike",
        session_s: Optional[float] = None,
    ) -> DiagnosisReport:
        """Diagnose one session.

        ``session`` is either a raw ``{feature: value}`` dict or any object
        with ``features`` (and optionally ``meta["session_s"]``), such as a
        :class:`~repro.testbed.testbed.SessionRecord` or a dataset
        ``Instance``.
        """
        features, session_s = self._coerce_session(session, session_s)
        constructed = self._construct_row(features, session_s)
        predictions = {
            task: str(self.models[task].predict_one(self._task_vector(constructed, task)))
            for task in _TASKS
        }
        return self._make_report(predictions)

    def diagnose_record(self, record: object) -> DiagnosisReport:
        """Deprecated alias: :meth:`diagnose` now accepts records directly."""
        warnings.warn(
            "diagnose_record() is deprecated; pass the record to diagnose()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.diagnose(record)

    def diagnose_batch(
        self,
        sessions: Iterable["SessionLike"],
    ) -> List[DiagnosisReport]:
        """Vectorized diagnosis of many sessions at once.

        The default engine runs the fused :class:`CompiledAnalyzer` plan
        (:meth:`compiled`): only the columns the task models consume are
        gathered and constructed, and the compiled tree plans decode
        labels through precomputed tables.  With
        ``REPRO_ML_PREDICT=object`` — or for heterogeneous batches the
        plans don't cover — the reference path builds the full feature
        matrix via :meth:`FeatureConstructor.transform_rows` and calls
        each task model's ``predict(X)`` once.  Both engines produce
        byte-identical reports, and labels are identical to looping
        :meth:`diagnose` over the same sessions.
        """
        if not self.fitted:
            raise RuntimeError("analyzer must be fit first")
        rows: List[Dict[str, float]] = []
        durations: List[float] = []
        for session in sessions:
            if hasattr(session, "features"):
                rows.append(session.features)
                durations.append(
                    float(getattr(session, "meta", {}).get("session_s", 0.0) or 0.0)
                )
            else:
                rows.append(session)
                durations.append(0.0)
        if not rows:
            return []
        tel = get_telemetry()
        with tel.span("diagnose.batch", sessions=len(rows)):
            predictions: Optional[Dict[str, Sequence[str]]] = None
            if predict_mode() == "compiled":
                predictions = self.compiled().predict_rows(rows, durations)
            if predictions is None:
                matrix, names = self.constructor.transform_rows(
                    rows, session_s=durations
                )
                column = {name: j for j, name in enumerate(names)}
                # Pad with one zero column so every selected feature --
                # present or not -- resolves with a single fancy-index
                # per task.
                padded = np.concatenate([matrix, np.zeros((len(rows), 1))], axis=1)
                zero_col = padded.shape[1] - 1
                predictions = {}
                for task in _TASKS:
                    idx = [column.get(name, zero_col) for name in self.features[task]]
                    labels = self.models[task].predict(padded[:, idx])
                    predictions[task] = [
                        str(label) for label in np.asarray(labels).tolist()
                    ]
            tel.count("diagnose.sessions", len(rows))
        # One shared details dict for the whole batch (nothing mutates
        # report details), and positional construction via map — kwargs
        # dicts per row cost more than the reports themselves.
        details = {"used_features": {t: self.features[t] for t in _TASKS}}
        return list(
            map(
                DiagnosisReport,
                predictions["severity"],
                predictions["location"],
                predictions["exact"],
                itertools.repeat(self.vps),
                itertools.repeat(details),
            )
        )

    def diagnose_stream(
        self,
        sessions: Iterable["SessionLike"],
        chunk: int = 64,
    ) -> Iterator[DiagnosisReport]:
        """Streaming diagnosis: constant memory, vectorized per chunk.

        Consumes ``sessions`` lazily — a live feed or a campaign iterator
        — and yields one report per session in order, running
        :meth:`diagnose_batch` over chunks of up to ``chunk`` sessions.
        Construction and prediction are row-local, so the labels are
        identical to both :meth:`diagnose_batch` over the whole stream
        and :meth:`diagnose` per session; only peak memory differs.
        """
        from repro.pipeline.stages import chunked

        if not self.fitted:
            raise RuntimeError("analyzer must be fit first")
        for batch in chunked(sessions, chunk):
            for report in self.diagnose_batch(batch):
                yield report

    # ------------------------------------------------------------ inspection

    def selected_features(self, task: str = "exact") -> List[str]:
        if not self.fitted:
            raise RuntimeError("analyzer must be fit first")
        return list(self.features[task])

    def model_text(self, task: str = "exact", max_depth: int = 5) -> str:
        """The interpretable tree (an advantage the paper claims for C4.5)."""
        model = self.models.get(task)
        if model is None or not hasattr(model, "to_text"):
            raise RuntimeError("no interpretable model for this task")
        return model.to_text(max_depth=max_depth)

    def explain(
        self,
        features: Dict[str, float],
        task: str = "exact",
        session_s: Optional[float] = None,
    ) -> Tuple[str, List[object]]:
        """Why a session gets its label: the C4.5 decision path.

        Returns ``(label, [Condition, ...])``; each condition shows the
        feature, the threshold and the session's actual value -- the
        evidence an operator can act on.
        """
        from repro.ml.rules import decision_path

        features, session_s = self._coerce_session(features, session_s)
        constructed = self._construct_row(features, session_s)
        model = self.models[task]
        row = self._task_vector(constructed, task)
        label = str(model.predict_one(row))
        return label, decision_path(model, row)

    # ------------------------------------------------------------ persistence

    def save(self, path: Union[str, Path]) -> None:
        """Persist the trained pipeline as JSON (no pickled code).

        The ``repro-analyzer-v2`` export carries the per-task C4.5 trees,
        their feature lists and the explicit feature-construction state
        (:meth:`FeatureConstructor.to_state` -- independent of how many
        workers collected the training campaign), so a lab-trained analyzer
        can be shipped to probes and reloaded with :meth:`load`.
        """
        from repro.ml.export import tree_to_dict

        if not self.fitted:
            raise RuntimeError("analyzer must be fit before saving")
        payload = {
            "format": ANALYZER_V2,
            "vps": list(self.vps),
            "fs_delta": self.fs_delta,
            "select": self.select,
            "constructor": self.constructor.to_state(),
            "tasks": {
                task: {
                    "features": self.features[task],
                    "tree": tree_to_dict(self.models[task]),
                }
                for task in _TASKS
            },
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RootCauseAnalyzer":
        """Reload an analyzer saved by :meth:`save` (v1 or v2 export)."""
        from repro.ml.export import tree_from_dict

        payload = json.loads(Path(path).read_text())
        version = payload.get("format")
        if version == ANALYZER_V2:
            state = payload["constructor"]
        elif version == ANALYZER_V1:
            # v1 stored the per-NIC maxima inline; lift them into the
            # explicit constructor-state shape.
            state = {
                "format": FC_STATE_V1,
                "nic_max_rates": payload["nic_max_rates"],
            }
        else:
            raise ValueError("not a repro analyzer export")
        analyzer = cls(
            vps=tuple(payload["vps"]),
            fs_delta=payload.get("fs_delta", 0.01),
            select=payload.get("select", True),
        )
        analyzer.constructor = FeatureConstructor.from_state(state)
        for task, blob in payload["tasks"].items():
            analyzer.features[task] = list(blob["features"])
            analyzer.models[task] = tree_from_dict(blob["tree"])
        analyzer.fitted = True
        return analyzer

"""The wire-schema registry: every ``repro-*-vN`` tag, in one place.

Every persisted or wire-visible payload this project emits is tagged
with a versioned schema string (``repro-record-v1``, ``repro-trace-v1``,
...).  Before this module existed those tags were bare literals scattered
across a dozen modules, with nothing checking that the module writing a
tag and the module parsing it agreed — the classic telemetry-pipeline
schema-drift failure mode.  Now:

* each tag is a module-level constant here, imported by every producer
  and consumer (lint rule **W701** flags any tag literal elsewhere);
* each tag is *registered* as a :class:`WireSchema` declaring which
  modules produce it and which consume it — lint rule **W702** verifies
  both sides exist and that every declared module really references the
  constant;
* CLI envelopes are minted through :func:`envelope_tag`, and rule
  **W703** verifies every emitted envelope resolves to a registered tag.

Consumers that live outside ``src/repro`` (tests, examples, downstream
services reading our JSON) are declared with the ``external:`` prefix —
they satisfy the somebody-consumes-this requirement without being
cross-checked against the linted tree.

This module must stay import-free of the rest of the package: every
layer (core, ml, pipeline, obs, serve, analysis, cli) imports it, so any
``repro.*`` import here would cycle.

A breaking payload change mints a new ``-v(N+1)`` constant and registers
it alongside the old one (kept with ``legacy=True`` while loaders still
accept it); it never mutates an existing tag's meaning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: prefix marking a declared consumer that lives outside the linted tree
EXTERNAL = "external:"

# ------------------------------------------------------------------ tags
#
# Persistence formats (the ``format`` key of a stored payload).

#: one spooled campaign session (``pipeline.records``)
RECORD_V1 = "repro-record-v1"
#: spool checkpoint sidecar (``pipeline.checkpoint``)
CHECKPOINT_V1 = "repro-ckpt-v1"
#: shard manifest sidecar: which campaign indices one shard owns
#: (``pipeline.shard``) — what lets a merge reconstruct serial order
SHARD_MANIFEST_V1 = "repro-shard-manifest-v1"
#: telemetry trace export / JSONL interchange (``obs``)
TRACE_V1 = "repro-trace-v1"
#: captured packet trace (``simnet.trace``) — distinct from the
#: telemetry trace; the two shared one tag before this registry existed
PACKET_TRACE_V1 = "repro-pkttrace-v1"
#: legacy analyzer export with inline NIC maxima (read-only since v2)
ANALYZER_V1 = "repro-analyzer-v1"
#: analyzer export: per-task trees + explicit constructor state
ANALYZER_V2 = "repro-analyzer-v2"
#: one serialized C4.5 tree (``ml.export``)
C45_V1 = "repro-c45-v1"
#: fitted feature-constructor state (``core.construction``)
FC_STATE_V1 = "repro-fc-v1"
#: accepted-findings lint baseline (``analysis.baseline``)
LINT_BASELINE_V1 = "repro-lint-baseline-v1"
#: cached lint project model (``analysis.project_model``)
LINT_CACHE_V1 = "repro-lint-cache-v1"

# HTTP wire schemas (the ``schema`` key of a request/response body).

#: ``POST /v1/diagnose`` request body (``api.DiagnoseRequest``)
DIAGNOSE_REQUEST_V1 = "repro-diagnose-request-v1"
#: ``POST /v1/diagnose`` response body (``api.DiagnoseResponse``)
DIAGNOSE_RESPONSE_V1 = "repro-diagnose-response-v1"
#: model identity object embedded in responses (``api.ModelInfo``)
MODEL_INFO_V1 = "repro-model-info-v1"
#: error body served for any failed HTTP request (``serve.http``)
SERVE_ERROR_V1 = "repro-error-v1"

# CLI ``--json`` envelopes ({"schema": tag, "data": ...}), one per
# subcommand, minted uniformly by :func:`envelope_tag`.

CAMPAIGN_ENVELOPE_V1 = "repro-campaign-v1"
#: sharded-campaign modes of `repro campaign` (--shards/--orchestrate/
#: --merge) share one envelope distinct from the pickle-writing default
CAMPAIGN_SHARD_ENVELOPE_V1 = "repro-campaign-shard-v1"
DIAGNOSE_ENVELOPE_V1 = "repro-diagnose-v1"
REPORT_ENVELOPE_V1 = "repro-report-v1"
STREAM_ENVELOPE_V1 = "repro-stream-v1"
SERVE_ENVELOPE_V1 = "repro-serve-v1"
LINT_ENVELOPE_V1 = "repro-lint-v1"
# (`repro trace --json` reuses TRACE_V1: the envelope carries the
# summarized form of the same telemetry export.)


def envelope_tag(command: str) -> str:
    """The envelope schema tag for one CLI subcommand."""
    return f"repro-{command}-v1"


# -------------------------------------------------------------- registry


@dataclass(frozen=True)
class WireSchema:
    """One registered wire/persistence schema and its two sides.

    ``producers`` / ``consumers`` are package-relative module paths
    (``pipeline/records.py``) or ``external:``-prefixed references for
    parties outside the linted tree.  ``legacy`` marks tags that are
    still *read* but no longer written — they need consumers only.
    """

    tag: str
    doc: str
    producers: Tuple[str, ...] = ()
    consumers: Tuple[str, ...] = ()
    legacy: bool = False


SCHEMAS: Tuple[WireSchema, ...] = (
    WireSchema(
        tag=RECORD_V1,
        doc="spooled campaign session record (JSONL line)",
        producers=("pipeline/records.py",),
        consumers=("pipeline/records.py", "api.py",
                   EXTERNAL + "tests/pipeline"),
    ),
    WireSchema(
        tag=CHECKPOINT_V1,
        doc="atomic spool checkpoint sidecar",
        producers=("pipeline/checkpoint.py",),
        consumers=("pipeline/checkpoint.py",),
    ),
    WireSchema(
        tag=SHARD_MANIFEST_V1,
        doc="shard manifest: the campaign indices one shard spool owns",
        producers=("pipeline/shard.py",),
        consumers=("pipeline/shard.py", EXTERNAL + "tests/pipeline",
                   EXTERNAL + "cross-host shard runners"),
    ),
    WireSchema(
        tag=TRACE_V1,
        doc="telemetry export: live payload, JSONL trace, CLI summary envelope",
        producers=("obs/telemetry.py", "obs/trace.py", "cli.py"),
        consumers=("obs/telemetry.py", "obs/trace.py",
                   EXTERNAL + "tests/obs"),
    ),
    WireSchema(
        tag=PACKET_TRACE_V1,
        doc="captured simnet packet trace (pickled, replayable into probes)",
        producers=("simnet/trace.py",),
        consumers=("simnet/trace.py",),
    ),
    WireSchema(
        tag=ANALYZER_V1,
        doc="legacy analyzer export (inline NIC maxima); still loadable",
        consumers=("core/diagnosis.py",),
        legacy=True,
    ),
    WireSchema(
        tag=ANALYZER_V2,
        doc="analyzer export: per-task C4.5 trees + constructor state",
        producers=("core/diagnosis.py", "api.py"),
        consumers=("core/diagnosis.py", EXTERNAL + "model registries"),
    ),
    WireSchema(
        tag=C45_V1,
        doc="one serialized C4.5 decision tree",
        producers=("ml/export.py",),
        consumers=("ml/export.py",),
    ),
    WireSchema(
        tag=FC_STATE_V1,
        doc="fitted feature-constructor state (per-NIC maxima)",
        producers=("core/construction.py", "core/diagnosis.py"),
        consumers=("core/construction.py",),
    ),
    WireSchema(
        tag=LINT_BASELINE_V1,
        doc="accepted lint findings, keyed by fingerprint",
        producers=("analysis/baseline.py",),
        consumers=("analysis/baseline.py",),
    ),
    WireSchema(
        tag=LINT_CACHE_V1,
        doc="cached per-file lint facts keyed by content hash",
        producers=("analysis/project_model.py",),
        consumers=("analysis/project_model.py",),
    ),
    WireSchema(
        tag=DIAGNOSE_REQUEST_V1,
        doc="POST /v1/diagnose request body",
        producers=("api.py", EXTERNAL + "probe clients"),
        consumers=("api.py",),
    ),
    WireSchema(
        tag=DIAGNOSE_RESPONSE_V1,
        doc="POST /v1/diagnose response body",
        producers=("api.py",),
        consumers=(EXTERNAL + "probe clients", EXTERNAL + "tests/serve"),
    ),
    WireSchema(
        tag=MODEL_INFO_V1,
        doc="model identity embedded in diagnose responses",
        producers=("api.py",),
        consumers=(EXTERNAL + "probe clients",),
    ),
    WireSchema(
        tag=SERVE_ERROR_V1,
        doc="error body for any failed serve HTTP request",
        producers=("serve/http.py",),
        consumers=(EXTERNAL + "probe clients",),
    ),
    WireSchema(
        tag=CAMPAIGN_ENVELOPE_V1,
        doc="`repro campaign --json` summary envelope",
        producers=("cli.py",),
        consumers=(EXTERNAL + "tests/core",),
    ),
    WireSchema(
        tag=CAMPAIGN_SHARD_ENVELOPE_V1,
        doc="`repro campaign --shards/--orchestrate/--merge --json` envelope",
        producers=("cli.py",),
        consumers=(EXTERNAL + "tests/core", EXTERNAL + "CI",
                   EXTERNAL + "examples/shard_smoke.py"),
    ),
    WireSchema(
        tag=DIAGNOSE_ENVELOPE_V1,
        doc="`repro diagnose --json` envelope",
        producers=("cli.py",),
        consumers=(EXTERNAL + "tests/core",),
    ),
    WireSchema(
        tag=REPORT_ENVELOPE_V1,
        doc="`repro report --json` envelope",
        producers=("cli.py",),
        consumers=(EXTERNAL + "tests/core",),
    ),
    WireSchema(
        tag=STREAM_ENVELOPE_V1,
        doc="`repro stream --json` NDJSON envelope (one per session)",
        producers=("cli.py",),
        consumers=(EXTERNAL + "tests/core",),
    ),
    WireSchema(
        tag=SERVE_ENVELOPE_V1,
        doc="`repro serve --json` startup envelope",
        producers=("cli.py",),
        consumers=(EXTERNAL + "examples/serve_smoke.py",),
    ),
    WireSchema(
        tag=LINT_ENVELOPE_V1,
        doc="`repro lint --json` findings envelope",
        producers=("cli.py",),
        consumers=(EXTERNAL + "tests/analysis", EXTERNAL + "CI"),
    ),
)

#: tag -> registered schema, the lookup the W7xx pass and tooling use
REGISTRY: Dict[str, WireSchema] = {schema.tag: schema for schema in SCHEMAS}

if len(REGISTRY) != len(SCHEMAS):  # pragma: no cover - registry authoring bug
    raise RuntimeError("duplicate wire-schema tag registered")


def registered(tag: str) -> bool:
    """Whether ``tag`` is a registered wire schema."""
    return tag in REGISTRY

#!/usr/bin/env python
"""Adaptive vs progressive delivery under network faults.

Section 2 requires the diagnosis system to be agnostic to "static or
adaptive streaming, pacing and so on".  This example runs the same videos
through (a) Apache-style progressive download and (b) the DASH-style ABR
client, under the same WAN shaping fault, and shows:

* ABR trades bitrate for smoothness (fewer stalls, lower delivered rate);
* the lab-trained analyzer still reads ABR sessions correctly.

Run:  python examples/adaptive_streaming.py
"""

import random

from repro import RootCauseAnalyzer, Testbed, TestbedConfig, VideoCatalog
from repro.experiments.common import controlled_dataset, scaled
from repro.faults import make_fault


def run_pair(seed: int, fault_spec):
    catalog = VideoCatalog(size=20, duration_range=(20, 40), seed=11)
    rng = random.Random(seed)
    profile = next(v for v in catalog if v.definition == "HD")

    results = {}
    for mode in ("progressive", "abr"):
        bed = Testbed(TestbedConfig(seed=seed))
        fault = (
            make_fault(fault_spec[0], fault_spec[1], random.Random(seed))
            if fault_spec else None
        )
        if mode == "progressive":
            record = bed.run_video_session(profile, fault=fault)
        else:
            record = bed.run_abr_session(profile, fault=fault)
        bed.shutdown()
        results[mode] = record
    return results


def main() -> None:
    dataset = controlled_dataset(n_instances=scaled(160), verbose=True)
    analyzer = RootCauseAnalyzer(vps=("mobile", "router", "server"))
    analyzer.fit(dataset)

    for label, fault_spec in [("healthy", None), ("wan_shaping severe",
                                                  ("wan_shaping", "severe"))]:
        print(f"\n=== scenario: {label} ===")
        results = run_pair(seed=4242, fault_spec=fault_spec)
        for mode, record in results.items():
            stalls = record.app_metrics.get("qoe_stall_count", 0)
            extra = ""
            if mode == "abr":
                extra = (f"  avg bitrate={record.app_metrics['abr_avg_bitrate'] / 1e6:.2f}Mbps"
                         f"  switches={record.app_metrics['abr_switches']:.0f}")
            print(f"  {mode:<12} MOS={record.mos:.2f} ({record.severity}) "
                  f"stalls={stalls:.0f}{extra}")
            report = analyzer.diagnose(record)
            print(f"    diagnosis: {report.summary()}")


if __name__ == "__main__":
    main()

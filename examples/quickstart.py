#!/usr/bin/env python
"""Quickstart: train the root-cause analyzer and diagnose video sessions.

This walks the paper's full loop in miniature:

1. simulate a small controlled ground-truth campaign (Section 4),
2. fit the RCA pipeline -- feature construction, FCBF selection, C4.5 --
   on all three vantage points (Section 3),
3. stream a few fresh sessions with known injected faults and ask the
   analyzer what went wrong (Section 5).

Run:  python examples/quickstart.py
"""

import random

from repro import RootCauseAnalyzer, Testbed, TestbedConfig, VideoCatalog
from repro.experiments.common import controlled_dataset, scaled
from repro.faults import make_fault


def main() -> None:
    print("=== 1. Collecting ground truth (simulated testbed campaign) ===")
    dataset = controlled_dataset(n_instances=scaled(160), verbose=True)
    print(f"dataset: {len(dataset)} instances, "
          f"{len(dataset.feature_names)} raw features")
    print(f"QoE labels: {dataset.label_counts('severity')}")

    print("\n=== 2. Training the analyzer (FC + FCBF + C4.5) ===")
    analyzer = RootCauseAnalyzer(vps=("mobile", "router", "server"))
    analyzer.fit(dataset)
    selected = analyzer.selected_features("exact")
    print(f"FCBF kept {len(selected)} features for the exact-cause task:")
    for name in selected[:10]:
        print(f"  - {name}")

    print("\n=== 3. Diagnosing fresh sessions ===")
    catalog = VideoCatalog(size=20, duration_range=(18, 40), seed=123)
    scenarios = [
        ("none", None),
        ("wan_shaping", "severe"),
        ("mobile_load", "severe"),
        ("wifi_interference", "severe"),
    ]
    for index, (fault_name, severity) in enumerate(scenarios):
        rng = random.Random(1000 + index)
        bed = Testbed(TestbedConfig(seed=1000 + index))
        fault = (
            make_fault(fault_name, severity, rng) if fault_name != "none" else None
        )
        record = bed.run_video_session(catalog.pick(rng), fault=fault)
        bed.shutdown()
        report = analyzer.diagnose(record)
        truth = f"{fault_name}/{severity}" if fault else "healthy"
        print(f"\ninjected: {truth}   (MOS={record.mos:.2f})")
        print(f"diagnosis: {report.summary()}")

    print("\n=== 4. The interpretable model (a C4.5 advantage, Sec. 3.2) ===")
    print(analyzer.model_text("severity", max_depth=3))


if __name__ == "__main__":
    main()

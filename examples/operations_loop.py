#!/usr/bin/env python
"""Running the diagnosis system in production: explain, drift, retrain.

Section 7's "Continuous Training" sketch, as an operations loop:

1. deploy a lab-trained analyzer;
2. *explain* individual diagnoses with the C4.5 decision path (the
   interpretability the paper chose C4.5 for);
3. monitor live traffic for feature drift against the training
   distribution;
4. when drift crosses the retrain gate, fold the newly-labelled field
   data into the training set and refit.

Run:  python examples/operations_loop.py
"""

from repro import RootCauseAnalyzer
from repro.core.drift import DriftMonitor
from repro.core.report import fleet_report
from repro.experiments.common import (
    controlled_dataset,
    scaled,
    wild_dataset,
)


def main() -> None:
    print("=== deploy: train in the lab ===")
    lab = controlled_dataset(n_instances=scaled(160), verbose=True)
    analyzer = RootCauseAnalyzer().fit(lab)
    monitored = analyzer.selected_features("severity")
    monitor = DriftMonitor(features=monitored).fit(lab)
    print(f"monitoring {len(monitored)} model features for drift")

    print("\n=== operate: diagnose live traffic ===")
    live = wild_dataset(n_instances=scaled(120), verbose=True)
    print(fleet_report(analyzer, live).to_text())

    print("\n=== explain one problematic session ===")
    problem = next(
        (inst for inst in live if inst.label("severity") != "good"), live[0]
    )
    label, path = analyzer.explain(
        problem.features, task="exact",
        session_s=problem.meta.get("session_s"),
    )
    print(f"diagnosis: {label}")
    for cond in path[:6]:
        print(f"  because {cond}")

    print("\n=== drift check against the lab distribution ===")
    report = monitor.score(live)
    print(report.to_text())

    if report.should_retrain:
        print("\n=== retrain with field data folded in (Section 7) ===")
        refreshed = lab.merged_with(live)
        analyzer.fit(refreshed)
        print(f"model refreshed on {len(refreshed)} instances; "
              f"now using {len(analyzer.selected_features('severity'))} features")
    else:
        print("\nno retrain needed yet; the lab model still matches the field")


if __name__ == "__main__":
    main()

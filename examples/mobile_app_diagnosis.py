#!/usr/bin/env python
"""Phone-only deployment: what an instrumented mobile app can diagnose.

The paper's headline deployment story (Section 7): "even an isolated
mobile application that collects measurements from multiple layers can
successfully identify a large number of problems without further
instrumentation".  Here the analyzer sees *only* mobile-VP features --
the phone's tstat flow stats, CPU/memory, RSSI and NIC counters -- and is
asked to tell local problems (device load, weak signal) apart from remote
ones (WAN congestion), so the user knows whether to blame their own
device, their WiFi, or their provider.

Run:  python examples/mobile_app_diagnosis.py
"""

import random
from collections import Counter

from repro import RootCauseAnalyzer, Testbed, TestbedConfig, VideoCatalog
from repro.experiments.common import controlled_dataset, scaled
from repro.faults import make_fault

SCENARIOS = [
    ("mobile_load", "severe", "your device is overloaded"),
    ("low_rssi", "severe", "move closer to the access point"),
    ("lan_congestion", "severe", "someone is hogging your home network"),
    ("wan_congestion", "severe", "the problem is beyond your home network"),
]


def main() -> None:
    dataset = controlled_dataset(n_instances=scaled(160), verbose=True)
    app = RootCauseAnalyzer(vps=("mobile",))
    app.fit(dataset)
    print(f"mobile-only model uses {len(app.selected_features('exact'))} features, "
          f"all measured on the phone\n")

    catalog = VideoCatalog(size=20, duration_range=(18, 40), seed=55)
    hits = Counter()
    for index, (fault_name, severity, advice) in enumerate(SCENARIOS):
        for trial in range(3):
            seed = 7000 + index * 10 + trial
            rng = random.Random(seed)
            bed = Testbed(TestbedConfig(seed=seed))
            fault = make_fault(fault_name, severity, rng)
            record = bed.run_video_session(catalog.pick(rng), fault=fault)
            bed.shutdown()
            report = app.diagnose(record)
            correct_location = report.problem_location == fault.location
            hits[fault_name] += int(correct_location)
            if trial == 0:
                print(f"scenario: {fault_name} -> app says: {report.summary()}")
                if correct_location:
                    print(f"  advice shown to the user: {advice!r}")
        print()

    print("location-identification hit rate per scenario (3 trials each):")
    for fault_name, _, _ in SCENARIOS:
        print(f"  {fault_name:<18} {hits[fault_name]}/3")


if __name__ == "__main__":
    main()

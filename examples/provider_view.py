#!/usr/bin/env python
"""Content-provider deployment: server-side monitoring without client help.

Two of the paper's provider-side claims, demonstrated end to end:

* a server-only model detects problematic sessions and localises whether
  the fault is on the WAN (its own side / peering) or in the customer's
  network -- useful for "spotting congested or under-provisioned ISP
  networks" (Section 5.2);
* more surprisingly, the server VP can flag *device-side* states it never
  observes directly -- high CPU load and low RSSI -- from the transport
  footprint alone (Figure 9).

Run:  python examples/provider_view.py
"""

import random

from repro import RootCauseAnalyzer, Testbed, TestbedConfig, VideoCatalog
from repro.experiments.common import controlled_dataset, scaled
from repro.faults import make_fault


def main() -> None:
    dataset = controlled_dataset(n_instances=scaled(160), verbose=True)
    provider = RootCauseAnalyzer(vps=("server",))
    provider.fit(dataset)
    print("server-only analyzer trained; features available to the provider:")
    for name in provider.selected_features("exact")[:8]:
        print(f"  - {name}")

    catalog = VideoCatalog(size=20, duration_range=(18, 40), seed=31)

    print("\n--- localisation: WAN fault vs customer-side fault ---")
    for index, (fault_name, severity) in enumerate(
        [("wan_congestion", "severe"), ("lan_congestion", "severe")]
    ):
        seed = 3200 + index
        rng = random.Random(seed)
        bed = Testbed(TestbedConfig(seed=seed))
        record = bed.run_video_session(
            catalog.pick(rng), fault=make_fault(fault_name, severity, rng)
        )
        bed.shutdown()
        report = provider.diagnose(record)
        print(f"injected {fault_name:<16} -> provider blames: "
              f"{report.problem_location} ({report.summary()})")

    print("\n--- inferring device state from TCP behaviour (Figure 9) ---")
    flagged, unflagged = [], []
    for trial in range(8):
        seed = 3300 + trial
        rng = random.Random(seed)
        bed = Testbed(TestbedConfig(seed=seed))
        fault = make_fault("mobile_load", "severe", rng) if trial % 2 == 0 else None
        record = bed.run_video_session(catalog.pick(rng), fault=fault)
        bed.shutdown()
        report = provider.diagnose(record)
        true_cpu = record.meta["true_cpu"]
        bucket = flagged if report.cause == "mobile_load" else unflagged
        bucket.append(true_cpu)
        print(f"  session {trial}: true CPU={true_cpu:.2f}  "
              f"server flags mobile load: {report.cause == 'mobile_load'}")
    if flagged and unflagged:
        print(f"\nmean true CPU when flagged:   {sum(flagged)/len(flagged):.2f}")
        print(f"mean true CPU when not flagged: {sum(unflagged)/len(unflagged):.2f}")
        print("(flagged sessions should show genuinely higher device CPU)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Smoke-test sharded campaigns end to end, the way CI gates them.

Runs the real CLI twice: once with ``--shards 1 --orchestrate`` for the
serial reference spool, once with ``--shards 4 --orchestrate`` while
``REPRO_SHARD_KILL`` SIGKILLs the busiest shard the moment it commits
its first checkpoint.  The orchestrator must detect the dead shard,
resume it from the checkpoint, and the merged 4-shard spool must come
out **byte-identical** to the serial reference.  Exits non-zero on any
failure, so CI can run it as a gate.

Run:  python examples/shard_smoke.py [artifact-dir]

All spools, manifests, checkpoints and CLI envelopes land in the
artifact directory (default: a temp dir) — CI uploads it on failure.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.pipeline.shard import KILL_ENV, plan_shards
from repro.testbed.campaign import CampaignConfig

INSTANCES = 8
SEED = 77
SHARDS = 4


def run_cli(argv, workdir: Path, name: str, extra_env=None) -> dict:
    """Run ``python -m repro`` and return its parsed ``--json`` envelope."""
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env.update(extra_env or {})
    print(f"$ {' '.join(argv)}"
          + (f"   [{' '.join(f'{k}={v}' for k, v in extra_env.items())}]"
             if extra_env else ""))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=env,
    )
    (workdir / f"{name}.stdout.json").write_text(proc.stdout)
    (workdir / f"{name}.stderr.txt").write_text(proc.stderr)
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"FAIL: {name} exited {proc.returncode}")
    envelope = json.loads(proc.stdout)
    assert envelope["schema"] == "repro-campaign-shard-v1", envelope["schema"]
    return envelope["data"]


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="shard-smoke-")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    print(f"=== artifacts in {workdir} ===")
    base_argv = ["campaign", "--instances", str(INSTANCES),
                 "--seed", str(SEED), "--json"]

    print(f"=== 1. Serial reference ({INSTANCES} instances) ===")
    ref = workdir / "ref.jsonl"
    data = run_cli(base_argv + ["--shards", "1", "--orchestrate",
                                "--out", str(ref)], workdir, "serial")
    assert data["records"] == INSTANCES, data

    print(f"=== 2. {SHARDS}-shard orchestration with an injected "
          "SIGKILL ===")
    # Kill the busiest shard right after its first durable checkpoint —
    # the partition is a pure function of (seed, n, shards), so the
    # victim is known before any process starts.
    config = CampaignConfig(n_instances=INSTANCES, seed=SEED)
    victim = max(plan_shards(config, SHARDS),
                 key=lambda m: len(m.indices)).shard
    print(f"    victim: shard {victim} (SIGKILL at checkpoint 1)")
    mega = workdir / "mega.jsonl"
    data = run_cli(
        base_argv + ["--shards", str(SHARDS), "--orchestrate",
                     "--out", str(mega)],
        workdir, "sharded", extra_env={KILL_ENV: f"{victim}:1"},
    )

    print("=== 3. Crash-and-retry actually happened ===")
    status = {s["shard"]: s for s in data["shard_status"]}
    if data["retries"] < 1 or status[victim]["attempts"] < 2:
        raise SystemExit(
            f"FAIL: expected shard {victim} to die and retry, got "
            f"{json.dumps(data['shard_status'], indent=2)}"
        )
    print(f"    shard {victim}: {status[victim]['attempts']} launches "
          f"({', '.join(status[victim]['reasons'])})")

    print("=== 4. Merged spool is byte-identical to the serial "
          "reference ===")
    ref_bytes, mega_bytes = ref.read_bytes(), mega.read_bytes()
    if mega_bytes != ref_bytes:
        raise SystemExit(
            f"FAIL: merged spool differs from serial reference "
            f"({len(mega_bytes)} vs {len(ref_bytes)} bytes) — "
            f"see {workdir}"
        )
    print(f"    {len(ref_bytes)} bytes, {INSTANCES} records: identical")
    print("PASS: sharded smoke")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

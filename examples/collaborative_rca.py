#!/usr/bin/env python
"""Iterative multi-entity root-cause analysis (Section 7, "Collaboration").

The paper proposes that when entities cannot share raw measurements, each
one -- user, ISP, content provider -- runs the analysis *inside its own
infrastructure* and only reports whether the problem is in its segment:

    "an iterative root cause analysis might be employed where each of the
    entities independently perform analysis within their own
    infrastructure. Then they report to the other entities along the path
    whether or not the problem has occurred in their segment. In this way,
    no sensitive information is exchanged."

This example implements that protocol: three analyzers are trained on
disjoint vantage-point scopes, each votes on the blamed segment for a set
of faulty sessions, and a tiny arbitration rule combines the (one-bit)
answers -- no feature ever crosses an organisational boundary.

Run:  python examples/collaborative_rca.py
"""

import random
from collections import Counter

from repro import RootCauseAnalyzer, Testbed, TestbedConfig, VideoCatalog
from repro.experiments.common import controlled_dataset, scaled
from repro.faults import make_fault

ENTITIES = {
    "user (mobile probe)": ("mobile",),
    "ISP (router probe)": ("router",),
    "provider (server probe)": ("server",),
}

#: which entity owns which path segment
SEGMENT_OWNER = {"mobile": "user", "lan": "user/ISP boundary", "wan": "ISP/provider"}


def arbitrate(votes: dict) -> str:
    """Combine per-entity one-bit blame reports into a consensus segment."""
    counts = Counter(votes.values())
    counts.pop("none", None)
    if not counts:
        return "none"
    return counts.most_common(1)[0][0]


def main() -> None:
    dataset = controlled_dataset(n_instances=scaled(160), verbose=True)
    analyzers = {
        entity: RootCauseAnalyzer(vps=vps).fit(dataset)
        for entity, vps in ENTITIES.items()
    }
    print("trained three independent, non-sharing analyzers\n")

    catalog = VideoCatalog(size=20, duration_range=(18, 40), seed=77)
    scenarios = [("lan_shaping", "severe"), ("wan_congestion", "severe"),
                 ("mobile_load", "severe"), ("low_rssi", "severe")]
    agreement = 0
    for index, (fault_name, severity) in enumerate(scenarios):
        seed = 9100 + index
        rng = random.Random(seed)
        bed = Testbed(TestbedConfig(seed=seed))
        fault = make_fault(fault_name, severity, rng)
        record = bed.run_video_session(catalog.pick(rng), fault=fault)
        bed.shutdown()

        print(f"--- incident: {fault_name} ({severity}), MOS={record.mos:.2f} ---")
        votes = {}
        for entity, analyzer in analyzers.items():
            report = analyzer.diagnose(record)
            votes[entity] = report.problem_location
            print(f"  {entity:<26} reports segment: {report.problem_location}")
        consensus = arbitrate(votes)
        print(f"  => consensus blame: {consensus} "
              f"(truth: {fault.location}, owner: {SEGMENT_OWNER.get(consensus, '-')})")
        agreement += int(consensus == fault.location)
        print()

    print(f"consensus matched the injected location in "
          f"{agreement}/{len(scenarios)} incidents")


if __name__ == "__main__":
    main()

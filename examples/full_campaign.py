#!/usr/bin/env python
"""Paper-scale reproduction: a 3919-instance campaign plus every analysis.

Generates a controlled dataset with the paper's instance count, then runs
the complete Section 5 evaluation suite on it.  This takes a couple of
hours on a single core -- pass ``--workers N`` to fan the simulation out
over N processes (results are identical), use ``--instances`` for a
smaller run, or rely on ``benchmarks/`` which use the scaled default
dataset.

Run:  python examples/full_campaign.py [--instances N] [--workers N]
"""

import argparse
import time

from repro.experiments.common import controlled_dataset
from repro.experiments.classifiers import run_classifier_comparison
from repro.experiments.detection import run_detection
from repro.experiments.exact import run_exact
from repro.experiments.feature_sets import run_fc_fs_ablation, run_feature_sets
from repro.experiments.location import run_location
from repro.experiments.selection_table import run_selection

PAPER_INSTANCES = 3919


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instances", type=int, default=PAPER_INSTANCES,
                        help="campaign size (paper: 3919)")
    parser.add_argument("--workers", type=int, default=None,
                        help="processes simulating the campaign (default: "
                             "REPRO_WORKERS or serial); results identical")
    args = parser.parse_args()

    start = time.time()
    dataset = controlled_dataset(n_instances=args.instances,
                                 workers=args.workers, verbose=True)
    print(f"\ndataset ready in {time.time() - start:.0f}s: "
          f"{len(dataset)} instances / {len(dataset.feature_names)} features")
    print(f"severity distribution: {dataset.label_counts('severity')}")
    print(f"(paper: 3919 total -- 3125 good, 450 mild, 344 severe)\n")

    for title, runner in [
        ("Table 1", lambda: run_selection(dataset)),
        ("Figure 3 / Section 5.1", lambda: run_detection(dataset)),
        ("Section 5.2", lambda: run_location(dataset)),
        ("Figure 4 / Table 4 / Section 5.3", lambda: run_exact(dataset)),
        ("Figure 5 / Section 5.4", lambda: run_feature_sets(dataset)),
        ("FC/FS ablation", lambda: run_fc_fs_ablation(dataset)),
        ("Classifier comparison", lambda: run_classifier_comparison(dataset)),
    ]:
        t0 = time.time()
        result = runner()
        print(f"\n######## {title} ({time.time() - t0:.0f}s) ########")
        print(result.to_text())


if __name__ == "__main__":
    main()

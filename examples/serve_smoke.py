#!/usr/bin/env python
"""Smoke-test the serving layer end to end, the way an operator would.

Boots ``python -m repro serve`` as a real subprocess on an ephemeral
port, waits for ``/healthz``, checks ``/readyz``, posts one session
record to ``/v1/diagnose``, then sends SIGTERM and asserts a clean
drain (exit code 0).  Exits non-zero on any failure, so CI can run it
as a gate.

Run:  python examples/serve_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import pickle
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.api import REQUEST_SCHEMA, RESPONSE_SCHEMA
from repro.core.dataset import Dataset
from repro.pipeline.records import record_to_dict
from repro.testbed.campaign import CampaignConfig, run_campaign

BOOT_TIMEOUT_S = 120.0
DRAIN_TIMEOUT_S = 15.0


def request(port: int, method: str, path: str, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        data = response.read()
        return response.status, json.loads(data) if data else None
    finally:
        conn.close()


def main() -> int:
    print("=== 1. Simulating a tiny training campaign ===")
    records = run_campaign(CampaignConfig(
        n_instances=24, seed=77, video_duration_range=(10.0, 14.0),
    ))
    with tempfile.TemporaryDirectory() as tmp:
        train = Path(tmp) / "train.pkl"
        with train.open("wb") as fh:
            pickle.dump(Dataset.from_records(records), fh)

        print("=== 2. Booting `repro serve` as a subprocess ===")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--train", str(train),
             "--port", "0", "--json"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            startup = json.loads(proc.stdout.readline())
            assert startup["schema"] == "repro-serve-v1", startup
            port = startup["data"]["port"]
            print(f"serving on port {port} "
                  f"(model {startup['data']['active']})")

            deadline = time.time() + BOOT_TIMEOUT_S
            while True:
                try:
                    status, _ = request(port, "GET", "/healthz")
                    if status == 200:
                        break
                except OSError:
                    pass
                assert time.time() < deadline, "server never became healthy"
                time.sleep(0.05)

            print("=== 3. Probing the endpoints ===")
            status, body = request(port, "GET", "/readyz")
            assert status == 200 and body["status"] == "ready", (status, body)
            print(f"readyz: {body}")

            status, body = request(port, "POST", "/v1/diagnose", {
                "schema": REQUEST_SCHEMA,
                "records": [record_to_dict(records[0])],
            })
            assert status == 200, (status, body)
            assert body["schema"] == RESPONSE_SCHEMA, body
            diagnosis = body["diagnoses"][0]
            print(f"diagnosis: severity={diagnosis['severity']} "
                  f"exact={diagnosis['exact']}")

            print("=== 4. SIGTERM -> graceful drain ===")
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=DRAIN_TIMEOUT_S)
            assert rc == 0, f"server exited {rc}, want 0"
            print("drained cleanly, exit 0")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    print("\nserve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Capture-now, diagnose-later: traces + a shipped model.

Real deployments rarely run the classifier on the measurement box.  The
tstat-style workflow is: capture packet traces at the vantage point, ship
them (or the flow summaries) to an analysis host, and diagnose there with
a model trained elsewhere.  This example runs that full loop:

1. a session is streamed while a TraceRecorder captures the phone's NIC;
2. the lab-trained analyzer is saved to JSON (no pickled code) and
   "shipped";
3. on the "analysis host", the trace is replayed offline through a fresh
   tstat probe, features are rebuilt and the reloaded analyzer diagnoses.

Run:  python examples/trace_analysis.py
"""

import random
import tempfile
from pathlib import Path

from repro import RootCauseAnalyzer, Testbed, TestbedConfig, VideoCatalog
from repro.experiments.common import controlled_dataset, scaled
from repro.faults import make_fault
from repro.probes.tstat import TstatProbe
from repro.simnet.engine import Simulator
from repro.simnet.trace import PacketTrace, TraceRecorder


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))

    print("=== measurement box: capture one faulty session ===")
    bed = Testbed(TestbedConfig(seed=909))
    recorder = TraceRecorder(bed.phone.interfaces["wlan0"],
                             description="phone capture")
    catalog = VideoCatalog(size=20, duration_range=(18, 35), seed=13)
    rng = random.Random(909)
    fault = make_fault("wan_shaping", "severe", rng)
    record = bed.run_video_session(catalog.pick(rng), fault=fault)
    trace = recorder.detach()
    bed.shutdown()
    trace_path = workdir / "session.trace"
    trace.save(trace_path)
    print(f"captured {len(trace)} packets -> {trace_path}")
    print(f"session truth: fault=wan_shaping/severe  MOS={record.mos:.2f}")

    print("\n=== lab: train once, ship the model as JSON ===")
    dataset = controlled_dataset(n_instances=scaled(160), verbose=True)
    analyzer = RootCauseAnalyzer(vps=("mobile",)).fit(dataset)
    model_path = workdir / "analyzer.json"
    analyzer.save(model_path)
    print(f"model shipped -> {model_path} "
          f"({model_path.stat().st_size // 1024} kB of JSON)")

    print("\n=== analysis host: offline tstat + reloaded model ===")
    loaded_trace = PacketTrace.load(trace_path)
    offline_probe = TstatProbe(Simulator(), "offline")
    loaded_trace.replay_into(offline_probe)
    video_flow = max(
        loaded_trace.flows(),
        key=lambda k: offline_probe.metrics_for(k)["total_bytes"],
    )
    tcp_features = {
        f"mobile_tcp_{k}": v
        for k, v in offline_probe.metrics_for(video_flow).items()
    }
    # Hardware/radio summaries travel alongside the trace in practice;
    # here we take them from the original record.
    side_channel = {k: v for k, v in record.features.items()
                    if not k.startswith("mobile_tcp_")
                    and k.startswith("mobile_")}
    features = {**tcp_features, **side_channel}

    shipped = RootCauseAnalyzer.load(model_path)
    report = shipped.diagnose(features,
                              session_s=record.meta.get("session_s"))
    print(f"offline diagnosis: {report.summary()}")
    print(f"(injected truth:  wan_shaping / severe)")


if __name__ == "__main__":
    main()

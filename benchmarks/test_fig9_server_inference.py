"""Figure 9: the server VP's device-state inferences vs ground truth.

The paper shows that sessions the *server* flags as "mobile load" have a
genuinely higher device-CPU distribution, and sessions it flags as "low
RSSI" have genuinely lower signal -- although the server only ever sees
TCP behaviour.  We reproduce the separation of the two distributions.
"""

import math

from benchmarks.conftest import run_once
from repro.experiments.wild import run_server_inference


def test_fig9_server_inference(benchmark, controlled, wild, report):
    result = run_once(benchmark, run_server_inference, controlled, wild)
    report("fig9_server_inference", result.to_text())

    # CPU: flagged sessions show higher true device CPU ...
    if result.cpu_flagged:
        assert result.cpu_separation > 0.0, result.to_text()
    # ... RSSI: flagged sessions show lower true signal.
    if result.rssi_flagged:
        assert result.rssi_separation < 0.0, result.to_text()
    # The unflagged population is always present and well-defined.
    assert len(result.cpu_unflagged) > 0
    assert not math.isnan(result.cpu_unflagged[0])

"""Table 5: root-cause predictions over the wild dataset.

The lab exact-cause model labels every wild session; the paper reports
most problems in the user's local network, few wireless-medium cases, a
noticeable mobile-load share, and ~85% accuracy on the good instances.
"""

from benchmarks.conftest import run_once
from repro.experiments.wild import run_wild_rca


def test_table5_wild_rca(benchmark, controlled, wild, report):
    result = run_once(benchmark, run_wild_rca, controlled, wild)
    report("table5_wild_rca", result.to_text())

    assert result.n_sessions == len(wild)
    # Good instances are recognised with high accuracy (paper: 85%).
    assert result.good_accuracy > 0.7, result.good_accuracy
    # The majority of sessions are predicted healthy.
    good_count = sum(result.counts.get("good", {}).values())
    assert good_count > result.n_sessions * 0.5
    # Some non-trivial spread of causes is predicted.
    causes = [c for c in result.counts if c != "good"]
    assert len(causes) >= 2, result.counts

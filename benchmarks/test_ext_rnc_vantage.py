"""Extension (Section 6.2): an RNC vantage point on cellular paths.

"This effect can be minimized by introducing more VPs (e.g., on 3G RNCs)
in order to get more fine grain information."  A labelled cellular
campaign is evaluated with and without the RNC's bearer-level features.
"""

from benchmarks.conftest import run_once
from repro.experiments.rnc import cellular_dataset, run_rnc_extension


def test_ext_rnc_vantage(benchmark, report):
    dataset = cellular_dataset(verbose=True)
    result = run_once(benchmark, run_rnc_extension, dataset)
    report("ext_rnc_vantage", result.to_text())

    acc = result.accuracies
    assert set(acc) == {"mobile", "server", "rnc", "mobile+server",
                        "mobile+server+rnc"}
    # Each VP is useful on its own ...
    assert min(acc.values()) > 0.5, acc
    # ... and the RNC does not hurt the combination (the paper expects a
    # gain; we assert it is at least neutral to avoid seed flakiness).
    assert result.rnc_gain > -0.05, acc

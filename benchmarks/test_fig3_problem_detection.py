"""Figure 3 / Section 5.1: detecting the existence of a problem.

Paper accuracies: mobile 88.1%, router 86.4%, server 85.6%, combined
88.8% -- i.e. every vantage point alone detects problems with high
accuracy; good sessions are recognised almost perfectly; mild-vs-severe is
where single VPs struggle.
"""

from benchmarks.conftest import run_once
from repro.experiments.detection import run_detection


def test_fig3_problem_detection(benchmark, controlled, report):
    result = run_once(benchmark, run_detection, controlled)
    report("fig3_problem_detection", result.to_text())

    acc = result.accuracies
    # Shape: every VP detects problems far above the majority baseline.
    for name in ("mobile", "router", "server", "combined"):
        assert acc[name] > 0.7, f"{name} accuracy collapsed: {acc[name]:.2f}"
    # Good sessions are identified with very high precision/recall.
    bars = result.bars()
    for vp, stats in bars["good"].items():
        assert stats["recall"] > 0.8, (vp, stats)
    # Mild problems are the hardest class for every vantage point.
    for vp in ("mobile", "router", "server"):
        assert bars["mild"][vp]["recall"] <= bars["good"][vp]["recall"]

"""Section 4 / Section 6 dataset composition vs the paper.

Paper datasets: controlled 3919 (3125 good / 450 mild / 344 severe),
real-world induced 2619 (1962 / 463 / 194), wild 3495 (2940 good / 555
problematic).  Ours are scaled down but must keep the same character:
good-majority, mild and severe both present, every fault class populated.
"""

from benchmarks.conftest import run_once


def _describe(name, ds):
    sev = ds.label_counts("severity")
    lines = [f"{name}: {len(ds)} instances, {len(ds.feature_names)} features"]
    lines.append(f"  severity: {sev}")
    lines.append(f"  exact:    {ds.label_counts('exact')}")
    return "\n".join(lines), sev


def test_dataset_composition(benchmark, controlled, realworld, wild, report):
    def describe_all():
        blocks = []
        for name, ds in (("controlled", controlled),
                         ("realworld", realworld), ("wild", wild)):
            text, _sev = _describe(name, ds)
            blocks.append(text)
        return "\n".join(blocks)

    text = run_once(benchmark, describe_all)
    report("dataset_composition", text)

    for name, ds in (("controlled", controlled), ("realworld", realworld),
                     ("wild", wild)):
        sev = ds.label_counts("severity")
        assert sev.get("good", 0) > len(ds) * 0.4, (name, sev)
        assert sev.get("mild", 0) > 0 and sev.get("severe", 0) > 0, (name, sev)
    # The controlled campaign populates every fault class (Figure 4's rows).
    exact = controlled.label_counts("exact")
    populated = {label.rsplit("_", 1)[0] for label in exact if label != "good"}
    assert len(populated) == 7, exact
    # The feature space approaches the paper's 354 metrics.
    assert len(controlled.feature_names) > 300

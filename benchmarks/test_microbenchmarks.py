"""Component micro-benchmarks: simulator, probe and learner throughput.

These are classic repeated-timing pytest-benchmark cases (unlike the
figure reproductions, which run once over the cached datasets).  They
guard the hot paths: the event loop, the TCP stack, the passive tstat
pipeline, C4.5 training, the two throughput-layer paths -- vectorized
batch diagnosis and the parallel campaign engine -- and the streaming
pipeline's constant-memory contract (peak RSS of a spooled campaign vs
the materialized batch path).
"""

import gc
import multiprocessing
import os
import resource
import time
import tracemalloc

import numpy as np
import pytest

from repro.core.dataset import Dataset, Instance
from repro.core.diagnosis import RootCauseAnalyzer
from repro.ml.tree import C45Tree
from repro.probes.tstat import TstatProbe
from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, wire
from repro.simnet.packet import Packet, UDP
from repro.simnet.tcp import TcpServer, open_connection
from repro.testbed.campaign import CampaignConfig, run_campaign


def test_event_loop_throughput(benchmark):
    """Schedule+dispatch cost of the bare event loop (100k events)."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 100_000


def _tcp_transfer(size):
    sim = Simulator(seed=1)
    a = Host(sim, "a")
    b = Host(sim, "b")
    wire(sim, a, "eth0", b, "eth0",
         Channel(sim, "f", 100e6, delay=0.005),
         Channel(sim, "b", 100e6, delay=0.005))
    a.set_default_route(a.interfaces["eth0"])
    b.set_default_route(b.interfaces["eth0"])
    got = [0]

    def on_conn(ep):
        ep.on_data = lambda n, t: (ep.send(size), ep.close())

    TcpServer(sim, b, 80, on_conn)
    client = open_connection(sim, a, "b", 80)
    client.on_established = lambda: client.send(300)
    client.on_data = lambda n, t: got.__setitem__(0, got[0] + n)
    client.connect()
    sim.run(until=120.0)
    return got[0]


def test_tcp_stack_throughput(benchmark):
    """Full-stack cost of a 2 MB TCP transfer (packets, ACKs, timers)."""
    assert benchmark(_tcp_transfer, 2_000_000) == 2_000_000


def test_tstat_per_packet_cost(benchmark):
    """Passive flow analysis cost over a synthetic 10k-packet stream."""
    probe = TstatProbe(Simulator())
    packets = []
    seq = 0
    for i in range(10_000):
        packets.append(Packet(src="c", dst="s", sport=1000, dport=80,
                              payload_len=1460, seq=seq, flags=0x10))
        seq += 1460

    def run():
        probe.reset()
        for i, pkt in enumerate(packets):
            probe._observe(pkt, "rx", i * 0.001)
        return len(probe.flows)

    assert benchmark(run) == 1


# ------------------------------------------------ throughput-layer guards


def _probe_feature_names():
    """A realistic multi-VP feature universe (~180 raw features)."""
    names = []
    for vp in ("mobile", "router", "server"):
        for direction in ("c2s", "s2c"):
            names += [f"{vp}_tcp_{direction}_{counter}" for counter in (
                "pkts", "bytes", "data_pkts", "retx_pkts", "ooo_pkts",
                "reordered_pkts", "pure_acks", "dup_acks", "sack_acks",
                "data_bytes", "retx_bytes", "unique_bytes")]
        names += [f"{vp}_tcp_rtt_avg", f"{vp}_tcp_rtt_max",
                  f"{vp}_tcp_flow_duration",
                  f"{vp}_link_tx_rate", f"{vp}_link_rx_rate",
                  f"{vp}_hw_cpu_avg", f"{vp}_hw_mem_avg"]
        names += [f"{vp}_tcp_extra_{i}" for i in range(30)]
    return names


def _synthetic_analyzer_and_sessions(n_sessions=1000):
    names = _probe_feature_names()
    rng = np.random.default_rng(0)

    def features():
        return {n: float(v) for n, v in zip(names, rng.uniform(0, 100, len(names)))}

    def labels(f):
        rtt = f["mobile_tcp_rtt_avg"]
        if rtt < 33:
            return "good", "good", "good"
        if rtt < 66:
            return "mild", "wan_mild", "wan_congestion_mild"
        return "severe", "lan_severe", "wifi_interference_severe"

    train = []
    for _ in range(80):
        f = features()
        severity, location, exact = labels(f)
        train.append(Instance(
            features=f,
            labels={"severity": severity, "location": location,
                    "exact": exact,
                    "existence": "good" if severity == "good" else "problematic"},
            meta={"session_s": 30.0},
        ))
    analyzer = RootCauseAnalyzer(select=False).fit(Dataset(train))
    sessions = [
        Instance(features=features(), labels={},
                 meta={"session_s": 25.0 + (i % 10)})
        for i in range(n_sessions)
    ]
    return analyzer, sessions


def test_batch_diagnosis_speedup():
    """``diagnose_batch`` must beat looped ``diagnose`` by a wide margin.

    The acceptance bar is 10x on 1000 synthetic sessions; CI can relax it
    via ``REPRO_BATCH_SPEEDUP_MIN`` (shared runners are noisy) without
    letting the vectorized path regress to per-session cost.
    """
    minimum = float(os.environ.get("REPRO_BATCH_SPEEDUP_MIN", "10"))
    analyzer, sessions = _synthetic_analyzer_and_sessions()
    analyzer.diagnose_batch(sessions)  # warm caches

    start = time.perf_counter()
    looped = [analyzer.diagnose(session) for session in sessions]
    loop_s = time.perf_counter() - start

    batch_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batched = analyzer.diagnose_batch(sessions)
        batch_s = min(batch_s, time.perf_counter() - start)

    assert [(r.severity, r.location, r.exact) for r in looped] == \
           [(r.severity, r.location, r.exact) for r in batched]
    speedup = loop_s / batch_s
    print(f"\nbatch diagnosis: loop {loop_s * 1e3:.0f}ms, "
          f"batch {batch_s * 1e3:.0f}ms, speedup {speedup:.1f}x")
    assert speedup >= minimum, (
        f"diagnose_batch only {speedup:.1f}x faster (need {minimum:.0f}x)"
    )


def test_parallel_campaign_scaling():
    """``run_campaign(workers=N)`` must cut wall clock on a multi-core box
    while producing records identical to the serial run."""
    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip("needs at least 2 cores to measure scaling")
    workers = min(4, cpus)
    minimum = float(os.environ.get("REPRO_PARALLEL_SPEEDUP_MIN", "1.15"))
    config = CampaignConfig(n_instances=8, seed=123,
                            video_duration_range=(8.0, 10.0))

    start = time.perf_counter()
    serial = run_campaign(config, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_campaign(config, workers=workers)
    parallel_s = time.perf_counter() - start

    assert [r.features for r in serial] == [r.features for r in parallel]
    assert [r.meta for r in serial] == [r.meta for r in parallel]
    speedup = serial_s / parallel_s
    print(f"\nparallel campaign: serial {serial_s:.1f}s, "
          f"{workers} workers {parallel_s:.1f}s, speedup {speedup:.1f}x")
    assert speedup >= minimum, (
        f"parallel campaign only {speedup:.2f}x faster with {workers} workers"
    )


def _measure_in_child(fn):
    """Run ``fn`` in a forked child; return (heap_peak_bytes, rss_kb, result).

    Forking gives both modes an identical memory baseline (same parent
    image, same imports), so the numbers are comparable.  ``tracemalloc``
    provides the deterministic Python-heap peak the assertion uses;
    ``ru_maxrss`` is recorded alongside as the operational number.
    """
    ctx = multiprocessing.get_context("fork")
    queue = ctx.SimpleQueue()

    def task():
        gc.collect()
        tracemalloc.start()
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        queue.put((peak, rss_kb, result))

    proc = ctx.Process(target=task)
    proc.start()
    measurement = queue.get()
    proc.join()
    assert proc.exitcode == 0
    return measurement


def test_streaming_campaign_memory(report, tmp_path):
    """The streaming pipeline must beat the batch path on peak memory.

    Batch materializes every record and then the dataset on top;
    streaming spools records to disk as they are simulated and keeps one
    in flight.  The gap therefore grows with the campaign length.  The
    recorded reference run is 200 instances (``REPRO_RSS_INSTANCES``
    shrinks it for CI); the acceptance bar is the Python-heap peak ratio
    (``REPRO_RSS_ADVANTAGE_MIN``, default 1.05 -- i.e. batch must peak at
    least 5% above streaming).
    """
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        pytest.skip("needs fork to compare modes from one baseline")
    n = int(os.environ.get("REPRO_RSS_INSTANCES", "200"))
    minimum = float(os.environ.get("REPRO_RSS_ADVANTAGE_MIN", "1.05"))
    config = CampaignConfig(n_instances=n, seed=321,
                            video_duration_range=(10.0, 14.0))
    spool = tmp_path / "campaign.jsonl"

    def batch_mode():
        records = run_campaign(config)
        dataset = Dataset.from_records(records)
        return len(dataset)

    def streaming_mode():
        from repro.pipeline import CampaignSource, CountSink, JsonlSink, Pipeline

        result = Pipeline(
            CampaignSource(config), JsonlSink(spool), CountSink()
        ).run()
        return result["count"]

    batch_peak, batch_rss, batch_n = _measure_in_child(batch_mode)
    stream_peak, stream_rss, stream_n = _measure_in_child(streaming_mode)

    assert batch_n == stream_n == n
    ratio = batch_peak / stream_peak
    report("streaming_memory", "\n".join([
        f"streaming pipeline memory floor ({n}-instance campaign)",
        f"  batch      peak heap {batch_peak / 1e6:8.2f} MB   "
        f"peak RSS {batch_rss / 1024:7.1f} MB",
        f"  streaming  peak heap {stream_peak / 1e6:8.2f} MB   "
        f"peak RSS {stream_rss / 1024:7.1f} MB",
        f"  batch/streaming heap ratio: {ratio:.2f}x",
    ]))
    assert ratio >= minimum, (
        f"streaming peak heap only {ratio:.2f}x below batch (need {minimum:.2f}x)"
    )


def test_telemetry_overhead(report):
    """Tracing a campaign must cost <5% wall clock and change no record.

    The observability contract: with the registry disabled every
    instrument call is a constant-cost early return (measured here in
    ns/call), and with it enabled the span/counter bookkeeping stays
    under ``REPRO_TRACE_OVERHEAD_MAX`` (default 0.05) of the campaign's
    wall clock — while the records stay bit-identical either way.
    ``REPRO_TRACE_INSTANCES`` shrinks the reference campaign for CI.
    """
    from repro.obs.telemetry import Telemetry, get_telemetry, tracing

    n = int(os.environ.get("REPRO_TRACE_INSTANCES", "30"))
    max_overhead = float(os.environ.get("REPRO_TRACE_OVERHEAD_MAX", "0.05"))
    config = CampaignConfig(n_instances=n, seed=555,
                            video_duration_range=(8.0, 10.0))

    run_campaign(CampaignConfig(n_instances=2, seed=555))  # warm imports

    # alternate modes so clock drift hits both equally; keep the best of each
    untraced_s = traced_s = float("inf")
    untraced_records = traced_records = None
    for _ in range(2):
        start = time.perf_counter()
        records = run_campaign(config)
        untraced_s = min(untraced_s, time.perf_counter() - start)
        untraced_records = records

        with tracing() as tel:
            start = time.perf_counter()
            records = run_campaign(config)
            traced_s = min(traced_s, time.perf_counter() - start)
            traced_records = records
            spans = len(tel.spans)
        get_telemetry().reset()

    assert ([r.features for r in traced_records]
            == [r.features for r in untraced_records])
    assert ([r.meta for r in traced_records]
            == [r.meta for r in untraced_records])

    # disabled-path cost: one span + one count per loop, on a dead registry
    disabled = Telemetry()
    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        with disabled.span("hot"):
            pass
        disabled.count("hot")
    ns_per_call = (time.perf_counter() - start) / (2 * calls) * 1e9

    overhead = traced_s / untraced_s - 1.0
    report("telemetry_overhead", "\n".join([
        f"telemetry overhead ({n}-instance campaign, {spans} spans)",
        f"  untraced  {untraced_s:7.2f}s",
        f"  traced    {traced_s:7.2f}s   overhead {overhead * 100:+.2f}%",
        f"  disabled instrument call: {ns_per_call:.0f} ns",
        "  records bit-identical: yes",
    ]))
    assert spans >= n  # one campaign.instance span per instance, at least
    assert overhead <= max_overhead, (
        f"tracing cost {overhead * 100:.1f}% wall clock "
        f"(budget {max_overhead * 100:.0f}%)"
    )


def test_c45_training_speed(benchmark):
    """C4.5 on a 1000x50 matrix with 5 classes."""
    rng = np.random.default_rng(0)
    X = rng.normal(0, 1, (1000, 50))
    y = rng.integers(0, 5, 1000)
    X[:, 0] += y * 1.5
    X[:, 1] -= y * 0.7
    labels = y.astype(str)

    tree = benchmark(lambda: C45Tree().fit(X, labels))
    assert tree.n_nodes >= 1

"""Component micro-benchmarks: simulator, probe and learner throughput.

These are classic repeated-timing pytest-benchmark cases (unlike the
figure reproductions, which run once over the cached datasets).  They
guard the hot paths: the event loop, the TCP stack, the passive tstat
pipeline and C4.5 training.
"""

import numpy as np

from repro.ml.tree import C45Tree
from repro.probes.tstat import TstatProbe
from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, wire
from repro.simnet.packet import Packet, UDP
from repro.simnet.tcp import TcpServer, open_connection


def test_event_loop_throughput(benchmark):
    """Schedule+dispatch cost of the bare event loop (100k events)."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 100_000


def _tcp_transfer(size):
    sim = Simulator(seed=1)
    a = Host(sim, "a")
    b = Host(sim, "b")
    wire(sim, a, "eth0", b, "eth0",
         Channel(sim, "f", 100e6, delay=0.005),
         Channel(sim, "b", 100e6, delay=0.005))
    a.set_default_route(a.interfaces["eth0"])
    b.set_default_route(b.interfaces["eth0"])
    got = [0]

    def on_conn(ep):
        ep.on_data = lambda n, t: (ep.send(size), ep.close())

    TcpServer(sim, b, 80, on_conn)
    client = open_connection(sim, a, "b", 80)
    client.on_established = lambda: client.send(300)
    client.on_data = lambda n, t: got.__setitem__(0, got[0] + n)
    client.connect()
    sim.run(until=120.0)
    return got[0]


def test_tcp_stack_throughput(benchmark):
    """Full-stack cost of a 2 MB TCP transfer (packets, ACKs, timers)."""
    assert benchmark(_tcp_transfer, 2_000_000) == 2_000_000


def test_tstat_per_packet_cost(benchmark):
    """Passive flow analysis cost over a synthetic 10k-packet stream."""
    probe = TstatProbe(Simulator())
    packets = []
    seq = 0
    for i in range(10_000):
        packets.append(Packet(src="c", dst="s", sport=1000, dport=80,
                              payload_len=1460, seq=seq, flags=0x10))
        seq += 1460

    def run():
        probe.reset()
        for i, pkt in enumerate(packets):
            probe._observe(pkt, "rx", i * 0.001)
        return len(probe.flows)

    assert benchmark(run) == 1


def test_c45_training_speed(benchmark):
    """C4.5 on a 1000x50 matrix with 5 classes."""
    rng = np.random.default_rng(0)
    X = rng.normal(0, 1, (1000, 50))
    y = rng.integers(0, 5, 1000)
    X[:, 0] += y * 1.5
    X[:, 1] -= y * 0.7
    labels = y.astype(str)

    tree = benchmark(lambda: C45Tree().fit(X, labels))
    assert tree.n_nodes >= 1

"""Figure 5 / Section 5.4: accuracy per feature set.

Paper ordering: RSSI-only and hardware-only < 35%, utilisation ~55%,
delay ~70%, all features ~75%, FS+FC > 80%.  The *ordering* (single
narrow families < delay < everything < the engineered pipeline) is the
reproduced shape.
"""

from benchmarks.conftest import run_once
from repro.experiments.feature_sets import run_feature_sets, run_fc_fs_ablation


def test_fig5_feature_sets(benchmark, controlled, report):
    result = run_once(benchmark, run_feature_sets, controlled)
    report("fig5_feature_sets", result.to_text())

    acc = result.accuracies
    # RSSI alone is the weakest input, as in the paper.
    assert acc["rssi"] == min(acc.values()), acc
    # Narrow single-family inputs are far weaker than the full pipeline.
    assert acc["rssi"] < acc["fs_fc"] - 0.1
    assert acc["hw"] < acc["all"] - 0.03
    assert acc["utilization"] < acc["delay"] + 0.02
    # Delay features alone already carry a lot of signal.
    assert acc["delay"] > acc["rssi"] + 0.1
    assert acc["delay"] < acc["all"] + 0.02
    # The engineered pipeline is at least on par with raw everything,
    # using an order of magnitude fewer features.
    assert acc["fs_fc"] >= acc["all"] - 0.04
    nfeat_fs = len(result.results["fs_fc"].selected_features)
    nfeat_all = len(result.results["all"].selected_features)
    assert nfeat_fs < nfeat_all / 5


def test_ablation_fc_fs(benchmark, controlled, report):
    result = run_once(benchmark, run_fc_fs_ablation, controlled)
    report("ablation_fc_fs", result.to_text())
    acc = result.accuracies
    # Section 5.4: FS+FC together do not hurt, and dramatically shrink the
    # model's input space.
    assert acc["fc_fs"] >= acc["raw"] - 0.04
    nfeat_full = len(result.results["fc_fs"].selected_features)
    nfeat_raw = len(result.results["raw"].selected_features)
    assert nfeat_full < nfeat_raw / 4

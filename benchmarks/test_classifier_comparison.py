"""Section 3.2 ablation: C4.5 vs Naive Bayes vs linear SVM.

The paper: "Decision Trees outperformed other algorithms like Naive Bayes
and Support Vector Machines which we also evaluated with our datasets."
"""

from benchmarks.conftest import run_once
from repro.experiments.classifiers import run_classifier_comparison


def test_classifier_comparison(benchmark, controlled, report):
    result = run_once(benchmark, run_classifier_comparison, controlled)
    report("classifier_comparison", result.to_text())

    acc = result.accuracies
    # The tree is the best (or statistically tied-best) learner here.
    assert acc["c45"] >= max(acc["nb"], acc["svm"]) - 0.02, acc
    # All learners clear a sanity floor on the engineered features.
    assert min(acc.values()) > 0.4, acc

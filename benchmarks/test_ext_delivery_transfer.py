"""Extension (Section 2): delivery-mechanism agnosticism.

The system must work across "static or adaptive streaming, pacing and so
on".  In this simulator the paced-delivery transport signature is stark,
so a model trained on Apache-only sessions collapses on YouTube-paced
ones -- which is precisely why the default training campaign mixes
delivery modes (see DESIGN.md, "Known deviations").  The ablation
quantifies both the collapse and the recovery.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import (
    controlled_apache_dataset,
    controlled_youtube_dataset,
)
from repro.experiments.extensions import run_delivery_transfer


def test_ext_delivery_transfer(benchmark, controlled, report):
    apache = controlled_apache_dataset(verbose=True)
    youtube = controlled_youtube_dataset(verbose=True)
    result = run_once(
        benchmark, run_delivery_transfer, apache, youtube, mixed=controlled
    )
    report("ext_delivery_transfer", result.to_text())

    # In-distribution the apache model is strong ...
    assert result.accuracy_same > 0.7
    # ... single-delivery training degrades off-distribution ...
    assert result.accuracy_cross < result.accuracy_same
    # ... and mixed-delivery training restores most of the accuracy:
    # the Section 2 agnosticism, achieved by training-data diversity.
    assert result.accuracy_mixed > result.accuracy_cross + 0.1
    assert result.accuracy_mixed > 0.6

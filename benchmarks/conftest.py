"""Shared benchmark fixtures.

All benchmarks draw from three disk-cached datasets (controlled,
real-world-induced, wild) so that the expensive simulation runs once per
configuration; each figure/table then re-analyses the same data, exactly
as the paper does.  Rendered result tables are written to
``benchmarks/reports/`` and printed, so a ``pytest benchmarks/
--benchmark-only`` run leaves the full reproduction record behind.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import (
    controlled_dataset,
    realworld_dataset,
    wild_dataset,
)

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def controlled():
    return controlled_dataset(verbose=True)


@pytest.fixture(scope="session")
def realworld():
    return realworld_dataset(verbose=True)


@pytest.fixture(scope="session")
def wild():
    return wild_dataset(verbose=True)


@pytest.fixture(scope="session")
def report():
    REPORT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n", flush=True)

    return write


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a heavy analysis exactly once (no warmup rounds)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

"""Figure 4 / Section 5.3: identifying the exact problem.

Paper accuracies: mobile 88.18%, router 85.74%, server 84.2%, combined
88.95%.  Characteristic blind spots: router/server cannot see mobile load
(no CPU/memory) and are weak on mild interference (no RSSI); the mobile VP
sees local problems best.
"""

from benchmarks.conftest import run_once
from repro.experiments.exact import run_exact


def _class_recall(result, vp, prefix):
    """Pooled recall of all labels starting with ``prefix`` for ``vp``."""
    cm = result.results[vp].confusion
    hits = total = 0
    for label in cm.labels:
        if not str(label).startswith(prefix):
            continue
        i = cm._index[label]
        total += cm.matrix[i].sum()
        hits += sum(
            cm.matrix[i, cm._index[p]]
            for p in cm.labels
            if str(p).startswith(prefix)
        )
    return hits / total if total else None


def test_fig4_exact_problem(benchmark, controlled, report):
    result = run_once(benchmark, run_exact, controlled)
    report("fig4_exact_problem", result.to_text())

    acc = result.accuracies
    for name in ("mobile", "router", "server", "combined"):
        assert acc[name] > 0.65, f"{name}: {acc[name]:.2f}"

    # The mobile VP dominates router/server on device-local problems.
    mobile_load_mobile = _class_recall(result, "mobile", "mobile_load")
    mobile_load_router = _class_recall(result, "router", "mobile_load")
    mobile_load_server = _class_recall(result, "server", "mobile_load")
    if mobile_load_mobile is not None:
        assert mobile_load_mobile >= max(
            mobile_load_router or 0.0, mobile_load_server or 0.0
        ) - 0.05, (mobile_load_mobile, mobile_load_router, mobile_load_server)


def test_fig4_mobile_matches_combined(benchmark, controlled):
    """The paper's takeaway: the phone alone nearly matches all three VPs."""
    result = run_once(benchmark, run_exact, controlled, with_feature_table=False)
    assert result.accuracies["mobile"] > result.accuracies["combined"] - 0.08

"""Lint v2 runtime benchmark with a committed baseline.

Measures the three configurations the incremental engine is judged by,
all over the real ``src/repro`` tree:

* **cold sequential** — ``jobs=1``, no cache: the Lint v1 cost model;
* **cold parallel** — ``jobs=cpu_count``, no cache: the fan-out win
  (informational on single-core CI runners);
* **warm cache** — second run against a populated ``.repro-lint-cache``:
  every file served by content hash, only the global passes re-run.

Results land twice: ``benchmarks/reports/lint_runtime.txt`` for humans
and ``BENCH_lint.json`` at the repo root for machines.  The run fails
when the warm/cold speedup falls below ``REPRO_LINT_WARM_SPEEDUP_MIN``
(default 3.0) — the committed JSON records the last accepted numbers.
The three runs must also agree finding-for-finding, which doubles as an
end-to-end equivalence check on real code.
"""

import json
import os
import platform
import time
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.project_model import default_jobs

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
BENCH_JSON = ROOT / "BENCH_lint.json"


def _run(jobs, cache_dir):
    start = time.perf_counter()
    result = lint_paths(
        [SRC],
        root=ROOT,
        baseline_path=ROOT / "lint-baseline.json",
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return result, time.perf_counter() - start


def _best_of(n, jobs, cache_dir=None):
    best_result, best_s = None, float("inf")
    for _ in range(n):
        result, elapsed = _run(jobs, cache_dir)
        if elapsed < best_s:
            best_result, best_s = result, elapsed
    return best_result, best_s


def test_lint_runtime(report, tmp_path):
    speedup_min = float(os.environ.get("REPRO_LINT_WARM_SPEEDUP_MIN", "3.0"))
    jobs = default_jobs()
    baseline = (
        json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else None
    )

    cold_seq, cold_seq_s = _best_of(2, jobs=1)
    cold_par, cold_par_s = _best_of(2, jobs=jobs)

    cache_dir = tmp_path / "lint-cache"
    _run(jobs, cache_dir)  # populate
    warm, warm_s = _best_of(3, jobs=jobs, cache_dir=cache_dir)
    assert warm.files_reused == warm.files_checked

    # equivalence on real code rides along for free
    expected = [f.to_dict() for f in cold_seq.findings]
    assert [f.to_dict() for f in cold_par.findings] == expected
    assert [f.to_dict() for f in warm.findings] == expected
    assert cold_seq.ok, cold_seq.summary()

    speedup = cold_seq_s / warm_s
    result = {
        "schema": 1,
        "files": cold_seq.files_checked,
        "jobs": jobs,
        "cold_sequential_s": round(cold_seq_s, 4),
        "cold_parallel_s": round(cold_par_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(speedup, 2),
        "python": platform.python_version(),
    }
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")

    lines = [
        "lint v2 runtime (src/repro)",
        f"  cold jobs=1     {cold_seq_s * 1e3:8.1f} ms   "
        f"({cold_seq.files_checked} files, best of 2)",
        f"  cold jobs={jobs:<5d} {cold_par_s * 1e3:8.1f} ms",
        f"  warm cache      {warm_s * 1e3:8.1f} ms   "
        f"({warm.files_reused} files reused, best of 3)",
        f"  warm speedup    {speedup:8.1f} x   (floor {speedup_min:.1f}x)",
    ]
    if baseline is not None:
        lines.append(
            f"  baseline        {baseline['warm_speedup']:8.1f} x   "
            f"(cold {baseline['cold_sequential_s'] * 1e3:.1f} ms, "
            f"warm {baseline['warm_s'] * 1e3:.1f} ms)"
        )
    report("lint_runtime", "\n".join(lines))

    assert speedup >= speedup_min, (
        f"warm lint run is only {speedup:.1f}x faster than cold "
        f"(floor {speedup_min:.1f}x); the incremental cache regressed"
    )

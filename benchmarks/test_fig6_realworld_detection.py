"""Figure 6 / Section 6.1: lab-trained model, real network, induced faults.

Paper accuracies: mobile 88%, router 84%, server 81%, combined 88.1% --
the model trained entirely in the controlled environment keeps its
problem-detection power on a real wireless network.
"""

from benchmarks.conftest import run_once
from repro.experiments.realworld import run_realworld_detection


def test_fig6_realworld_detection(benchmark, controlled, realworld, report):
    result = run_once(benchmark, run_realworld_detection, controlled, realworld)
    report("fig6_realworld_detection", result.to_text())

    acc = result.accuracies
    # Transfer keeps detection well above the majority baseline for the
    # mobile VP and the combination (the paper's robustness claim).
    assert acc["mobile"] > 0.7, acc
    assert acc["combined"] > 0.7, acc
    assert acc["router"] > 0.6 and acc["server"] > 0.6, acc
    # Good sessions remain easy in the wild too.
    bars = result.bars()
    assert bars["good"]["mobile"]["recall"] > 0.75

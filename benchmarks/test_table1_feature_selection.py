"""Table 1: FCBF reduces the feature space to a small, utilisation- and
hardware-dominated set.

Paper: 354 features -> 22, with interface utilisations, mobile free
memory, mobile CPU and RSSI carrying the highest weights.
"""

from benchmarks.conftest import run_once
from repro.experiments.selection_table import run_selection


def test_table1_feature_selection(benchmark, controlled, report):
    result = run_once(benchmark, run_selection, controlled)
    report("table1_feature_selection", result.to_text())

    # Shape: a drastic reduction from the full feature space ...
    assert result.n_before > 250
    assert 8 <= result.n_after <= 60
    # ... that retains the paper's headline feature families.
    counts = result.category_counts()
    assert counts["utilization"] + counts["hardware"] + counts["rssi"] >= 1
    # Every vantage point contributes something to the combined model.
    by_vp = result.by_vantage_point()
    assert sum(bool(v) for v in by_vp.values()) >= 2

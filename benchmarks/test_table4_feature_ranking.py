"""Table 4: top-3 features per problem type per vantage point.

Paper shape: CPU/memory dominate mobile-load detection at the mobile VP
(router/server fall back to RTT); RSSI dominates the wireless faults at
the mobile VP; network faults rank utilisation / RTT / first-packet-
arrival / counters.
"""

from benchmarks.conftest import run_once
from repro.experiments.exact import feature_ranking_table


def test_table4_feature_ranking(benchmark, controlled, report):
    table = run_once(benchmark, feature_ranking_table, controlled)

    lines = ["== Table 4: top features per problem per VP =="]
    for label, per_vp in sorted(table.items()):
        lines.append(f"{label}:")
        for vp, ranked in per_vp.items():
            names = ", ".join(f"{n} ({g:.2f})" for n, g in ranked)
            lines.append(f"  {vp[0].upper()}: {names}")
    report("table4_feature_ranking", "\n".join(lines))

    # Mobile VP ranks hardware metrics highest for mobile load.
    mobile_load = [n for n, _ in table["mobile_load"]["mobile"]]
    assert any("_hw_" in n for n in mobile_load), mobile_load
    # Router/server have no hardware view of the phone.
    for vp in ("router", "server"):
        ranked = [n for n, _ in table["mobile_load"][vp]]
        assert not any("mobile_hw" in n for n in ranked)
    # RSSI leads low-RSSI detection at the mobile VP.
    low_rssi = [n for n, _ in table["low_rssi"]["mobile"]]
    assert any("rssi" in n or "radio" in n for n in low_rssi), low_rssi

"""Extension (Section 7): continuous training with labelled field data.

"As new data is being added to the training set, the system's accuracy
will continue to improve."  Folding real-world labelled sessions into the
lab training set should not hurt -- and typically helps -- accuracy on
held-out real-world sessions.
"""

from benchmarks.conftest import run_once
from repro.experiments.extensions import run_continuous_training


def test_ext_continuous_training(benchmark, controlled, realworld, report):
    result = run_once(
        benchmark, run_continuous_training, controlled, realworld,
    )
    report("ext_continuous_training", result.to_text())

    assert len(result.accuracies) == 4
    # Adding field data never collapses accuracy ...
    assert result.accuracies[-1] > result.accuracies[0] - 0.05
    # ... and the lab-only starting point is already useful.
    assert result.accuracies[0] > 0.6

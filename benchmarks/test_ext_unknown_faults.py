"""Extension (Section 7): behaviour on faults the model was never taught.

"One of the limitations of our system is the inability to detect faults
that it has not been trained for."  The experiment makes the limitation
measurable: unknown faults (DNS misconfiguration, middlebox interference)
are *detected* as problems at a decent rate, but their *names* are
necessarily mis-attributed to trained classes.
"""

from benchmarks.conftest import run_once
from repro.experiments.unknown_faults import run_unknown_faults


def test_ext_unknown_faults(benchmark, controlled, report):
    result = run_once(benchmark, run_unknown_faults, controlled, n_sessions=12)
    report("ext_unknown_faults", result.to_text())

    assert result.n_sessions == 12
    if result.n_degraded >= 3:
        # Anomalous features still trip the detector most of the time ...
        assert result.detection_rate > 0.5, result.to_text()
        # ... but every attribution is one of the *trained* vocabulary
        # (the limitation: the true causes are not nameable).
        for cause in result.attributions:
            assert cause not in ("dns_misconfiguration", "middlebox_interference")

"""Serving-layer load benchmark with a committed baseline.

Boots a real :class:`DiagnosisServer` (own event loop in a background
thread) and drives it closed-loop over keep-alive sockets from an
asyncio load generator: N concurrent connections, each posting one
``repro-diagnose-request-v1`` record and waiting for its response.
That shape is the worst case for the micro-batcher — every request is
a single record, so the measured throughput is pure coalescing win.

Results land twice: ``benchmarks/reports/serve_throughput.txt`` for
humans and ``BENCH_serve.json`` at the repo root for machines.  The run
*fails* below the acceptance floor (``REPRO_SERVE_RPS_MIN``, default
1000 req/s, and ``REPRO_SERVE_P99_MAX_MS``, default 100 ms); against
the committed JSON it only *reports* the trend — load numbers wobble
across CI machines, so the baseline delta is informational.  Workload
knobs: ``REPRO_SERVE_BENCH_SECONDS``, ``REPRO_SERVE_BENCH_CONNS``.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import threading
import time
from pathlib import Path

from repro.api import REQUEST_SCHEMA
from repro.core.dataset import Dataset
from repro.core.diagnosis import RootCauseAnalyzer
from repro.pipeline.records import record_to_dict
from repro.serve import DiagnosisServer, ModelRegistry, ServeConfig
from repro.testbed.campaign import CampaignConfig, run_campaign

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_serve.json"

WARMUP_S = 0.5


class _ServerThread:
    """A DiagnosisServer on its own loop, drained on close."""

    def __init__(self, analyzer: RootCauseAnalyzer, config: ServeConfig):
        registry = ModelRegistry()
        registry.register("bench", analyzer)
        self._config = config
        self._registry = registry
        self._started = threading.Event()
        self._stop: asyncio.Event
        self._loop: asyncio.AbstractEventLoop
        self.port = 0
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._amain()), daemon=True
        )

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        server = DiagnosisServer(self._registry, self._config)
        await server.start()
        self.port = server.port
        self._stop = asyncio.Event()
        self._started.set()
        await self._stop.wait()
        await server.drain()

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        assert self._started.wait(30), "server failed to start"
        return self

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


def _request_bytes(records) -> bytes:
    payload = json.dumps(
        {"schema": REQUEST_SCHEMA,
         "records": [record_to_dict(r) for r in records]}
    ).encode()
    head = (
        "POST /v1/diagnose HTTP/1.1\r\n"
        "Host: bench\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    )
    return head.encode() + payload


async def _client(port, request, latencies, deadline):
    """One closed-loop keep-alive connection; appends per-request seconds."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        while time.perf_counter() < deadline:
            t0 = time.perf_counter()
            writer.write(request)
            await writer.drain()
            status_line = await reader.readline()
            assert b" 200 " in status_line, status_line
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            await reader.readexactly(length)
            latencies.append(time.perf_counter() - t0)
    finally:
        writer.close()


async def _drive(port, request, connections, duration_s):
    """Run the closed-loop fleet for ``duration_s``; returns (latencies, wall)."""
    latencies: list = []
    start = time.perf_counter()
    deadline = start + duration_s
    await asyncio.gather(*(
        _client(port, request, latencies, deadline)
        for _ in range(connections)
    ))
    return latencies, time.perf_counter() - start


def _percentile(sorted_values, q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def test_serve_throughput(report):
    duration_s = float(os.environ.get("REPRO_SERVE_BENCH_SECONDS", "2.0"))
    connections = int(os.environ.get("REPRO_SERVE_BENCH_CONNS", "32"))
    rps_min = float(os.environ.get("REPRO_SERVE_RPS_MIN", "1000"))
    p99_max_ms = float(os.environ.get("REPRO_SERVE_P99_MAX_MS", "100"))
    baseline = (
        json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else None
    )

    records = run_campaign(CampaignConfig(
        n_instances=24, seed=77, video_duration_range=(10.0, 14.0),
    ))
    analyzer = RootCauseAnalyzer().fit(Dataset.from_records(records))
    request = _request_bytes(records[:1])
    # 64-record payloads: the fleet-upload shape, where one request
    # carries a whole probe batch and the compiled columnar plan does
    # the work — measured as rows/s rather than req/s
    sweep_records = 64
    bulk_request = _request_bytes(
        (records * (sweep_records // len(records) + 1))[:sweep_records]
    )
    config = ServeConfig(port=0, max_batch=64, max_wait_ms=2.0)

    with _ServerThread(analyzer, config) as server:
        asyncio.run(_drive(server.port, request, connections, WARMUP_S))
        latencies, wall_s = asyncio.run(
            _drive(server.port, request, connections, duration_s)
        )
        asyncio.run(_drive(server.port, bulk_request, connections, WARMUP_S))
        bulk_latencies, bulk_wall_s = asyncio.run(
            _drive(server.port, bulk_request, connections, duration_s)
        )

    assert latencies, "load generator completed no requests"
    latencies.sort()
    rps = len(latencies) / wall_s
    p50_ms = _percentile(latencies, 0.50) * 1e3
    p99_ms = _percentile(latencies, 0.99) * 1e3

    assert bulk_latencies, "bulk load generator completed no requests"
    bulk_latencies.sort()
    bulk_rps = len(bulk_latencies) / bulk_wall_s
    bulk_rows_per_s = bulk_rps * sweep_records
    bulk_p99_ms = _percentile(bulk_latencies, 0.99) * 1e3

    result = {
        "schema": 1,
        "rps": round(rps, 1),
        "p50_ms": round(p50_ms, 3),
        "p99_ms": round(p99_ms, 3),
        "requests": len(latencies),
        "duration_s": round(wall_s, 3),
        "connections": connections,
        "max_batch": config.max_batch,
        "max_wait_ms": config.max_wait_ms,
        "records_per_request": 1,
        "sweep_64": {
            "records_per_request": sweep_records,
            "rps": round(bulk_rps, 1),
            "rows_per_s": round(bulk_rows_per_s, 1),
            "p99_ms": round(bulk_p99_ms, 3),
            "requests": len(bulk_latencies),
        },
        "python": platform.python_version(),
    }
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")

    lines = [
        "serve throughput (closed loop, 1 record/request)",
        f"  sustained    {rps:8.0f} req/s   "
        f"({len(latencies)} requests over {wall_s:.2f}s, "
        f"{connections} connections)",
        f"  latency      p50 {p50_ms:6.2f} ms   p99 {p99_ms:6.2f} ms",
        f"  batching     batch<={config.max_batch}, "
        f"wait<={config.max_wait_ms}ms",
        f"  bulk (64/req) {bulk_rps:7.0f} req/s = {bulk_rows_per_s:,.0f} "
        f"rows/s   p99 {bulk_p99_ms:6.2f} ms   (informational)",
        f"  floor        {rps_min:.0f} req/s, p99<={p99_max_ms:.0f}ms "
        "(1 record/request)",
    ]
    if baseline is not None:
        lines.append(
            f"  baseline     {baseline['rps']:8.0f} req/s   "
            f"(delta {rps / baseline['rps'] - 1.0:+.1%}, informational)"
        )
    report("serve_throughput", "\n".join(lines))

    assert rps >= rps_min, (
        f"served {rps:.0f} req/s, below the {rps_min:.0f} req/s floor"
    )
    assert p99_ms <= p99_max_ms, (
        f"p99 at {p99_ms:.1f} ms exceeds the {p99_max_ms:.0f} ms budget"
    )

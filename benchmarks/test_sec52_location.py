"""Section 5.2: locating the problem (device / LAN / WAN).

Paper: each entity can tell whether the fault is in its own segment; the
server VP localises LAN problems nearly as well as the router, leaning on
the same features (RTT, first packet arrival, retransmissions).
"""

from benchmarks.conftest import run_once
from repro.experiments.location import run_location


def test_sec52_location(benchmark, controlled, report):
    result = run_once(benchmark, run_location, controlled)
    report("sec52_location", result.to_text())

    acc = result.accuracies
    for name in ("mobile", "router", "server", "combined"):
        assert acc[name] > 0.65, f"{name}: {acc[name]:.2f}"
    # The server VP is not blind to LAN problems (the paper's surprise):
    lan = result.location_recall("lan")
    assert lan["server"] > 0.3
    # and its top LAN features are transport-timing ones.
    server_features = [name for name, _ in result.lan_rankings["server"]]
    assert any(
        "rtt" in n or "first_payload" in n or "retx" in n or "iat" in n
        for n in server_features
    ), server_features

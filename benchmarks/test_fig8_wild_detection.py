"""Figure 8 / Section 6.2: problem detection fully in the wild.

3G-dominant sessions with no induced faults; only good/problematic ground
truth exists; the router VP is unavailable on cellular paths, so the
evaluated combinations are mobile, server and mobile+server.  Paper: high
accuracy on good sessions, some loss on problematic ones, mobile > server,
combination best.
"""

from benchmarks.conftest import run_once
from repro.experiments.wild import run_wild_detection


def test_fig8_wild_detection(benchmark, controlled, wild, report):
    result = run_once(benchmark, run_wild_detection, controlled, wild)
    report("fig8_wild_detection", result.to_text())

    acc = result.accuracies
    assert set(acc) == {"mobile", "server", "mobile+server"}
    assert acc["mobile"] > 0.65, acc
    assert acc["mobile+server"] > 0.65, acc
    bars = result.bars()
    # Healthy sessions stay easy to recognise in the wild.
    assert bars["good"]["mobile"]["recall"] > 0.75
    # Problematic sessions are detected far above chance but with some
    # loss versus the lab (the paper's observation).
    assert bars["problematic"]["mobile"]["recall"] > 0.35

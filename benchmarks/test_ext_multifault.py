"""Extension (Section 9): co-occurring problems.

The paper lists "the co-occurrence of problems that jointly affect video
QoE" as a known limitation: the single-label model can at best name one
component.  We quantify that behaviour: sessions with two simultaneous
severe faults should still be flagged as problematic, and the predicted
cause should usually be one of the two injected components.
"""

from benchmarks.conftest import run_once
from repro.experiments.extensions import run_multi_fault


def test_ext_multifault(benchmark, controlled, report):
    result = run_once(benchmark, run_multi_fault, controlled, n_sessions=15)
    report("ext_multifault", result.to_text())

    assert result.n_sessions == 15
    # Detection survives co-occurrence ...
    assert result.detection_rate > 0.7
    # ... and the named cause is usually one of the true components.
    assert result.component_recall > 0.4

"""Section 5.2 (text): VP pairs bring no significant gain for location.

"We also evaluated the benefits of using VP pairs for location detection.
However, we did not observe any significant improvement."
"""

from benchmarks.conftest import run_once
from repro.experiments.vp_pairs import run_vp_pairs


def test_sec52_vp_pairs(benchmark, controlled, report):
    result = run_once(benchmark, run_vp_pairs, controlled)
    report("sec52_vp_pairs", result.to_text())

    acc = result.accuracies
    assert len(acc) == 7  # 3 singles + 3 pairs + combined
    # Pairs never dramatically beat their best member (the paper's finding:
    # no significant improvement).  Allow a modest few points of noise.
    assert result.max_pair_gain < 0.10, result.to_text()
    # Sanity floor for all combos.
    assert min(acc.values()) > 0.55, acc

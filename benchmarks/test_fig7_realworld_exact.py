"""Figure 7 / Section 6.1: exact root cause in the real world.

Paper accuracies: combined 82.9%, mobile 81.1%, router 80.5%, server
79.3%; device-load and wireless-medium faults transfer best (they are
anchored on hardware metrics).
"""

from benchmarks.conftest import run_once
from repro.experiments.realworld import run_realworld_exact


def test_fig7_realworld_exact(benchmark, controlled, realworld, report):
    result = run_once(benchmark, run_realworld_exact, controlled, realworld)
    report("fig7_realworld_exact", result.to_text())

    acc = result.accuracies
    for name in ("mobile", "router", "server", "combined"):
        assert acc[name] > 0.55, f"{name}: {acc[name]:.2f}"
    # The mobile VP remains the strongest single vantage point.
    assert acc["mobile"] >= max(acc["router"], acc["server"]) - 0.05

"""Simnet fast-path throughput benchmark with a committed baseline.

Measures the three numbers the scheduler/RNG/pooling rework is judged
by: event-loop events/sec at a realistic queue depth (hundreds of
concurrent timers, mixed ``post``/``schedule`` tiers -- a single
self-rescheduling timer would measure only dispatch overhead and hide
the calendar queue's insertion win), campaign records/sec at
``workers=1``, and the campaign's peak RSS in a forked child.  A
sessions-per-proc sweep then measures the interleaved path: K sessions
on one shared event loop (``sessions_interleaved`` in the JSON, with a
records/sec regression floor of its own; ``REPRO_SIMNET_BENCH_SESSIONS``
sizes the sweep campaign).  A sharded sweep then times the full sharded
contract — ``orchestrate`` (shard subprocesses + supervision) plus
``merge_shards`` — at 1 and 4 shards over the same campaign
(``sharded_campaign`` in the JSON, trend-only).

Results land twice: ``benchmarks/reports/simnet_throughput.txt`` for
humans and ``BENCH_simnet.json`` at the repo root for machines.  The
committed JSON doubles as the regression baseline -- the run fails if
events/sec drops more than ``REPRO_SIMNET_REGRESSION_MAX`` (default
0.20) below it.  Workload knobs for CI: ``REPRO_SIMNET_BENCH_EVENTS``
and ``REPRO_SIMNET_BENCH_INSTANCES``.
"""

import json
import multiprocessing
import os
import platform
import resource
import tempfile
import time
from pathlib import Path

import pytest

from repro.pipeline import OrchestratorSettings, merge_shards, orchestrate
from repro.simnet.engine import Simulator
from repro.testbed.campaign import CampaignConfig, run_campaign

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_simnet.json"

_DEPTH = 512


def _event_loop_run(total):
    """Dispatch ``total`` events with ~_DEPTH timers always pending."""
    sim = Simulator(seed=3)
    count = [0]

    def tick(i):
        count[0] += 1
        if count[0] + _DEPTH <= total:
            if i & 7:  # ~7/8 fire-and-forget, ~1/8 cancellable tier
                sim.post(0.001 + (i & 3) * 2.5e-4, tick, i)
            else:
                sim.schedule(0.001 + (i & 3) * 2.5e-4, tick, i)

    for i in range(_DEPTH):
        sim.post(i * 1e-5, tick, i)
    sim.run()
    return count[0]


def _campaign_in_child(config, sessions_per_proc=1):
    """Run the campaign in a forked child: clean RSS baseline."""
    ctx = multiprocessing.get_context("fork")
    queue = ctx.SimpleQueue()

    def task():
        start = time.perf_counter()
        records = run_campaign(config, workers=1,
                               sessions_per_proc=sessions_per_proc)
        elapsed = time.perf_counter() - start
        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        queue.put((len(records), elapsed, rss_kb))

    proc = ctx.Process(target=task)
    proc.start()
    measurement = queue.get()
    proc.join()
    assert proc.exitcode == 0
    return measurement


def test_simnet_throughput(report):
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        pytest.skip("needs fork for the RSS measurement")
    total = int(os.environ.get("REPRO_SIMNET_BENCH_EVENTS", "300000"))
    instances = int(os.environ.get("REPRO_SIMNET_BENCH_INSTANCES", "6"))
    max_regress = float(os.environ.get("REPRO_SIMNET_REGRESSION_MAX", "0.20"))
    baseline = (
        json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else None
    )

    # -- event loop: best of 3 interleaved repeats --------------------------
    loop_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        fired = _event_loop_run(total)
        loop_s = min(loop_s, time.perf_counter() - start)
    assert fired == total
    events_per_sec = fired / loop_s

    # -- campaign: wall clock and peak RSS in a forked child ----------------
    config = CampaignConfig(n_instances=instances, seed=123,
                            video_duration_range=(8.0, 10.0))
    n_records, campaign_s, rss_kb = _campaign_in_child(config)
    assert n_records == instances
    records_per_sec = n_records / campaign_s

    # -- sessions-per-proc sweep: K sessions interleaved on one loop --------
    sweep_n = int(os.environ.get("REPRO_SIMNET_BENCH_SESSIONS", "16"))
    sweep_config = CampaignConfig(n_instances=sweep_n, seed=123,
                                  video_duration_range=(8.0, 10.0))
    sweep = []
    for k in (1, 4, sweep_n):
        n, elapsed, k_rss_kb = _campaign_in_child(sweep_config,
                                                  sessions_per_proc=k)
        assert n == sweep_n
        sweep.append({
            "sessions_per_proc": k,
            "sessions_per_sec": round(n / elapsed, 4),
            "records_per_sec": round(n / elapsed, 4),
            "peak_rss_kb": k_rss_kb,
        })
    best = max(sweep, key=lambda row: row["records_per_sec"])

    # -- sharded campaign sweep: supervised shards, merged spool ------------
    # Wall clock covers the whole contract (orchestrate + merge), so the
    # numbers are comparable to the serial spool path.  Trend-only: shard
    # subprocess fan-out wobbles across runner classes, so the delta is
    # printed but never gates.
    shard_sweep = []
    with tempfile.TemporaryDirectory() as td:
        for shards in (1, 4):
            base = Path(td) / f"campaign-{shards:02d}.jsonl"
            start = time.perf_counter()
            run = orchestrate(
                sweep_config, base, shards,
                settings=OrchestratorSettings(poll_interval=0.02),
            )
            assert run.ok
            merged = merge_shards(base, shards)
            elapsed = time.perf_counter() - start
            assert merged.records == sweep_n
            shard_sweep.append({
                "shards": shards,
                "records_per_sec": round(sweep_n / elapsed, 4),
            })

    result = {
        "schema": 1,
        "event_loop": {
            "depth": _DEPTH,
            "events": fired,
            "events_per_sec": round(events_per_sec, 1),
        },
        "campaign": {
            "workers": 1,
            "instances": instances,
            "records_per_sec": round(records_per_sec, 4),
        },
        "sessions_interleaved": {
            "workers": 1,
            "instances": sweep_n,
            "sweep": sweep,
            "best": best,
        },
        "sharded_campaign": {
            "instances": sweep_n,
            "sweep": shard_sweep,
        },
        "peak_rss_kb": rss_kb,
        "python": platform.python_version(),
    }
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")

    lines = [
        "simnet fast-path throughput",
        f"  event loop   {events_per_sec / 1e3:8.0f}k events/s   "
        f"({fired} events, depth {_DEPTH}, best of 3)",
        f"  campaign     {records_per_sec:8.3f} records/s   "
        f"({instances} instances, workers=1)",
        f"  peak RSS     {rss_kb / 1024:8.1f} MB (campaign child)",
    ]
    for row in sweep:
        lines.append(
            f"  interleaved  {row['records_per_sec']:8.3f} records/s   "
            f"(K={row['sessions_per_proc']:<3d} of {sweep_n} instances, "
            f"RSS {row['peak_rss_kb'] / 1024:.1f} MB)"
        )
    for row in shard_sweep:
        lines.append(
            f"  sharded      {row['records_per_sec']:8.3f} records/s   "
            f"({row['shards']} shard(s) of {sweep_n} instances, "
            "orchestrate + merge)"
        )
    if baseline is not None and baseline.get("sharded_campaign"):
        base_rows = {
            row["shards"]: row["records_per_sec"]
            for row in baseline["sharded_campaign"]["sweep"]
        }
        for row in shard_sweep:
            base_rps = base_rows.get(row["shards"])
            if base_rps:
                lines.append(
                    f"  sharded base {base_rps:8.3f} records/s   "
                    f"({row['shards']} shard(s), delta "
                    f"{row['records_per_sec'] / base_rps - 1.0:+.1%}, "
                    "trend only)"
                )
    if baseline is not None:
        base_eps = baseline["event_loop"]["events_per_sec"]
        lines.append(
            f"  baseline     {base_eps / 1e3:8.0f}k events/s   "
            f"(delta {events_per_sec / base_eps - 1.0:+.1%}, "
            f"floor -{max_regress:.0%})"
        )
    report("simnet_throughput", "\n".join(lines))

    if baseline is not None:
        floor = baseline["event_loop"]["events_per_sec"] * (1.0 - max_regress)
        assert events_per_sec >= floor, (
            f"event loop at {events_per_sec:.0f} events/s regressed past "
            f"{floor:.0f} (baseline {baseline['event_loop']['events_per_sec']:.0f}, "
            f"budget -{max_regress:.0%})"
        )
        base_interleaved = baseline.get("sessions_interleaved")
        if base_interleaved is not None:
            base_best = base_interleaved["best"]["records_per_sec"]
            best_floor = base_best * (1.0 - max_regress)
            assert best["records_per_sec"] >= best_floor, (
                f"interleaved path at {best['records_per_sec']:.3f} records/s "
                f"regressed past {best_floor:.3f} (baseline {base_best:.3f}, "
                f"budget -{max_regress:.0%})"
            )

"""Batch diagnosis throughput: compiled columnar engine vs object path.

Measures ``diagnose_batch`` end to end — raw session dicts in,
:class:`DiagnosisReport` objects out — under both prediction engines
(``REPRO_ML_PREDICT=compiled`` and ``=object``) at batch sizes 1, 1k,
100k and 1M, on an FCBF-selected analyzer over a realistic ~180-feature
probe universe (the paper's configuration: selection on, a handful of
surviving features per task).

Results land twice: ``benchmarks/reports/diagnose_throughput.txt`` for
humans and ``BENCH_diagnose.json`` at the repo root for machines.  The
run *fails* if the compiled engine is less than
``REPRO_DIAGNOSE_SPEEDUP_MIN`` (default 5) times the object path at the
100k batch — that ratio is machine-independent enough to gate on.  The
1M point and the absolute rows/s are reported as a trend against the
committed JSON only; absolute numbers wobble across CI machines.

Knobs: ``REPRO_DIAGNOSE_BENCH_SIZES`` (comma list, default
``1,1000,100000,1000000``) trims the sweep for quick local runs.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.dataset import Dataset, Instance
from repro.core.diagnosis import RootCauseAnalyzer
from repro.ml.compiled import PREDICT_MODE_ENV

from benchmarks.test_microbenchmarks import _probe_feature_names

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_diagnose.json"

#: unique rows generated; larger batches tile these (values still vary
#: row to row, and per-row work is identical, so throughput is honest)
_UNIQUE_ROWS = 100_000

#: wall-clock budget per (engine, size) cell: repeat until this is spent
#: or 3 runs complete, keep the best
_MIN_RUNS, _MAX_RUNS, _CELL_BUDGET_S = 1, 3, 20.0


def _selected_analyzer():
    """An FCBF-on analyzer whose tasks keep a few multi-VP features.

    The label rule mixes five drivers across vantage points so the
    filter retains a realistic feature set (~4 per task) instead of one
    dominant column.
    """
    names = _probe_feature_names()
    rng = np.random.default_rng(7)

    def features():
        return {n: float(v) for n, v in zip(names, rng.uniform(0, 100, len(names)))}

    def labels(f):
        score = (f["mobile_tcp_rtt_avg"]
                 + 0.5 * f["mobile_tcp_c2s_retx_pkts"]
                 + 0.3 * f["router_link_tx_rate"]
                 + 0.2 * f["mobile_hw_cpu_avg"]
                 + 0.4 * f["server_tcp_rtt_max"])
        if score < 95:
            return "good", "good", "good"
        if score < 160:
            return "mild", "wan_mild", "wan_congestion_mild"
        return "severe", "lan_severe", "wifi_interference_severe"

    train = []
    for _ in range(240):
        f = features()
        severity, location, exact = labels(f)
        train.append(Instance(
            features=f,
            labels={"severity": severity, "location": location,
                    "exact": exact,
                    "existence": "good" if severity == "good" else "problematic"},
            meta={"session_s": 30.0},
        ))
    return RootCauseAnalyzer(select=True).fit(Dataset(train)), features


def _session_rows(features, n):
    unique = min(n, _UNIQUE_ROWS)
    rows = [features() for _ in range(unique)]
    while len(rows) < n:
        rows.extend(rows[: n - len(rows)])
    return rows


def _rows_per_sec(analyzer, rows, mode):
    """Best-of-N throughput of ``diagnose_batch`` under one engine."""
    before = os.environ.get(PREDICT_MODE_ENV)
    os.environ[PREDICT_MODE_ENV] = mode
    try:
        analyzer.diagnose_batch(rows[:1])  # warm plans and caches
        best = float("inf")
        spent = 0.0
        for run in range(_MAX_RUNS):
            start = time.perf_counter()
            reports = analyzer.diagnose_batch(rows)
            elapsed = time.perf_counter() - start
            assert len(reports) == len(rows)
            best = min(best, elapsed)
            spent += elapsed
            if run + 1 >= _MIN_RUNS and spent > _CELL_BUDGET_S:
                break
        return len(rows) / best
    finally:
        if before is None:
            os.environ.pop(PREDICT_MODE_ENV, None)
        else:
            os.environ[PREDICT_MODE_ENV] = before


def test_diagnose_throughput(report):
    sizes = [
        int(s) for s in os.environ.get(
            "REPRO_DIAGNOSE_BENCH_SIZES", "1,1000,100000,1000000"
        ).split(",")
    ]
    floor = float(os.environ.get("REPRO_DIAGNOSE_SPEEDUP_MIN", "5"))
    baseline = (
        json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else None
    )

    analyzer, features = _selected_analyzer()
    rows = _session_rows(features, max(sizes))

    results = []
    for size in sizes:
        batch = rows[:size]
        compiled = _rows_per_sec(analyzer, batch, "compiled")
        obj = _rows_per_sec(analyzer, batch, "object")
        results.append({
            "batch": size,
            "compiled_rows_per_s": round(compiled, 1),
            "object_rows_per_s": round(obj, 1),
            "speedup": round(compiled / obj, 2),
        })

    per_task = {t: len(f) for t, f in analyzer.features.items()}
    out = {
        "schema": 1,
        "select": True,
        "features_per_task": per_task,
        "results": results,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    BENCH_JSON.write_text(json.dumps(out, indent=2) + "\n")

    lines = ["diagnose_batch throughput (rows/s, compiled vs object engine)",
             f"  analyzer     select=on, features/task {per_task}",
             f"  {'batch':>9}  {'compiled':>12}  {'object':>12}  speedup"]
    base_by_size = {}
    if baseline is not None:
        base_by_size = {r["batch"]: r for r in baseline.get("results", [])}
    for r in results:
        line = (f"  {r['batch']:>9}  {r['compiled_rows_per_s']:>12,.0f}"
                f"  {r['object_rows_per_s']:>12,.0f}  {r['speedup']:6.2f}x")
        base = base_by_size.get(r["batch"])
        if base:
            delta = r["compiled_rows_per_s"] / base["compiled_rows_per_s"] - 1.0
            line += f"   (compiled vs baseline {delta:+.1%}, informational)"
        lines.append(line)
    lines.append(f"  floor        compiled >= {floor:.0f}x object at batch 100k")
    report("diagnose_throughput", "\n".join(lines))

    gated = [r for r in results if r["batch"] == 100_000]
    if gated:
        speedup = gated[0]["speedup"]
        assert speedup >= floor, (
            f"compiled engine only {speedup:.2f}x the object path at 100k "
            f"rows (need {floor:.0f}x)"
        )


def test_predict_one_latency(report):
    """Single-session scalar fast path vs the object engine round trip."""
    analyzer, features = _selected_analyzer()
    session = Instance(features=features(), labels={},
                       meta={"session_s": 25.0})
    iters = 2000
    lat = {}
    for mode in ("compiled", "object"):
        before = os.environ.get(PREDICT_MODE_ENV)
        os.environ[PREDICT_MODE_ENV] = mode
        try:
            tree = next(iter(analyzer.models.values()))
            row = [float(i) for i in range(tree.n_features)]
            tree.predict_one(row)  # warm
            start = time.perf_counter()
            for _ in range(iters):
                tree.predict_one(row)
            lat[mode] = (time.perf_counter() - start) / iters
        finally:
            if before is None:
                os.environ.pop(PREDICT_MODE_ENV, None)
            else:
                os.environ[PREDICT_MODE_ENV] = before
    speedup = lat["object"] / lat["compiled"]
    report("predict_one_latency",
           "predict_one scalar fast path\n"
           f"  compiled  {lat['compiled'] * 1e6:8.2f} us/call\n"
           f"  object    {lat['object'] * 1e6:8.2f} us/call   "
           f"(compiled {speedup:.1f}x faster)")
    assert lat["compiled"] <= lat["object"], (
        "scalar compiled predict_one slower than the object round trip"
    )

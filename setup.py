"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works on environments without the ``wheel`` package
(pip falls back to ``setup.py develop``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Multi-vantage-point root cause analysis for mobile video streaming "
        "QoE (CoNEXT 2015 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)

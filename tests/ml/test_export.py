"""Tests for tree export/persistence."""

import json

import numpy as np
import pytest

from repro.ml.export import tree_from_dict, tree_to_dict, tree_to_dot
from repro.ml.tree import C45Tree


def _fitted_tree():
    rng = np.random.default_rng(0)
    y = rng.integers(0, 3, 300)
    X = rng.normal(0, 0.4, (300, 5))
    X[:, 1] += y * 2.0
    return C45Tree().fit(X, np.array(["a", "b", "c"])[y],
                         feature_names=[f"f{i}" for i in range(5)]), X


def test_dot_render_contains_structure():
    tree, _X = _fitted_tree()
    dot = tree_to_dot(tree)
    assert dot.startswith("digraph")
    assert "f1" in dot
    assert '"yes"' in dot and '"no"' in dot


def test_dot_requires_fit():
    with pytest.raises(RuntimeError):
        tree_to_dot(C45Tree())


def test_roundtrip_preserves_predictions():
    tree, X = _fitted_tree()
    data = tree_to_dict(tree)
    json.dumps(data)  # must be JSON-safe
    clone = tree_from_dict(data)
    assert list(clone.predict(X)) == list(tree.predict(X))
    assert clone.n_nodes == tree.n_nodes
    assert clone.feature_names == tree.feature_names


def test_roundtrip_preserves_params():
    tree, _X = _fitted_tree()
    clone = tree_from_dict(tree_to_dict(tree))
    assert clone.min_leaf == tree.min_leaf
    assert clone.cf == tree.cf


def test_bad_format_rejected():
    with pytest.raises(ValueError):
        tree_from_dict({"format": "something-else"})


def test_analyzer_save_load_roundtrip(tmp_path, mini_dataset):
    from repro.core.diagnosis import RootCauseAnalyzer

    analyzer = RootCauseAnalyzer(vps=("mobile",)).fit(mini_dataset)
    path = tmp_path / "analyzer.json"
    analyzer.save(path)

    clone = RootCauseAnalyzer.load(path)
    assert clone.vps == ("mobile",)
    for inst in mini_dataset.instances[:10]:
        original = analyzer.diagnose(inst)
        loaded = clone.diagnose(inst)
        assert loaded.severity == original.severity
        assert loaded.exact == original.exact
        assert loaded.location == original.location


def test_analyzer_save_requires_fit(tmp_path):
    from repro.core.diagnosis import RootCauseAnalyzer

    with pytest.raises(RuntimeError):
        RootCauseAnalyzer().save(tmp_path / "x.json")

"""Unit tests for metrics, cross-validation and baselines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.cross_validation import cross_validate, stratified_kfold
from repro.ml.metrics import ConfusionMatrix
from repro.ml.naive_bayes import GaussianNB
from repro.ml.ranking import info_gain_ranking, per_label_ranking
from repro.ml.svm import LinearSVM


class TestConfusionMatrix:
    def make(self):
        cm = ConfusionMatrix(["a", "b", "c"])
        cm.update(["a", "a", "b", "b", "c"], ["a", "b", "b", "b", "a"])
        return cm

    def test_accuracy(self):
        assert self.make().accuracy == pytest.approx(3 / 5)

    def test_precision_recall(self):
        cm = self.make()
        assert cm.precision("a") == pytest.approx(1 / 2)  # predicted a: 2, TP 1
        assert cm.recall("a") == pytest.approx(1 / 2)
        assert cm.recall("b") == pytest.approx(1.0)
        assert cm.precision("c") == 0.0
        assert cm.recall("c") == 0.0

    def test_f1(self):
        cm = self.make()
        assert cm.f1("b") == pytest.approx(2 * (2 / 3) * 1.0 / (2 / 3 + 1.0))
        assert cm.f1("c") == 0.0

    def test_support(self):
        cm = self.make()
        assert cm.support("a") == 2
        assert cm.support("c") == 1

    def test_unknown_label_rejected(self):
        cm = ConfusionMatrix(["a"])
        with pytest.raises(KeyError):
            cm.update(["x"], ["a"])
        with pytest.raises(KeyError):
            cm.update(["a"], ["x"])

    def test_weighted_metrics_match_manual(self):
        cm = self.make()
        manual = sum(cm.recall(l) * cm.support(l) for l in cm.labels) / 5
        assert cm.weighted_recall() == pytest.approx(manual)

    def test_macro_skips_absent_classes(self):
        cm = ConfusionMatrix(["a", "b"])
        cm.update(["a", "a"], ["a", "a"])
        assert cm.macro_recall() == 1.0

    def test_to_text(self):
        assert "a" in self.make().to_text()


class TestStratifiedKFold:
    def test_partition_covers_everything(self):
        y = np.array(["x"] * 40 + ["y"] * 24)
        folds = stratified_kfold(y, k=8, seed=1)
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test) == list(range(64))
        for train, test in folds:
            assert set(train) | set(test) == set(range(64))
            assert set(train) & set(test) == set()

    def test_stratification_balanced(self):
        y = np.array(["x"] * 50 + ["y"] * 50)
        for train, test in stratified_kfold(y, k=10, seed=0):
            labels = y[test]
            assert (labels == "x").sum() == 5
            assert (labels == "y").sum() == 5

    def test_rare_class_spread(self):
        y = np.array(["common"] * 97 + ["rare"] * 3)
        folds = stratified_kfold(y, k=10, seed=0)
        rare_in_test = [sum(y[test] == "rare") for _, test in folds]
        assert max(rare_in_test) == 1

    def test_too_few_instances_rejected(self):
        with pytest.raises(ValueError):
            stratified_kfold(np.array(["a", "b"]), k=10)

    def test_deterministic(self):
        y = np.array(["a", "b"] * 30)
        f1 = stratified_kfold(y, k=5, seed=7)
        f2 = stratified_kfold(y, k=5, seed=7)
        for (tr1, te1), (tr2, te2) in zip(f1, f2):
            assert list(te1) == list(te2)


def _blobs(n=300, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    X = rng.normal(0, 0.5, (n, 3))
    X[:, 0] += y * 3.0
    return X, np.array(["neg", "pos"])[y]


class TestBaselines:
    def test_nb_separable(self):
        X, y = _blobs()
        model = GaussianNB().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_nb_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianNB().predict(np.zeros((1, 3)))

    def test_svm_separable(self):
        X, y = _blobs()
        model = LinearSVM(epochs=10).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_svm_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearSVM().predict(np.zeros((1, 3)))

    def test_cross_validate_pools_all_instances(self):
        X, y = _blobs()
        cm = cross_validate(lambda: GaussianNB(), X, y, k=5)
        assert cm.total == len(y)
        assert cm.accuracy > 0.9


class TestRanking:
    def test_info_gain_orders_features(self):
        X, y = _blobs()
        ranked = info_gain_ranking(X, y, ["informative", "n1", "n2"])
        assert ranked[0][0] == "informative"
        assert ranked[0][1] > ranked[1][1]

    def test_per_label_topk(self):
        X, y = _blobs()
        table = per_label_ranking(X, y, ["informative", "n1", "n2"], top_k=2)
        assert len(table["pos"]) == 2
        assert table["pos"][0][0] == "informative"

    def test_per_label_absent_class(self):
        X, y = _blobs()
        table = per_label_ranking(X, y, ["a", "b", "c"], positive_labels=["ghost"])
        assert table["ghost"] == []

"""Tests for decision paths and rule extraction."""

import numpy as np
import pytest

from repro.ml.rules import (
    decision_path,
    explain_prediction,
    extract_rules,
    render_rule,
)
from repro.ml.tree import C45Tree


@pytest.fixture(scope="module")
def tree():
    rng = np.random.default_rng(0)
    y = rng.integers(0, 2, 400)
    X = rng.normal(0, 0.4, (400, 3))
    X[:, 0] += y * 3.0
    return C45Tree().fit(X, np.array(["neg", "pos"])[y],
                         feature_names=["signal", "n1", "n2"]), X, y


def test_decision_path_consistent_with_prediction(tree):
    model, X, _y = tree
    for row in X[:20]:
        path = decision_path(model, row)
        assert path, "non-trivial tree must test something"
        for cond in path:
            if cond.satisfied_leq:
                assert cond.value <= cond.threshold
            else:
                assert cond.value > cond.threshold


def test_decision_path_requires_fit():
    with pytest.raises(RuntimeError):
        decision_path(C45Tree(), [0.0])


def test_explain_prediction_from_dict(tree):
    model, X, _y = tree
    label, path = explain_prediction(model, {"signal": 5.0, "n1": 0, "n2": 0})
    assert label == "pos"
    assert any(c.feature == "signal" for c in path)


def test_rules_partition_training_space(tree):
    model, X, _y = tree
    rules = extract_rules(model)
    assert sum(r.support for r in rules) == len(X)
    for r in rules:
        assert 0.0 <= r.confidence <= 1.0
        assert r.prediction in ("neg", "pos")


def test_rules_sorted_by_confidence(tree):
    model, _X, _y = tree
    rules = extract_rules(model)
    confs = [r.confidence for r in rules]
    assert confs == sorted(confs, reverse=True)


def test_exactly_one_rule_matches_any_sample(tree):
    model, X, _y = tree
    rules = extract_rules(model)
    names = ["signal", "n1", "n2"]
    for row in X[:25]:
        features = dict(zip(names, row))
        matching = [r for r in rules if r.matches(features)]
        assert len(matching) == 1
        assert matching[0].prediction == str(model.predict_one(row))


def test_render_rule(tree):
    model, _X, _y = tree
    text = render_rule(extract_rules(model)[0])
    assert text.startswith("IF ") and " THEN " in text


def test_analyzer_explain(mini_dataset):
    from repro.core.diagnosis import RootCauseAnalyzer

    analyzer = RootCauseAnalyzer(vps=("mobile",)).fit(mini_dataset)
    inst = mini_dataset[0]
    label, path = analyzer.explain(inst.features,
                                   session_s=inst.meta.get("session_s"))
    assert label == analyzer.diagnose(inst).exact
    for cond in path:
        assert cond.feature.startswith("mobile_")

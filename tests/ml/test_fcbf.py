"""Unit and property tests for symmetrical uncertainty and FCBF."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.fcbf import fcbf, symmetrical_uncertainty


def test_su_identical_is_one():
    x = np.array([0, 0, 1, 1, 2, 2])
    assert symmetrical_uncertainty(x, x) == pytest.approx(1.0)


def test_su_independent_near_zero():
    rng = np.random.default_rng(0)
    x = rng.integers(0, 2, 5000)
    y = rng.integers(0, 2, 5000)
    assert symmetrical_uncertainty(x, y) < 0.01


def test_su_symmetric():
    rng = np.random.default_rng(1)
    x = rng.integers(0, 3, 500)
    y = (x + rng.integers(0, 2, 500)) % 3
    assert symmetrical_uncertainty(x, y) == pytest.approx(
        symmetrical_uncertainty(y, x)
    )


def test_su_constant_feature_zero():
    x = np.zeros(100, dtype=int)
    y = np.array([0, 1] * 50)
    assert symmetrical_uncertainty(x, y) == 0.0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=500))
def test_property_su_in_unit_interval(seed):
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 4, 200)
    y = rng.integers(0, 3, 200)
    su = symmetrical_uncertainty(x, y)
    assert 0.0 <= su <= 1.0


def _toy_data(n=600, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    informative = y * 4.0 + rng.normal(0, 0.5, n)
    redundant = informative * 1.01 + rng.normal(0, 0.05, n)
    noise = rng.normal(0, 1, n)
    X = np.column_stack([noise, informative, redundant])
    return X, y


def test_fcbf_selects_informative_drops_redundant_and_noise():
    X, y = _toy_data()
    selected, su = fcbf(X, y, feature_names=["noise", "info", "copy"])
    assert len(selected) == 1
    assert selected[0] in (1, 2)  # one of the informative pair
    assert su["info"] > su["noise"]


def test_fcbf_keeps_independent_informative_features():
    rng = np.random.default_rng(3)
    n = 600
    a = rng.integers(0, 2, n)
    b = rng.integers(0, 2, n)
    y = a * 2 + b  # both needed
    X = np.column_stack([a + rng.normal(0, 0.05, n), b + rng.normal(0, 0.05, n)])
    selected, _ = fcbf(X, y)
    assert sorted(selected) == [0, 1]


def test_fcbf_empty_when_nothing_informative():
    rng = np.random.default_rng(4)
    X = rng.normal(0, 1, (300, 5))
    y = rng.integers(0, 2, 300)
    selected, _ = fcbf(X, y)
    assert selected == []


def test_fcbf_order_is_su_descending():
    X, y = _toy_data()
    rng = np.random.default_rng(5)
    extra = y * 1.0 + rng.normal(0, 2.0, len(y))  # weakly informative
    X2 = np.column_stack([X, extra])
    selected, su_map = fcbf(X2, y, feature_names=["n", "i", "c", "weak"])
    sus = [su_map[["n", "i", "c", "weak"][j]] for j in selected]
    assert sus == sorted(sus, reverse=True)
